//! MCT-style component interfaces.
//!
//! "CPL7 uses MCT-based *init*, *run*, and *finalize* interfaces in each
//! component to control the whole workflow… the *import* and *export*
//! methods are also implemented for GRIST and LICOM to get boundary
//! condition data from other models and provide output boundary condition
//! data" (§5.1.1).

use ap3esm_cpl::AttrVect;

/// Lifecycle phase (for sequencing assertions and progress reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentPhase {
    Created,
    Initialized,
    Running,
    Finalized,
}

/// The coupler-facing contract every AP3ESM component implements.
pub trait Component {
    /// Component name ("atm", "ocn", "ice", "lnd").
    fn name(&self) -> &'static str;

    /// One-time setup; must be called before the first `run`.
    fn init(&mut self);

    /// Advance the component by `seconds` of simulated time. The import
    /// state must have been refreshed by the coupler beforehand.
    fn run(&mut self, seconds: f64);

    /// Tear-down; after this only `phase` may be called.
    fn finalize(&mut self);

    fn phase(&self) -> ComponentPhase;

    /// Copy boundary conditions *into* the component from the coupler's
    /// attribute vector (fields on the component's own grid).
    fn import(&mut self, av: &AttrVect);

    /// Fill the coupler's attribute vector with this component's exports.
    fn export(&self, av: &mut AttrVect);

    /// Internal timestep (s) — checked against the coupling period
    /// (§5.1.1's consistency requirement).
    fn internal_dt(&self) -> f64;
}

/// A trivial component used to test coupler sequencing without heavy
/// models (and exercised by the sequencing unit tests).
pub struct NullComponent {
    pub nameplate: &'static str,
    pub phase: ComponentPhase,
    pub simulated: f64,
    pub dt: f64,
    pub last_import: Option<f64>,
}

impl NullComponent {
    pub fn new(name: &'static str, dt: f64) -> Self {
        NullComponent {
            nameplate: name,
            phase: ComponentPhase::Created,
            simulated: 0.0,
            dt,
            last_import: None,
        }
    }
}

impl Component for NullComponent {
    fn name(&self) -> &'static str {
        self.nameplate
    }

    fn init(&mut self) {
        assert_eq!(self.phase, ComponentPhase::Created, "double init");
        self.phase = ComponentPhase::Initialized;
    }

    fn run(&mut self, seconds: f64) {
        assert!(
            matches!(
                self.phase,
                ComponentPhase::Initialized | ComponentPhase::Running
            ),
            "run before init"
        );
        self.phase = ComponentPhase::Running;
        // The coupling period must be a whole number of internal steps.
        let steps = seconds / self.dt;
        assert!(
            (steps - steps.round()).abs() < 1e-9,
            "coupling period {seconds} not a multiple of dt {}",
            self.dt
        );
        self.simulated += seconds;
    }

    fn finalize(&mut self) {
        self.phase = ComponentPhase::Finalized;
    }

    fn phase(&self) -> ComponentPhase {
        self.phase
    }

    fn import(&mut self, av: &AttrVect) {
        if av.num_fields() > 0 {
            let name = av.field_names()[0].to_string();
            self.last_import = av.get(&name).first().copied();
        }
    }

    fn export(&self, av: &mut AttrVect) {
        let names: Vec<String> = av.field_names().iter().map(|s| s.to_string()).collect();
        for name in names {
            let n = av.npoints();
            av.set(&name, &vec![self.simulated; n]);
        }
    }

    fn internal_dt(&self) -> f64 {
        self.dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_enforced() {
        let mut c = NullComponent::new("atm", 120.0);
        assert_eq!(c.phase(), ComponentPhase::Created);
        c.init();
        c.run(480.0);
        c.run(480.0);
        assert_eq!(c.simulated, 960.0);
        c.finalize();
        assert_eq!(c.phase(), ComponentPhase::Finalized);
    }

    #[test]
    #[should_panic(expected = "run before init")]
    fn run_before_init_panics() {
        let mut c = NullComponent::new("ocn", 100.0);
        c.run(100.0);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn inconsistent_coupling_period_panics() {
        let mut c = NullComponent::new("ocn", 700.0);
        c.init();
        c.run(2400.0);
    }

    #[test]
    fn import_export_roundtrip() {
        let mut c = NullComponent::new("ice", 480.0);
        c.init();
        c.run(960.0);
        let mut av = AttrVect::new(3, &["ifrac"]);
        c.export(&mut av);
        assert_eq!(av.get("ifrac"), &[960.0, 960.0, 960.0]);
        let mut d = NullComponent::new("ocn", 480.0);
        d.import(&av);
        assert_eq!(d.last_import, Some(960.0));
    }
}
