//! The coupled AP3ESM driver.
//!
//! Implements the paper's two-task-domain layout (§7.2): world rank 0 is
//! **domain A** — coupler + atmosphere + sea ice + land ("the atmosphere
//! component exhibits the highest computational cost, and placing the
//! coupler within the same domain minimizes data exchange"; "the land
//! component is inherently coupled with the atmospheric component"; "the
//! sea ice component contributes minimal computational overhead") — and
//! world ranks 1..=N are **domain O**, exclusively the ocean ("the ocean
//! component represents the second largest computational cost,
//! necessitating its allocation to a separate domain").
//!
//! Data crosses domains through GSMap/Router rearrangement (`ap3esm-cpl`),
//! under the coupling clock's 180/36/180-per-day cadence (configurable).

use ap3esm_atm::dycore::{Dycore, DycoreConfig};
use ap3esm_atm::pdc::{PhysicsDriver, PhysicsDynamicsCoupler, SurfaceForcing};
use ap3esm_atm::state::AtmState;
use ap3esm_atm::vortex::{seed_vortex, track_vortex, TrackPoint, VortexSpec};
use ap3esm_comm::Rank;
use ap3esm_cpl::clock::CouplingClock;
use ap3esm_cpl::fluxes::{blended_surface_temperature, merge_ocean_forcing};
use ap3esm_cpl::gsmap::GSMap;
use ap3esm_cpl::mapping::RemapMatrix;
use ap3esm_cpl::rearrange::Rearranger;
use ap3esm_cpl::router::Router;
use ap3esm_grid::decomp::BlockDecomp2d;
use ap3esm_grid::mask::MaskGenerator;
use ap3esm_grid::sphere::Vec3;
use ap3esm_grid::tripolar::TripolarGrid;
use ap3esm_grid::GeodesicGrid;
use ap3esm_ice::{IceForcing, IceModel};
use ap3esm_lnd::{LndForcing, LndModel};
use ap3esm_ocn::model::{OcnConfig, OcnForcing, OcnModel};
use ap3esm_physics::constants::{temperature_from_theta, STEFAN_BOLTZMANN};
use ap3esm_physics::surface::{bulk_fluxes, BulkCoefficients};
use ap3esm_physics::ConventionalSuite;

use ap3esm_io::subfile::{SubfileReader, SubfileWriter};
use ap3esm_io::IoError;

use crate::config::CoupledConfig;
use crate::resilience::{
    with_retry, AtmGuard, CheckpointStore, GuardConfig, HealthVerdict, OcnGuard, RecoveryConfig,
    RecoveryFailure,
};
use crate::timing::{get_timing, Timers};

/// Tag of the per-ocean-coupling health agreement (severity max-reduce).
const HEALTH_TAG: u64 = 0x7EA1;
/// Tag broadcasting the checkpoint id chosen for a rollback.
const CKPT_ID_TAG: u64 = 0x7EA2;
/// Tag of the all-ranks-loaded-ok vote during a rollback.
const CKPT_OK_TAG: u64 = 0x7EA3;
/// Reply tag of the widened-window health agreement (root → peers).
const HEALTH_REPLY_TAG: u64 = 0x7EA4;
/// Sub-files per checkpoint field (matches the restart layer).
const CKPT_SUBFILES: usize = 4;
/// Telemetry busy-time exchange tags (max-reduce, sum-reduce). Dedicated
/// tags, only exchanged when `CoupledOptions::telemetry` is set, so fault
/// plans counting messages on the physics/health tags are unaffected.
const TELE_MAX_TAG: u64 = 0x7E1E;
const TELE_SUM_TAG: u64 = 0x7E1F;

/// Build the AI physics suite for the coupled model: a quick in-situ
/// training pass over conventional-physics supervision (our stand-in for
/// loading the paper's pre-trained 5-km weights; DESIGN.md substitution).
fn build_ai_driver(nlev: usize) -> PhysicsDriver {
    use ap3esm_ai::modules::{Normalizer, RadiationModule, TendencyModule};
    use ap3esm_ai::net::{RadiationMlp, TendencyCnn};
    use ap3esm_ai::train::{TrainConfig, Trainer};
    use ap3esm_physics::suite::{hydrostatic_thickness, Column, SurfaceProperties};

    let suite = ConventionalSuite::default();
    let sigma: Vec<f64> = (0..nlev)
        .map(|k| 1.0 - (k as f64 + 0.5) / nlev as f64)
        .collect();
    let ds = vec![1.0 / nlev as f64; nlev];
    let mut inputs = Vec::new();
    let mut targets = Vec::new();
    for s in 0..240 {
        let t_surf = 278.0 + 24.0 * ((s as f64) * 0.41).sin().abs();
        let t: Vec<f64> = (0..nlev)
            .map(|k| t_surf - (50.0 / nlev as f64) * k as f64)
            .collect();
        let (p, dp, dz) = hydrostatic_thickness(&sigma, &ds, 1.0e5, &t);
        let q: Vec<f64> = (0..nlev)
            .map(|k| 0.012 * (-1.5 * k as f64 / nlev as f64).exp())
            .collect();
        let col = Column {
            u: vec![6.0 * ((s % 7) as f64 - 3.0); nlev],
            v: vec![0.0; nlev],
            t: t.clone(),
            q: q.clone(),
            p: p.clone(),
            dp,
            dz,
        };
        let out = suite.step_column(
            &col,
            &SurfaceProperties {
                tskin: t_surf + 1.0,
                coszr: 0.25 * (s % 4) as f64,
                wetness: 1.0,
            },
        );
        let mut x = Vec::new();
        for src in [&col.u, &col.v, &col.t, &col.q, &col.p] {
            x.extend(src.iter().map(|&v| v as f32));
        }
        let mut y = Vec::new();
        for src in [&out.du, &out.dv, &out.dt, &out.dq] {
            y.extend(src.iter().map(|&v| v as f32));
        }
        inputs.push(x);
        targets.push(y);
    }
    let in_norm = Normalizer::fit(&inputs, 5);
    let out_norm = Normalizer::fit(&targets, 4);
    for s in inputs.iter_mut() {
        *s = in_norm.normalize(s, 5);
    }
    for s in targets.iter_mut() {
        *s = out_norm.normalize(s, 4);
    }
    let mut net = TendencyCnn::with_width(nlev, 12, 11);
    let trainer = Trainer::new(TrainConfig {
        epochs: 6,
        batch_size: 16,
        lr: 2e-3,
    });
    trainer.train_cnn(&mut net, &inputs, &targets);
    PhysicsDriver::AiSuite {
        tendency: TendencyModule::new(net, in_norm, out_norm),
        radiation: RadiationModule::new(
            RadiationMlp::with_width(nlev, 24, 13),
            Normalizer {
                mean: vec![0.0],
                std: vec![100.0],
            },
            Normalizer {
                mean: vec![200.0, 350.0],
                std: vec![100.0, 50.0],
            },
        ),
        diagnostics: ConventionalSuite::default(),
    }
}

/// Idealised initial-condition SST anomaly families, applied to the
/// coupler's initial SST boundary state at t = 0 (the reforecast-style
/// perturbation the scenario engine's ENSO catalog entries use). The
/// anomaly enters the coupled system through the first atmosphere
/// couplings' lower boundary condition; the ocean interior is untouched,
/// so the pattern relaxes on the coupling timescale like a prescribed-SST
/// nudge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SstPattern {
    /// ENSO-like anomaly: `amplitude` K (positive = warm event, negative =
    /// cold) centred on an eastern-basin warm pool, Gaussian in latitude
    /// (~15° e-folding) and longitude (~40°).
    Enso { amplitude: f64 },
}

impl SstPattern {
    /// Anomaly (K) at a point, `lat`/`lon` in radians.
    pub fn anomaly(&self, lat: f64, lon: f64) -> f64 {
        match self {
            SstPattern::Enso { amplitude } => {
                // Eastern-Pacific-like centre at 240°E.
                let lon0 = 240f64.to_radians();
                let mut dl = (lon - lon0) % std::f64::consts::TAU;
                if dl > std::f64::consts::PI {
                    dl -= std::f64::consts::TAU;
                }
                if dl < -std::f64::consts::PI {
                    dl += std::f64::consts::TAU;
                }
                let meridional = (-(lat / 15f64.to_radians()).powi(2)).exp();
                let zonal = (-(dl / 40f64.to_radians()).powi(2)).exp();
                amplitude * meridional * zonal
            }
        }
    }
}

/// Seeded white-noise perturbation of the initial potential temperature
/// (ensemble-spread generator): every cell of every level gets a
/// deterministic `±amplitude/2` offset hashed from `(seed, cell index)`,
/// so two members with different seeds decorrelate while any one member
/// stays bitwise reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Perturbation {
    pub seed: u64,
    /// Peak-to-peak noise amplitude (K).
    pub amplitude: f64,
}

impl Perturbation {
    /// Centred noise in `[-amplitude/2, amplitude/2]` for index `i`
    /// (splitmix64 of the seed and index — no RNG state to carry).
    pub fn noise(&self, i: usize) -> f64 {
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        (u - 0.5) * self.amplitude
    }
}

/// Run options.
#[derive(Debug, Clone)]
pub struct CoupledOptions {
    /// Simulated days.
    pub days: f64,
    /// Seed this vortex into the atmosphere at t = 0 (forecast experiment).
    pub vortex: Option<VortexSpec>,
    /// Further vortices seeded after `vortex` (multi-vortex basin
    /// experiments); order matters only where cores overlap.
    pub extra_vortices: Vec<VortexSpec>,
    /// Idealised SST anomaly added to the initial coupler SST state.
    pub sst_pattern: Option<SstPattern>,
    /// Seeded noise added to the initial θ field (ensemble spread).
    pub perturb: Option<Perturbation>,
    /// Track the vortex at every atmosphere coupling.
    pub record_track: bool,
    /// Emit a JSON run report named `run-<name>.json` under `target/obs/`.
    /// Collective: every rank contributes its span tree to the cross-rank
    /// section table; rank 0 writes the file.
    pub report_name: Option<String>,
    /// Also export per-rank timelines: a Chrome Trace Event file
    /// (`trace-<name>.json`, one `pid` per rank, span + comm-flow events,
    /// resilience instants) and a collapsed-stack flamegraph
    /// (`trace-<name>.folded`). Requires `report_name`; ignored without it.
    pub trace: bool,
    /// Opt-in live telemetry: every N ocean couplings, rank 0 prints step
    /// rate, an SYPD estimate, and the per-component wall-time split to
    /// stderr. `None` (the default) prints nothing.
    pub progress_every: Option<u64>,
    /// Enable checkpoint/rollback recovery, writing checkpoints under this
    /// directory (shared by all ranks). `None` disables the entire
    /// resilience path: no guards, no health exchange, no checkpoints.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Recovery policy (only consulted when `checkpoint_dir` is set).
    pub recovery: RecoveryConfig,
    /// Resume the run from this checkpoint directory instead of a cold
    /// start. The directory must hold a restart set matching this world's
    /// layout (e.g. a `shrunk_g<N>` hand-off written by a degraded run, or
    /// an ordinary `ckpt_*` directory). Requires `checkpoint_dir`.
    pub resume_from: Option<std::path::PathBuf>,
    /// Continuous telemetry: background sampling of the metrics registry
    /// into a time-series store, SLO/anomaly alerting, and an optional
    /// OpenMetrics scrape endpoint — all on rank 0. `None` (the default)
    /// runs no sampler thread and exchanges no telemetry messages, so
    /// fault plans that count messages see an unchanged stream.
    pub telemetry: Option<TelemetryOptions>,
    /// Black-box flight recorder (default **on**): every rank journals
    /// structured resilience events (health transitions, rollbacks,
    /// shrinks, checkpoint begin/commit, fault firings) into a bounded
    /// per-rank ring shared through the world's blackbox slot, and the
    /// comm-event timeline records always. When the run ends in trouble
    /// (structured failure, shrink, rollback, or any fault event), rank 0
    /// dumps a self-contained diagnostics bundle to
    /// `target/obs/bundle-<name>/` for `ap3esm_obs::flightrec::analyze`.
    /// Steady-state cost is one relaxed load per journal call plus the
    /// bounded comm-event rings.
    pub flightrec: bool,
    /// Bundle directory name (`bundle-<name>`). Defaults to `report_name`,
    /// then to `pid<process id>`.
    pub bundle_name: Option<String>,
}

impl Default for CoupledOptions {
    fn default() -> Self {
        CoupledOptions {
            days: 1.0,
            vortex: None,
            extra_vortices: Vec::new(),
            sst_pattern: None,
            perturb: None,
            record_track: false,
            report_name: None,
            trace: false,
            progress_every: None,
            checkpoint_dir: None,
            recovery: RecoveryConfig::default(),
            resume_from: None,
            telemetry: None,
            flightrec: true,
            bundle_name: None,
        }
    }
}

/// Continuous-telemetry options. When set on [`CoupledOptions`], rank 0
/// runs a background [`ap3esm_obs::Sampler`] copying every registered
/// counter/gauge/histogram into an in-process [`ap3esm_obs::SeriesStore`]
/// on `cadence`, evaluates the alert rules on every tick, and (with
/// `metrics_addr`) serves live OpenMetrics scrapes over HTTP. Every ocean
/// coupling additionally exchanges per-rank busy time (dedicated tags) so
/// rank 0 can gauge `sim.sypd`, `sim.imbalance` and `sim.step_wall_s`.
#[derive(Debug, Clone)]
pub struct TelemetryOptions {
    /// Sampling cadence of the background sampler thread.
    pub cadence: std::time::Duration,
    /// Bind an OpenMetrics scrape endpoint here (e.g. `127.0.0.1:9464`;
    /// port 0 binds an ephemeral port — see
    /// [`CoupledStats::metrics_addr`]). `None` disables the endpoint.
    pub metrics_addr: Option<String>,
    /// Seed the engine with the built-in simulation rules ([SYPD collapse,
    /// imbalance drift, Degraded streak](ap3esm_obs::sim_rules)).
    pub builtin_rules: bool,
    /// Extra alert rules in the `ap3esm_obs::alert` grammar, one per line
    /// (appended after the built-ins; bad rules panic at startup).
    pub rules: String,
    /// Write the full series store to `target/obs/series-<name>.json`
    /// after the run (requires `report_name`; ignored without it).
    pub snapshot: bool,
    /// Raw-tier ring capacity per series, in samples. At the default
    /// cadence the default capacity retains minutes of raw history (the
    /// 10x/100x tiers extend it); size up for high-frequency sampling so
    /// pre-incident baseline survives for offline replay.
    pub capacity: usize,
}

impl Default for TelemetryOptions {
    fn default() -> Self {
        TelemetryOptions {
            cadence: std::time::Duration::from_millis(250),
            metrics_addr: None,
            builtin_rules: true,
            rules: String::new(),
            snapshot: true,
            capacity: ap3esm_obs::tsdb::DEFAULT_CAPACITY,
        }
    }
}

/// Per-run results (rank 0 carries the series; ocean ranks carry timing).
#[derive(Debug, Clone, Default)]
pub struct CoupledStats {
    pub simulated_seconds: f64,
    pub wall_seconds: f64,
    /// Measured SYPD of this (laptop-scale) run.
    pub sypd: f64,
    /// Global mean SST (°C) at each ocean coupling.
    pub sst_series: Vec<f64>,
    /// Atmosphere global mass-weighted mean θ (K) at each atm coupling.
    pub theta_series: Vec<f64>,
    /// Global ocean kinetic energy at each ocean coupling.
    pub ke_series: Vec<f64>,
    /// Tracked vortex positions (if requested).
    pub track: Vec<TrackPoint>,
    /// Mean ice cover at each ice coupling.
    pub ice_series: Vec<f64>,
    /// Coupler bytes moved (from the world's stats, measured by rank 0).
    pub per_section_seconds: Vec<(String, f64)>,
    /// The serialised run report (rank 0, when `report_name` was set).
    pub report_json: Option<String>,
    /// Where the report was written (rank 0, when `report_name` was set).
    pub report_path: Option<std::path::PathBuf>,
    /// Where the chrome-trace file was written (rank 0, when tracing).
    pub trace_path: Option<std::path::PathBuf>,
    /// Critical-path analysis of the traced run: per-interval path,
    /// wait-state classification and what-if projection (rank 0, when
    /// tracing with a report name).
    pub critpath: Option<ap3esm_obs::critpath::Analysis>,
    /// Where the collapsed-stack file was written (rank 0, when tracing).
    pub folded_path: Option<std::path::PathBuf>,
    /// Rollbacks performed by the recovery layer.
    pub recoveries: usize,
    /// Shrink-to-fit recoveries: how many times the world lost a rank
    /// permanently and rebuilt itself one generation up.
    pub shrinks: usize,
    /// Ranks permanently lost (launched world size minus final membership),
    /// nonzero only when the run finished in degraded mode.
    pub degraded_ranks: usize,
    /// True on a rank that was fault-injected dead mid-run: it stopped
    /// participating and its stats end at the point of death.
    pub lost: bool,
    /// Human-readable fault events (injected faults, comm errors, guard
    /// verdicts that triggered rollbacks), in firing order.
    pub fault_events: Vec<String>,
    /// Set when the run ended in a clean structured failure (recovery
    /// budget exhausted or no usable checkpoint) instead of completing.
    pub failure: Option<String>,
    /// Alert firings observed by the telemetry engine, in firing order
    /// (rank 0, when telemetry was enabled).
    pub alerts: Vec<String>,
    /// Where the time-series snapshot was written (rank 0, when telemetry
    /// with `snapshot` and a `report_name` were set).
    pub series_path: Option<std::path::PathBuf>,
    /// The OpenMetrics endpoint actually bound — resolves port 0 to the
    /// ephemeral port (rank 0, when telemetry set `metrics_addr`).
    pub metrics_addr: Option<String>,
    /// Where the flight-recorder diagnostics bundle was written (rank 0,
    /// when the recorder was on and the run ended in trouble).
    pub bundle_path: Option<std::path::PathBuf>,
}

impl CoupledStats {
    /// Harvest this run's trajectory metrics (the `perf.sim.*` vocabulary
    /// shared by `BENCH_*.json` files, run reports and tsdb gauges):
    /// SYPD (gated, higher-is-better), the per-section wall breakdown
    /// from the span tree, and — when a report was written — the
    /// coupler's message/byte traffic and sub-file I/O byte counters
    /// (informational: they attribute cost, they don't gate).
    pub fn perf_metrics(&self) -> Vec<(String, ap3esm_obs::perf::Stat)> {
        use ap3esm_obs::perf::{Direction, Stat};
        let mut out = vec![
            (
                "perf.sim.sypd".to_string(),
                Stat::single(self.sypd, "sypd", Direction::HigherIsBetter),
            ),
            (
                "perf.sim.wall_s".to_string(),
                Stat::single(self.wall_seconds, "s", Direction::Informational),
            ),
        ];
        for (name, secs) in &self.per_section_seconds {
            out.push((
                format!("perf.sim.section.{name}.wall_s"),
                Stat::single(*secs, "s", Direction::Informational),
            ));
        }
        // Critical-path attribution (traced runs): where the wall time on
        // the longest cross-rank chain actually went, plus the projected
        // payoff of halving the top-blamed section. Informational — the
        // fractions are attribution, not speed, and jitter run to run.
        if let Some(a) = &self.critpath {
            for (name, v) in [
                ("compute_frac", a.compute_frac()),
                ("comm_frac", a.comm_frac()),
                ("wait_frac", a.wait_frac()),
            ] {
                out.push((
                    format!("perf.sim.critpath.{name}"),
                    Stat::single(v, "frac", Direction::Informational),
                ));
            }
            for s in &a.sections {
                if s.name == ap3esm_obs::critpath::UNTRACKED {
                    continue;
                }
                out.push((
                    format!("perf.sim.critpath.section.{}.on_path_s", s.name),
                    Stat::single(
                        s.on_path_us() as f64 / 1e6,
                        "s",
                        Direction::Informational,
                    ),
                ));
            }
            if let Some(w) = &a.what_if_half_top {
                out.push((
                    "perf.sim.critpath.what_if_half_top_gain_pct".to_string(),
                    Stat::single(w.gain_pct, "%", Direction::Informational),
                ));
            }
        }
        if let Some(json) = &self.report_json {
            if let Ok(report) = ap3esm_obs::json::Json::parse(json) {
                let comm = report.get("comm");
                for (field, metric) in [
                    ("total_bytes", "perf.sim.comm_bytes"),
                    ("total_messages", "perf.sim.comm_msgs"),
                ] {
                    if let Some(v) = comm.and_then(|c| c.get(field)).and_then(|v| v.as_f64()) {
                        out.push((
                            metric.to_string(),
                            Stat::single(
                                v,
                                if field == "total_bytes" {
                                    "bytes"
                                } else {
                                    "msgs"
                                },
                                Direction::Informational,
                            ),
                        ));
                    }
                }
                if let Some(v) = report
                    .get("metrics")
                    .and_then(|m| m.get("io.write.bytes"))
                    .and_then(|v| v.as_f64())
                {
                    out.push((
                        "perf.sim.io_write_bytes".to_string(),
                        Stat::single(v, "bytes", Direction::Informational),
                    ));
                }
            }
        }
        out
    }
}

/// Fit the atmosphere stepping so an integer number of model steps covers
/// the coupling period (§5.1.1's consistency requirement).
fn fitted_atm_config(dx_km: f64, period: f64) -> DycoreConfig {
    let base = DycoreConfig::for_spacing_km(dx_km);
    let n = (period / base.dt_model).ceil().max(1.0);
    let dt_model = period / n;
    let dt_tracer = dt_model / 4.0;
    let dt_dyn = dt_tracer / 4.0;
    DycoreConfig {
        dt_dyn,
        dt_tracer,
        dt_model,
        nu: 0.015 * (dx_km * 1000.0).powi(2) / dt_dyn,
    }
}

/// Same fitting for the ocean.
fn fitted_ocn_config(config: &CoupledConfig, period: f64) -> OcnConfig {
    let mut c = OcnConfig::for_grid(
        config.ocn_nlon,
        config.ocn_nlat,
        config.ocn_nlev,
        config.ocn_px,
        config.ocn_py,
    );
    let n = (period / c.dt_baroclinic).ceil().max(1.0);
    c.dt_baroclinic = period / n;
    c
}

/// The ocean block decomposition of one world generation: the configured
/// mesh at generation 0, a shrink-to-fit re-decomposition over whatever
/// ocean ranks survive afterwards.
fn generation_ocn_decomp(config: &CoupledConfig, rank: &Rank) -> BlockDecomp2d {
    if rank.generation() == 0 {
        BlockDecomp2d::new(
            config.ocn_nlon,
            config.ocn_nlat,
            config.ocn_px,
            config.ocn_py,
        )
    } else {
        BlockDecomp2d::auto(config.ocn_nlon, config.ocn_nlat, rank.size() - 1)
    }
}

/// Per-rank runtime of the recovery layer.
struct Resilience {
    store: CheckpointStore,
    cfg: RecoveryConfig,
    recoveries: usize,
    /// Corruption events already applied (one-shot: a checkpoint rewritten
    /// after a rollback is not re-corrupted, or recovery could never
    /// converge).
    applied_corruptions: std::collections::HashSet<(u64, String, u32, u64)>,
}

impl Resilience {
    fn new(dir: &std::path::Path, cfg: &RecoveryConfig) -> Self {
        Resilience {
            store: CheckpointStore::new(dir, cfg.keep_checkpoints),
            cfg: cfg.clone(),
            recoveries: 0,
            applied_corruptions: std::collections::HashSet::new(),
        }
    }
}

/// Write one auxiliary (non-restart-layer) checkpoint field.
fn write_aux(dir: &std::path::Path, name: &str, data: &[f64]) -> Result<(), IoError> {
    SubfileWriter::new(dir, name, &[data.len()], CKPT_SUBFILES).write_all(data)
}

/// Read one auxiliary checkpoint field, validating its length.
fn read_aux(dir: &std::path::Path, name: &str, want: usize) -> Result<Vec<f64>, IoError> {
    let (_, data) = SubfileReader::new(dir, name).read_all()?;
    if data.len() != want {
        return Err(IoError::Inconsistent(format!(
            "{name}: {} elements, expected {want}",
            data.len()
        )));
    }
    Ok(data)
}

/// All-ranks "did your checkpoint load succeed" vote: `Ok(true)` only if
/// every rank loaded cleanly. A comm error means the vote itself could not
/// complete (a peer vanished mid-restore) and is escalated by the caller.
fn try_vote_all_ok(rank: &Rank, ok: bool) -> Result<bool, ap3esm_comm::CommError> {
    let mine: f64 = if ok { 1.0 } else { 0.0 };
    let all =
        ap3esm_comm::collectives::allreduce(rank, CKPT_OK_TAG, vec![mine], |a: &f64, b| a.min(*b))?
            [0];
    Ok(all >= 1.0)
}

/// [`try_vote_all_ok`] for the rollback path, where the health agreement
/// has already established that every member is alive.
fn vote_all_ok(rank: &Rank, ok: bool) -> bool {
    try_vote_all_ok(rank, ok).expect("checkpoint vote")
}

/// Rank 0 announces which committed checkpoint a rollback restores
/// (`-1` = none left); every rank returns the agreed id.
fn agree_candidate(rank: &Rank, mine: i64) -> i64 {
    ap3esm_comm::collectives::bcast(rank, CKPT_ID_TAG, 0, vec![mine]).expect("checkpoint id")[0]
}

/// The per-ocean-coupling health agreement (severity max-reduce), with a
/// window widened to 4x the world's receive timeout on every leg: a
/// healthy peer can legitimately arrive a couple of timed-out data legs
/// late (each stall is bounded by one receive timeout), and the sync
/// point must out-wait that skew or a slow-but-alive rank would be
/// misdeclared dead. Root keeps polling the remaining peers after a
/// timeout so the *first* failure — the real casualty — carries the blame.
fn agree_severity(rank: &Rank, sev: f64) -> Result<f64, ap3esm_comm::CommError> {
    let n = rank.size();
    if n == 1 {
        return Ok(sev);
    }
    let window = rank.recv_timeout() * 4;
    if rank.id() == 0 {
        let mut max = sev;
        let mut first_err = None;
        for src in 1..n {
            match rank.recv_within::<f64>(src, HEALTH_TAG, window) {
                Ok(v) => max = max.max(v[0]),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        for dst in 1..n {
            rank.send(dst, HEALTH_REPLY_TAG, vec![max]);
        }
        Ok(max)
    } else {
        rank.send(0, HEALTH_TAG, vec![sev]);
        Ok(rank.recv_within::<f64>(0, HEALTH_REPLY_TAG, window)?[0])
    }
}

/// Record on the world-shared flight recorder, if one is installed in the
/// world's blackbox slot. Journals are keyed by *physical* rank id, so
/// entries stay attributable across shrinks. One relaxed load plus a
/// `OnceLock` read when no recorder is installed.
fn fr_record(rank: &Rank, kind: ap3esm_obs::FrKind, a: u64, b: u64, detail: &str) {
    if let Some(slot) = rank.blackbox().get() {
        if let Some(rec) = slot.downcast_ref::<ap3esm_obs::FlightRecorder>() {
            rec.record(rank.world_id(), kind, a, b, detail);
        }
    }
}

/// What the membership escalation decided after a failed health agreement.
enum SurvivorOutcome {
    /// Everyone answered the liveness poll: the failure was transient
    /// (dropped/late messages). The caller proceeds with a normal rollback.
    Transient,
    /// The world shrank: a successor membership one generation up is
    /// installed and the caller must rebuild its layout from the
    /// redistributed checkpoint hand-off.
    Shrunk,
    /// This rank is out of the run: evicted by the survivors, or the
    /// shrink budget is exhausted. Carries the structured failure text.
    Failed(String),
}

/// Escalate a failed health agreement to a membership vote (DESIGN.md
/// §13): blame the peer the timeout names, let virtual rank 0 poll
/// liveness, and install the survivors' successor view if someone is
/// permanently gone. Deterministic on every survivor: they all observe
/// the same verdict sequence, so local shrink counters stay in agreement
/// without extra communication.
fn agree_survivors(
    rank: &Rank,
    err: &ap3esm_comm::CommError,
    stats: &mut CoupledStats,
    shrinks: &mut usize,
    max_shrinks: usize,
) -> SurvivorOutcome {
    let blamed = match err {
        ap3esm_comm::CommError::Deadlock { waiting, .. } => waiting.first().map(|&(src, _)| src),
        _ => None,
    };
    stats
        .fault_events
        .push(format!("health agreement failed: {err}"));
    ap3esm_obs::instant("health.agreement_lost");
    fr_record(
        rank,
        ap3esm_obs::FrKind::Health,
        2,
        blamed.map(|b| b as u64).unwrap_or(u64::MAX),
        &format!("health agreement failed: {err}"),
    );
    match rank.membership_vote(blamed) {
        Ok(ap3esm_comm::MembershipVerdict::AllAlive) => SurvivorOutcome::Transient,
        Ok(ap3esm_comm::MembershipVerdict::Shrink(m)) => {
            *shrinks += 1;
            stats.shrinks = *shrinks;
            let dropped = rank.drain_stale();
            let total: usize = dropped.iter().map(|&(_, n)| n).sum();
            if total > 0 {
                ap3esm_obs::counter_add("resilience.drained_messages", total as u64);
                stats.fault_events.push(format!(
                    "stale traffic discarded post-shrink: {}",
                    dropped
                        .iter()
                        .map(|&(src, n)| format!("{n} from rank {src}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            stats.fault_events.push(format!(
                "membership shrunk to {:?} (generation {})",
                m.members, m.generation
            ));
            fr_record(
                rank,
                ap3esm_obs::FrKind::Shrink,
                m.generation,
                m.members.len() as u64,
                &format!("survivors {:?}", m.members),
            );
            if *shrinks > max_shrinks {
                return SurvivorOutcome::Failed(format!(
                    "shrink budget exhausted: {} permanent rank losses exceed max_shrinks {}",
                    *shrinks, max_shrinks
                ));
            }
            SurvivorOutcome::Shrunk
        }
        Err(e) => SurvivorOutcome::Failed(format!(
            "evicted from the world during membership agreement: {e}"
        )),
    }
}

/// Count a guard verdict on the obs registry; returns the verdict back.
fn observe_verdict(verdict: HealthVerdict, rank_id: usize) -> HealthVerdict {
    match &verdict {
        HealthVerdict::Healthy => {}
        HealthVerdict::Degraded(m) => {
            ap3esm_obs::counter_add("resilience.guard_degraded", 1);
            ap3esm_obs::instant("health.degraded");
            eprintln!("[resilience] rank {rank_id} degraded: {m}");
        }
        HealthVerdict::Fatal(m) => {
            ap3esm_obs::counter_add("resilience.guard_fatal", 1);
            ap3esm_obs::instant("health.fatal");
            eprintln!("[resilience] rank {rank_id} fatal: {m}");
        }
    }
    verdict
}

/// Enter a rollback: count it against the budget and synchronise + drain
/// every mailbox so replayed message streams start from clean FIFO queues.
/// Returns the structured failure if the budget is exhausted.
fn begin_rollback(rank: &Rank, resil: &mut Resilience, reason: &str) -> Option<RecoveryFailure> {
    resil.recoveries += 1;
    ap3esm_obs::counter_add("resilience.rollbacks", 1);
    ap3esm_obs::instant("rollback");
    fr_record(
        rank,
        ap3esm_obs::FrKind::Recovery,
        resil.recoveries as u64,
        0,
        reason,
    );
    if resil.recoveries > resil.cfg.max_recoveries {
        return Some(RecoveryFailure {
            recoveries_attempted: resil.recoveries - 1,
            reason: reason.to_string(),
        });
    }
    rank.barrier();
    let drained = rank.drain_mailbox();
    if drained > 0 {
        ap3esm_obs::counter_add("resilience.drained_messages", drained as u64);
    }
    rank.barrier();
    None
}

/// Commit a freshly written checkpoint (rank 0 only) and apply any
/// checkpoint-corruption fault events targeting it.
fn commit_checkpoint(rank: &Rank, resil: &mut Resilience, id: u64) {
    with_retry(
        "checkpoint commit",
        resil.cfg.retries,
        resil.cfg.backoff,
        || resil.store.commit(id),
    )
    .expect("checkpoint commit");
    ap3esm_obs::counter_add("resilience.checkpoints", 1);
    ap3esm_obs::instant("checkpoint.commit");
    fr_record(rank, ap3esm_obs::FrKind::CkptCommit, id, 0, "");
    if let Some(inj) = rank.fault_injector() {
        let corruptions: Vec<(String, u32, u64)> = inj
            .plan()
            .corruptions_for(id)
            .into_iter()
            .map(|(f, s, b)| (f.to_string(), s, b))
            .collect();
        for (field, sub, byte) in corruptions {
            let key = (id, field.clone(), sub, byte);
            if !resil.applied_corruptions.insert(key) {
                continue;
            }
            if resil
                .store
                .corrupt_subfile_byte(id, &field, sub, byte)
                .unwrap_or(false)
            {
                inj.record_external(format!(
                    "corrupted checkpoint {id} field {field} subfile {sub} byte {byte}"
                ));
                ap3esm_obs::counter_add("resilience.faults", 1);
                ap3esm_obs::instant("fault.corrupt");
            }
        }
    }
}

/// Run the coupled model; every world rank calls this inside `World::run`.
pub fn run_coupled(rank: &Rank, config: &CoupledConfig, opts: &CoupledOptions) -> CoupledStats {
    if let Err(e) = config.validate() {
        panic!("invalid configuration: {e}");
    }
    assert_eq!(rank.size(), config.world_size(), "world size mismatch");
    // Physical rank 0 chairs the membership vote, so a shrink can never
    // evict it: root-ness is stable across generations even though
    // `rank.id()`/`rank.size()` are per-view.
    let is_root = rank.id() == 0;

    let mask = MaskGenerator {
        seed: config.mask_seed,
        ..MaskGenerator::default()
    };
    let ocn_grid = TripolarGrid::new(config.ocn_nlon, config.ocn_nlat, config.ocn_nlev, mask);
    let ncols = ocn_grid.ncols();

    let mut clock = CouplingClock::new(
        config.couplings_per_day.0,
        config.couplings_per_day.1,
        config.couplings_per_day.2,
    );
    let atm_period = clock.atm_alarm.period as f64;
    let ocn_period = clock.ocn_alarm.period as f64;
    let ice_period = clock.ice_alarm.period as f64;

    // One observability instance per rank: timer sections and the leaf-crate
    // spans (dycore substeps, rearranger, sub-file I/O) land in one tree.
    let obs = std::sync::Arc::new(ap3esm_obs::Obs::new());
    let _obs_guard = ap3esm_obs::install(std::sync::Arc::clone(&obs));
    let mut timers = Timers::attached(std::sync::Arc::clone(&obs));
    // Timeline tracing: every rank buffers its span/instant events in a
    // bounded sink and the world's comm-event rings start recording; both
    // are drained into one chrome-trace file after the run.
    let tracing = opts.trace && opts.report_name.is_some();
    let trace_sink = tracing.then(|| {
        let sink = std::sync::Arc::new(ap3esm_obs::TraceSink::default());
        obs.profiler
            .set_trace_sink(Some(std::sync::Arc::clone(&sink)));
        rank.comm_events().set_enabled(true);
        sink
    });
    // Black-box flight recorder (always-on by default): one recorder for
    // the whole world, shared through the blackbox slot — the first rank
    // to arrive installs it, no messages exchanged. The comm-event rings
    // start recording too, so a postmortem bundle has both journal halves.
    let flightrec_on = opts.flightrec;
    if flightrec_on {
        rank.blackbox().get_or_init(|| {
            std::sync::Arc::new(ap3esm_obs::FlightRecorder::new(
                rank.world_size(),
                ap3esm_obs::DEFAULT_FLIGHT_CAPACITY,
            )) as std::sync::Arc<dyn std::any::Any + Send + Sync>
        });
        rank.comm_events().set_enabled(true);
        fr_record(rank, ap3esm_obs::FrKind::Mark, rank.generation(), 0, "run start");
    }
    let t_start = std::time::Instant::now();
    let total_seconds = (opts.days * 86_400.0).round();
    let mut stats = CoupledStats::default();

    // --- Continuous telemetry (opt-in). Every rank notes the flag (the
    //     busy-time exchange is collective); rank 0 additionally runs the
    //     sampler thread, the alert engine, and the scrape endpoint. ---
    let telemetry_on = opts.telemetry.is_some();
    let mut telemetry = opts.telemetry.as_ref().filter(|_| is_root).map(|t| {
        let store = std::sync::Arc::new(ap3esm_obs::SeriesStore::new(t.capacity));
        let mut rules = if t.builtin_rules {
            ap3esm_obs::sim_rules()
        } else {
            Vec::new()
        };
        rules.extend(ap3esm_obs::parse_rules(&t.rules).expect("telemetry alert rules"));
        let engine = std::sync::Arc::new(ap3esm_obs::AlertEngine::new(rules));
        let sampler = ap3esm_obs::Sampler::start(
            std::sync::Arc::clone(&obs),
            std::sync::Arc::clone(&store),
            Some(std::sync::Arc::clone(&engine)),
            t.cadence,
            Vec::new(),
        );
        let server = t.metrics_addr.as_ref().map(|addr| {
            ap3esm_obs::MetricsServer::start(
                addr,
                std::sync::Arc::clone(&obs),
                std::sync::Arc::clone(&store),
                Some(std::sync::Arc::clone(&engine)),
            )
            .expect("bind OpenMetrics endpoint")
        });
        (store, engine, sampler, server)
    });
    if let Some((_, _, _, Some(server))) = &telemetry {
        stats.metrics_addr = Some(server.local_addr().to_string());
    }

    // --- Recovery-layer state that must survive world reconstruction: the
    //     checkpoint store (rollback + shrink budgets accumulate across
    //     generations), the restore hand-off, and the shrink counter. ---
    let mut resil = opts
        .checkpoint_dir
        .as_ref()
        .map(|d| Resilience::new(d, &opts.recovery));
    if is_root {
        if let Some(r) = &resil {
            // Checkpoint ids are this run's ocean-coupling indices: stale
            // checkpoints from an earlier run sharing the directory must
            // not shadow them. Safe without a barrier — no other rank
            // touches the store before the first checkpoint barrier, which
            // rank 0 only reaches after this point.
            r.store.reset().expect("clear stale checkpoints");
        }
        ap3esm_obs::gauge_set("sim.degraded_ranks", 0.0);
    }
    // A directory every rank restores from at the top of the next world
    // generation: an explicit `resume_from`, or the redistributed
    // checkpoint a shrink hands off.
    let mut pending_restore: Option<std::path::PathBuf> = opts.resume_from.clone();
    let mut shrinks = 0usize;

    // ===== The world loop: one iteration per membership generation. A
    //       shrink re-enters it with a smaller world; everything layout-
    //       dependent below is rebuilt, everything above persists. =====
    'world: loop {
        let world_ranks = rank.size();
        let me = rank.id();

        // --- Coupler data structures (rebuilt per generation; cheap at our
        //     sizes, and on Sunway they would be loaded from the offline
        //     store). The generation-0 block decomposition is the configured
        //     px x py mesh; after a shrink it is re-fitted to the survivors. ---
        let ocn_decomp = generation_ocn_decomp(config, rank);
        let ocn_map = if config.single_domain {
            GSMap::all_on_rank(ncols, world_ranks, 0)
        } else {
            GSMap::from_block2d(&ocn_decomp, world_ranks, 1)
        };
        let root_map = GSMap::all_on_rank(ncols, world_ranks, 0);
        let scatter = Rearranger::new(Router::build(&root_map, &ocn_map), 21);
        let gather = Rearranger::new(Router::build(&ocn_map, &root_map), 22);
        let my_ocn_cols = ocn_map.local_size(me);

        if is_root {
            // ================= Domain A: coupler + ATM + ICE + LND ==========
            let grid = std::sync::Arc::new(GeodesicGrid::new(config.atm_glevel));
            let dx_km = grid.mean_spacing_km();
            let mut atm =
                AtmState::isothermal(std::sync::Arc::clone(&grid), config.atm_nlev, 288.0);
            // Meridional temperature structure so the circulation is not
            // degenerate: warm tropics, cold poles.
            {
                let n = grid.ncells();
                for k in 0..config.atm_nlev {
                    for i in 0..n {
                        let phi = grid.cells[i].lat();
                        atm.theta[k * n + i] += 15.0 * (phi.cos().powi(2) - 0.5);
                    }
                }
            }
            if let Some(spec) = &opts.vortex {
                seed_vortex(&mut atm, spec);
            }
            for spec in &opts.extra_vortices {
                seed_vortex(&mut atm, spec);
            }
            if let Some(p) = &opts.perturb {
                for (i, th) in atm.theta.iter_mut().enumerate() {
                    *th += p.noise(i);
                }
            }
            let dycore = Dycore::new(
                std::sync::Arc::clone(&grid),
                fitted_atm_config(dx_km, atm_period),
            );
            let mut pdc = PhysicsDynamicsCoupler::new(if config.ai_physics {
                build_ai_driver(config.atm_nlev)
            } else {
                PhysicsDriver::Conventional(ConventionalSuite::default())
            });

            // Land on atmosphere cells, same synthetic continents.
            let (atm_land, _) = mask.land_mask(&grid.cells, 0.29);
            let mut lnd = LndModel::new(atm_land.clone(), 285.0);

            // Ice on the full ocean grid (domain A owns ice).
            let ice_decomp = BlockDecomp2d::new(config.ocn_nlon, config.ocn_nlat, 1, 1);
            let mut ice = IceModel::new(&ocn_grid, &ice_decomp, 0);

            // Remap matrices.
            let ocn_points: Vec<Vec3> = (0..config.ocn_nlat)
                .flat_map(|j| {
                    (0..config.ocn_nlon)
                        .map(move |i| (i, j))
                        .collect::<Vec<_>>()
                })
                .map(|(i, j)| Vec3::from_lat_lon(ocn_grid.lat[j], ocn_grid.lon[i]))
                .collect();
            let atm_to_ocn = RemapMatrix::inverse_distance(&grid.cells, &ocn_points, 3);
            let ocn_to_atm = RemapMatrix::inverse_distance(&ocn_points, &grid.cells, 3);
            let ocn_valid: Vec<bool> = (0..ncols).map(|c| ocn_grid.kmt[c] > 0).collect();

            // Sequential layout: the ocean lives on this rank too (§5.1.2's
            // "all components are executed sequentially within a single
            // domain").
            let mut ocn_inline = if config.single_domain {
                let mut c = fitted_ocn_config(config, ocn_period);
                c.px = 1;
                c.py = 1;
                c.rank_offset = 0;
                Some((OcnModel::new(&ocn_grid, c.clone(), 0), c))
            } else {
                None
            };

            // Rank-0 global copies of ocean/ice surface state.
            let mut sst_global: Vec<f64> = (0..ncols)
                .map(|c| {
                    let j = c / config.ocn_nlon;
                    let i = c % config.ocn_nlon;
                    let phi = ocn_grid.lat[j];
                    let base = 2.0 + 26.0 * phi.cos().powi(2);
                    match &opts.sst_pattern {
                        Some(p) => base + p.anomaly(phi, ocn_grid.lon[i]),
                        None => base,
                    }
                })
                .collect();
            let mut ssu_global = vec![0.0; ncols];
            let mut ssv_global = vec![0.0; ncols];
            let mut ice_frac_global = ice.state.fraction.clone();
            let mut ice_heat_global = vec![0.0; ncols];
            let mut ice_fresh_global = vec![0.0; ncols];
            let mut last_precip_accum = vec![0.0; grid.ncells()];
            let mut prev_track: Option<(f64, f64)> = None;

            let bulk = BulkCoefficients::default();

            // Live-telemetry state: wall clock + sim time at the last heartbeat.
            let mut hb_last: Option<(std::time::Instant, f64)> = None;
            // Continuous-telemetry state: cumulative busy seconds + wall clock
            // at the previous ocean coupling.
            let mut tele_prev_busy = 0.0f64;
            let mut tele_last_wall = std::time::Instant::now();

            let atm_guard = AtmGuard::new(&atm, GuardConfig::default(), dycore.config.dt_dyn);
            let inline_guard = ocn_inline.as_ref().map(|(ocn, c)| {
                OcnGuard::new(
                    &ocn.state,
                    GuardConfig::default(),
                    c.dt_baroclinic / c.n_barotropic.max(1) as f64,
                )
            });

            // Restore the full domain-A state from a checkpoint directory.
            // A macro (not a closure) because it borrows half the locals above
            // mutably; shared between rollbacks and generation-entry resumes.
            // Evaluates to `Result<Vec<f64>, IoError>` carrying `cpl_meta`.
            macro_rules! restore_domain_a {
                ($dir:expr) => {{
                    let dir: &std::path::Path = $dir;
                    (|| -> Result<Vec<f64>, IoError> {
                        crate::restart::read_atm_restart(dir, &mut atm)?;
                        lnd.state.tskin = read_aux(dir, "lnd_tskin", lnd.state.tskin.len())?;
                        lnd.state.moisture = read_aux(dir, "lnd_moist", lnd.state.moisture.len())?;
                        ice.state.fraction = read_aux(dir, "ice_frac", ice.state.fraction.len())?;
                        ice.state.thickness =
                            read_aux(dir, "ice_thick", ice.state.thickness.len())?;
                        ice.state.tsfc = read_aux(dir, "ice_tsfc", ice.state.tsfc.len())?;
                        sst_global = read_aux(dir, "cpl_sst", ncols)?;
                        ssu_global = read_aux(dir, "cpl_ssu", ncols)?;
                        ssv_global = read_aux(dir, "cpl_ssv", ncols)?;
                        ice_frac_global = read_aux(dir, "cpl_icefrac", ncols)?;
                        ice_heat_global = read_aux(dir, "cpl_iceheat", ncols)?;
                        ice_fresh_global = read_aux(dir, "cpl_icefresh", ncols)?;
                        last_precip_accum = read_aux(dir, "cpl_precip", last_precip_accum.len())?;
                        if let Some((ocn, _)) = ocn_inline.as_mut() {
                            crate::restart::read_ocn_restart(dir, &mut ocn.state, 0)?;
                        }
                        read_aux(dir, "cpl_meta", 9)
                    })()
                }};
            }
            // Apply a restored `cpl_meta`: rewind the clock and truncate the
            // diagnostic series to the checkpoint's lengths (replayed couplings
            // re-push them), restoring the tracker's continuity point.
            macro_rules! apply_domain_a_meta {
                ($meta:expr) => {{
                    let meta = $meta;
                    clock.time = meta[0] as i64;
                    stats.theta_series.truncate(meta[1] as usize);
                    stats.sst_series.truncate(meta[2] as usize);
                    stats.ke_series.truncate(meta[3] as usize);
                    stats.ice_series.truncate(meta[4] as usize);
                    stats.track.truncate(meta[5] as usize);
                    prev_track = (meta[6] > 0.5).then_some((meta[7], meta[8]));
                }};
            }

            // Generation entry: resume from a hand-off directory (a shrink's
            // redistributed checkpoint, or an explicit `resume_from`). The vote
            // keeps every rank's verdict identical — a failed resume is a
            // structured failure on all of them, never a divergent world.
            if let Some(dir) = pending_restore.take() {
                let loaded = restore_domain_a!(&dir);
                if let Err(e) = &loaded {
                    eprintln!("[resilience] resume from {} failed: {e}", dir.display());
                }
                match try_vote_all_ok(rank, loaded.is_ok()) {
                    Ok(true) => {
                        apply_domain_a_meta!(loaded.expect("vote passed"));
                        ap3esm_obs::instant("recovery.resumed");
                        eprintln!(
                            "[resilience] generation {}: resumed from {} at t = {} s",
                            rank.generation(),
                            dir.display(),
                            clock.time
                        );
                    }
                    _ => {
                        stats.failure = Some(format!(
                            "resume from {} failed on at least one rank",
                            dir.display()
                        ));
                    }
                }
            }

            'sim: while stats.failure.is_none() && (clock.time as f64) < total_seconds {
                let event = clock.advance();
                let day_of_year = 202.0 + clock.days(); // late July (Doksuri)
                let seconds_utc = (clock.time % 86_400) as f64;

                if event.atm {
                    timers.start("atm_run");
                    // Surface forcing seen by the atmosphere physics.
                    let n = grid.ncells();
                    let sst_on_atm = ocn_to_atm.apply_masked(&sst_global, &ocn_valid, 15.0);
                    let ice_on_atm = ocn_to_atm.apply(&ice_frac_global);
                    let wet = lnd.wetness();
                    let mut forcing = SurfaceForcing::uniform(n, 288.0, 0.0, 1.0);
                    for i in 0..n {
                        let phi = grid.cells[i].lat();
                        let lam = grid.cells[i].lon();
                        forcing.coszr[i] =
                            crate::solar::cos_zenith(phi, lam, day_of_year, seconds_utc);
                        if atm_land[i] {
                            forcing.tskin[i] = lnd.state.tskin[i];
                            forcing.wetness[i] = wet[i];
                        } else {
                            forcing.tskin[i] =
                                blended_surface_temperature(sst_on_atm[i], -5.0, ice_on_atm[i]);
                            forcing.wetness[i] = 1.0;
                        }
                    }
                    // Advance the atmosphere one coupling period: model steps
                    // with physics applied at each model step.
                    let steps = (atm_period / dycore.config.dt_model).round() as usize;
                    for _ in 0..steps.max(1) {
                        dycore.step_model_dynamics(&mut atm);
                        pdc.apply(&mut atm, &forcing, dycore.config.dt_model);
                    }
                    stats.theta_series.push(atm.mean_theta());
                    if opts.record_track && opts.vortex.is_some() {
                        let p = track_vortex(&atm, prev_track, 1_500_000.0);
                        prev_track = Some((p.lat_deg, p.lon_deg));
                        stats.track.push(p);
                    }
                    timers.stop("atm_run");

                    // Land step from the atmosphere's surface fields, timed
                    // as its own top-level section so the critical-path
                    // analyzer and the per-section trajectory see the land
                    // model's share separately from the dycore's.
                    timers.start("lnd_run");
                    let winds = atm.surface_wind();
                    let precip_rate: Vec<f64> = atm
                        .precip_accum
                        .iter()
                        .zip(&last_precip_accum)
                        .map(|(now, before)| (now - before).max(0.0) / atm_period)
                        .collect();
                    last_precip_accum.copy_from_slice(&atm.precip_accum);
                    let tair: Vec<f64> = (0..n)
                        .map(|i| temperature_from_theta(atm.theta[i], atm.sigma[0] * atm.ps[i]))
                        .collect();
                    let lnd_forcing = LndForcing {
                        gsw: atm.gsw.clone(),
                        glw: atm.glw.clone(),
                        tair: tair.clone(),
                        precip: precip_rate.clone(),
                        wind: winds.iter().map(|&(u, v)| (u * u + v * v).sqrt()).collect(),
                    };
                    lnd.step(&lnd_forcing, atm_period);
                    timers.stop("lnd_run");
                }

                if event.ice {
                    timers.start("ice_run");
                    // Ice forcing from atm fields remapped to the ocean grid.
                    let n = grid.ncells();
                    let winds = atm.surface_wind();
                    let tair_c: Vec<f64> = (0..n)
                        .map(|i| {
                            temperature_from_theta(atm.theta[i], atm.sigma[0] * atm.ps[i]) - 273.15
                        })
                        .collect();
                    let u_atm: Vec<f64> = winds.iter().map(|&(u, _)| u).collect();
                    let v_atm: Vec<f64> = winds.iter().map(|&(_, v)| v).collect();
                    let ice_forcing = IceForcing {
                        tair: atm_to_ocn.apply(&tair_c),
                        sst: sst_global.clone(),
                        flux_down: vec![0.0; ncols],
                        uwind: atm_to_ocn.apply(&u_atm),
                        vwind: atm_to_ocn.apply(&v_atm),
                        uocn: ssu_global.clone(),
                        vocn: ssv_global.clone(),
                    };
                    let export = ice.step(&ice_forcing, ice_period);
                    ice_frac_global = export.fraction;
                    ice_heat_global = export.heat;
                    ice_fresh_global = export.fresh;
                    stats.ice_series.push(ice.ice_cover());
                    timers.stop("ice_run");
                }

                if event.ocn {
                    timers.start("cpl_rearrange");
                    // Atmosphere-side fluxes on atm cells, then onto the ocean
                    // grid, merged with ice, then scattered to domain O.
                    let n = grid.ncells();
                    let winds = atm.surface_wind();
                    let sst_on_atm = ocn_to_atm.apply_masked(&sst_global, &ocn_valid, 15.0);
                    let mut taux = vec![0.0; n];
                    let mut tauy = vec![0.0; n];
                    let mut qnet = vec![0.0; n];
                    let mut emp = vec![0.0; n]; // evaporation − precipitation (m/s)
                    for i in 0..n {
                        let (u, v) = winds[i];
                        let ta = temperature_from_theta(atm.theta[i], atm.sigma[0] * atm.ps[i]);
                        let qa = atm.q[i];
                        let ts_k = sst_on_atm[i] + 273.15;
                        let fx = bulk_fluxes(&bulk, u, v, ta, qa, atm.ps[i], ts_k, 1.0);
                        taux[i] = fx.taux;
                        tauy[i] = fx.tauy;
                        const OCN_ALBEDO: f64 = 0.07;
                        const EMISSIVITY: f64 = 0.97;
                        qnet[i] = atm.gsw[i] * (1.0 - OCN_ALBEDO)
                            + EMISSIVITY * (atm.glw[i] - STEFAN_BOLTZMANN * ts_k.powi(4))
                            - fx.sensible
                            - fx.latent;
                        emp[i] = fx.evaporation / 1000.0; // kg/m²/s → m/s
                    }
                    let taux_o = atm_to_ocn.apply(&taux);
                    let tauy_o = atm_to_ocn.apply(&tauy);
                    let qnet_o = atm_to_ocn.apply(&qnet);
                    let emp_o = atm_to_ocn.apply(&emp);
                    let mut f_taux = vec![0.0; ncols];
                    let mut f_tauy = vec![0.0; ncols];
                    let mut f_qnet = vec![0.0; ncols];
                    let mut f_salt = vec![0.0; ncols];
                    for c in 0..ncols {
                        let merged = merge_ocean_forcing(
                            taux_o[c],
                            tauy_o[c],
                            qnet_o[c],
                            emp_o[c],
                            ice_frac_global[c],
                            ice_heat_global[c],
                            ice_fresh_global[c],
                        );
                        f_taux[c] = merged.taux;
                        f_tauy[c] = merged.tauy;
                        f_qnet[c] = merged.qnet;
                        f_salt[c] = merged.salt_flux;
                    }
                    // Under the recovery layer a failed exchange is a fault
                    // verdict (rollback), not a panic; without it the original
                    // panic-on-error behaviour is preserved below.
                    let mut comm_fault: Option<String> = None;
                    if let Some((ocn, ocn_config)) = ocn_inline.as_mut() {
                        // Sequential layout: the rearrangement is a self-route
                        // (still through the Router), then the ocean runs
                        // inline on this rank.
                        let mut fields = Vec::new();
                        for field in [&f_taux, &f_tauy, &f_qnet, &f_salt] {
                            match scatter.try_rearrange(rank, config.strategy, field, ncols) {
                                Ok(v) => fields.push(v),
                                Err(e) => {
                                    comm_fault.get_or_insert_with(|| e.to_string());
                                    fields.push(vec![0.0; ncols]);
                                }
                            }
                        }
                        timers.stop("cpl_rearrange");
                        timers.start("ocn_run");
                        let (ni, nj) = (ocn.state.ni, ocn.state.nj);
                        let mut forcing = ap3esm_ocn::model::OcnForcing::zeros(ni, nj);
                        forcing.taux.copy_from_slice(&fields[0]);
                        forcing.tauy.copy_from_slice(&fields[1]);
                        forcing.qnet.copy_from_slice(&fields[2]);
                        forcing.salt_flux.copy_from_slice(&fields[3]);
                        let steps = (ocn_period / ocn_config.dt_baroclinic).round() as usize;
                        for _ in 0..steps.max(1) {
                            if let Err(e) = ocn.try_step(rank, &forcing) {
                                comm_fault.get_or_insert_with(|| e.to_string());
                                break;
                            }
                        }
                        let st = &ocn.state;
                        let mut sst = Vec::with_capacity(ncols);
                        let mut ssu = Vec::with_capacity(ncols);
                        let mut ssv = Vec::with_capacity(ncols);
                        for j in 0..nj {
                            for i in 0..ni {
                                let idx = st.at(i, j);
                                sst.push(st.t[0][idx]);
                                ssu.push(st.u[0][idx] + st.ubar[idx]);
                                ssv.push(st.v[0][idx] + st.vbar[idx]);
                            }
                        }
                        for (dst, src) in [
                            (&mut sst_global, &sst),
                            (&mut ssu_global, &ssu),
                            (&mut ssv_global, &ssv),
                        ] {
                            match gather.try_rearrange(rank, config.strategy, src, ncols) {
                                Ok(v) => *dst = v,
                                Err(e) => {
                                    comm_fault.get_or_insert_with(|| e.to_string());
                                }
                            }
                        }
                        timers.stop("ocn_run");
                    } else {
                        for field in [&f_taux, &f_tauy, &f_qnet, &f_salt] {
                            if let Err(e) = scatter.try_rearrange(rank, config.strategy, field, 0) {
                                comm_fault.get_or_insert_with(|| e.to_string());
                            }
                        }
                        // Gather the ocean's exports (keeping the previous
                        // surface state on a failed leg — rollback follows).
                        for dst in [&mut sst_global, &mut ssu_global, &mut ssv_global] {
                            match gather.try_rearrange(rank, config.strategy, &[], ncols) {
                                Ok(v) => *dst = v,
                                Err(e) => {
                                    comm_fault.get_or_insert_with(|| e.to_string());
                                }
                            }
                        }
                        timers.stop("cpl_rearrange");
                    }
                    // Diagnostics series.
                    let (mut sum, mut cnt) = (0.0f64, 0.0f64);
                    for c in 0..ncols {
                        if ocn_valid[c] {
                            sum += sst_global[c];
                            cnt += 1.0;
                        }
                    }
                    stats.sst_series.push(sum / cnt.max(1.0));
                    let local_ke = ocn_inline
                        .as_ref()
                        .map(|(m, _)| m.state.kinetic_energy())
                        .unwrap_or(0.0);
                    let ke = match ap3esm_comm::collectives::allreduce_sum(rank, 77, local_ke) {
                        Ok(ke) => ke,
                        Err(e) => {
                            comm_fault.get_or_insert_with(|| e.to_string());
                            f64::NAN
                        }
                    };
                    stats.ke_series.push(ke);
                    if resil.is_none() {
                        if let Some(e) = &comm_fault {
                            panic!("coupler exchange failed: {e}");
                        }
                    }

                    // ----- Recovery layer: guards, health agreement, then
                    //       checkpoint or rollback (ocean couplings are the
                    //       global synchronisation points). -----
                    if let Some(resil) = resil.as_mut() {
                        let ocn_idx = ((clock.time as f64) / ocn_period).round() as u64;
                        if let Some(inj) = rank.fault_injector() {
                            // Fault plans name physical (machine) ranks.
                            if inj.take_kill(rank.world_id(), ocn_idx) {
                                // Simulated rank loss: the surviving state is
                                // garbage, which the guards detect.
                                for v in atm.theta.iter_mut() {
                                    *v = f64::NAN;
                                }
                                ap3esm_obs::counter_add("resilience.faults", 1);
                                ap3esm_obs::instant("fault.kill");
                                fr_record(
                                    rank,
                                    ap3esm_obs::FrKind::Fault,
                                    ocn_idx,
                                    0,
                                    "killed (state corrupted, injected)",
                                );
                            }
                        }
                        let mut verdict = atm_guard.check(&atm);
                        if let (Some((ocn, _)), Some(guard)) = (&ocn_inline, &inline_guard) {
                            verdict = verdict.worst(guard.check(&ocn.state));
                        }
                        if let Some(e) = comm_fault.take() {
                            stats
                                .fault_events
                                .push(format!("comm fault at ocn coupling {ocn_idx}: {e}"));
                            verdict = verdict.worst(HealthVerdict::Fatal(format!("comm: {e}")));
                        }
                        let verdict = observe_verdict(verdict, me);
                        let sev = match agree_severity(rank, verdict.severity()) {
                            Ok(sev) => sev,
                            // The health agreement itself lost a peer: escalate
                            // to a membership vote (DESIGN.md §13 rung 3).
                            Err(e) => match agree_survivors(
                                rank,
                                &e,
                                &mut stats,
                                &mut shrinks,
                                resil.cfg.max_shrinks,
                            ) {
                                // Everyone is alive after all (dropped or very
                                // late messages): treat as a fatal transient
                                // and roll back.
                                SurvivorOutcome::Transient => 2.0,
                                SurvivorOutcome::Shrunk => {
                                    // Shrink-to-fit hand-off: redistribute the
                                    // last committed checkpoint onto the
                                    // survivor layout, announce it, and rebuild
                                    // the world one generation up.
                                    let gen = rank.generation();
                                    let dst = resil.store.root().join(format!("shrunk_g{gen}"));
                                    let cand = resil.store.latest().map(|i| i as i64).unwrap_or(-1);
                                    let ready = cand >= 0 && {
                                        let _ = std::fs::remove_dir_all(&dst);
                                        crate::restart::redistribute_ocn_restart(
                                            &resil.store.dir(cand as u64),
                                            &dst,
                                            &ocn_grid,
                                            &ocn_decomp,
                                            &BlockDecomp2d::auto(
                                                config.ocn_nlon,
                                                config.ocn_nlat,
                                                rank.size() - 1,
                                            ),
                                        )
                                        .map_err(|e| {
                                            eprintln!(
                                            "[resilience] checkpoint redistribution failed: {e}"
                                        )
                                        })
                                        .is_ok()
                                    };
                                    let sig = if ready { cand } else { -1i64 };
                                    match ap3esm_comm::collectives::bcast(
                                        rank,
                                        CKPT_ID_TAG,
                                        0,
                                        vec![sig],
                                    ) {
                                        Ok(v) if v[0] >= 0 => {
                                            stats.degraded_ranks = rank.world_size() - rank.size();
                                            ap3esm_obs::instant("recovery.shrink");
                                            ap3esm_obs::counter_add("resilience.shrinks", 1);
                                            ap3esm_obs::gauge_set(
                                                "sim.degraded_ranks",
                                                stats.degraded_ranks as f64,
                                            );
                                            eprintln!(
                                            "[resilience] shrink-to-fit: continuing degraded on {} of {} ranks from checkpoint {cand}",
                                            rank.size(),
                                            rank.world_size()
                                        );
                                            pending_restore = Some(dst);
                                            continue 'world;
                                        }
                                        _ => {
                                            stats.failure = Some(
                                                "no committed checkpoint to continue degraded from"
                                                    .to_string(),
                                            );
                                            break 'sim;
                                        }
                                    }
                                }
                                SurvivorOutcome::Failed(msg) => {
                                    stats.failure = Some(msg);
                                    break 'sim;
                                }
                            },
                        };
                        if sev >= 2.0 {
                            let reason =
                                format!("fatal state at ocn coupling {ocn_idx}: {verdict}");
                            if let Some(fail) = begin_rollback(rank, resil, &reason) {
                                stats.failure = Some(fail.to_string());
                                break 'sim;
                            }
                            loop {
                                let cand = agree_candidate(
                                    rank,
                                    resil.store.latest().map(|i| i as i64).unwrap_or(-1),
                                );
                                if cand < 0 {
                                    stats.failure = Some(
                                        RecoveryFailure {
                                            recoveries_attempted: resil.recoveries,
                                            reason: "no committed checkpoint to roll back to"
                                                .into(),
                                        }
                                        .to_string(),
                                    );
                                    break 'sim;
                                }
                                let dir = resil.store.dir(cand as u64);
                                let loaded = restore_domain_a!(&dir);
                                if vote_all_ok(rank, loaded.is_ok()) {
                                    apply_domain_a_meta!(loaded.expect("vote passed"));
                                    ap3esm_obs::instant("rollback.restored");
                                    eprintln!(
                                    "[resilience] restored checkpoint {cand}, replaying from t = {} s",
                                    clock.time
                                );
                                    break;
                                }
                                if let Err(e) = &loaded {
                                    eprintln!("[resilience] checkpoint {cand} unusable: {e}");
                                }
                                stats
                                    .fault_events
                                    .push(format!("checkpoint {cand} rejected at restore"));
                                resil
                                    .store
                                    .invalidate(cand as u64)
                                    .expect("invalidate damaged checkpoint");
                                rank.barrier();
                            }
                        } else if resil.cfg.checkpoint_interval > 0
                            && ocn_idx.is_multiple_of(resil.cfg.checkpoint_interval as u64)
                        {
                            let id = ocn_idx;
                            ap3esm_obs::instant("checkpoint.begin");
                            fr_record(rank, ap3esm_obs::FrKind::CkptBegin, id, 0, "");
                            with_retry(
                                "checkpoint begin",
                                resil.cfg.retries,
                                resil.cfg.backoff,
                                || resil.store.begin(id),
                            )
                            .expect("checkpoint begin");
                            rank.barrier();
                            let dir = resil.store.dir(id);
                            with_retry(
                                "checkpoint write",
                                resil.cfg.retries,
                                resil.cfg.backoff,
                                || -> Result<(), IoError> {
                                    crate::restart::write_atm_restart(&dir, &atm)?;
                                    write_aux(&dir, "lnd_tskin", &lnd.state.tskin)?;
                                    write_aux(&dir, "lnd_moist", &lnd.state.moisture)?;
                                    write_aux(&dir, "ice_frac", &ice.state.fraction)?;
                                    write_aux(&dir, "ice_thick", &ice.state.thickness)?;
                                    write_aux(&dir, "ice_tsfc", &ice.state.tsfc)?;
                                    write_aux(&dir, "cpl_sst", &sst_global)?;
                                    write_aux(&dir, "cpl_ssu", &ssu_global)?;
                                    write_aux(&dir, "cpl_ssv", &ssv_global)?;
                                    write_aux(&dir, "cpl_icefrac", &ice_frac_global)?;
                                    write_aux(&dir, "cpl_iceheat", &ice_heat_global)?;
                                    write_aux(&dir, "cpl_icefresh", &ice_fresh_global)?;
                                    write_aux(&dir, "cpl_precip", &last_precip_accum)?;
                                    if let Some((ocn, _)) = ocn_inline.as_ref() {
                                        crate::restart::write_ocn_restart(&dir, &ocn.state, 0)?;
                                    }
                                    let meta = [
                                        clock.time as f64,
                                        stats.theta_series.len() as f64,
                                        stats.sst_series.len() as f64,
                                        stats.ke_series.len() as f64,
                                        stats.ice_series.len() as f64,
                                        stats.track.len() as f64,
                                        if prev_track.is_some() { 1.0 } else { 0.0 },
                                        prev_track.map(|(la, _)| la).unwrap_or(0.0),
                                        prev_track.map(|(_, lo)| lo).unwrap_or(0.0),
                                    ];
                                    write_aux(&dir, "cpl_meta", &meta)
                                },
                            )
                            .expect("checkpoint write");
                            rank.barrier();
                            commit_checkpoint(rank, resil, id);
                        }
                    }

                    // ----- Live telemetry heartbeat (opt-in, rank 0 only):
                    //       step rate, SYPD estimate and component split since
                    //       the previous heartbeat. -----
                    if let Some(every) = opts.progress_every {
                        let ocn_count = stats.ke_series.len() as u64;
                        if every > 0 && ocn_count.is_multiple_of(every) {
                            let now = std::time::Instant::now();
                            let sim_s = clock.time as f64;
                            let (dw, ds) = match hb_last {
                                Some((w, s)) => (now.duration_since(w).as_secs_f64(), sim_s - s),
                                None => (t_start.elapsed().as_secs_f64(), sim_s),
                            };
                            let dw = dw.max(1e-9);
                            let split: Vec<String> =
                                ["atm_run", "lnd_run", "ocn_run", "ice_run", "cpl_rearrange"]
                                    .iter()
                                    .filter(|s| timers.count(s) > 0)
                                    .map(|s| format!("{s} {:.2}s", timers.seconds(s)))
                                    .collect();
                            eprintln!(
                            "[telemetry] day {:.2}/{:.1} | {:.2} couplings/s | est. SYPD {:.2} | {}",
                            clock.days(),
                            opts.days,
                            (ds / ocn_period) / dw,
                            get_timing(ds, dw),
                            split.join(", ")
                        );
                            hb_last = Some((now, sim_s));
                        }
                    }

                    // ----- Continuous telemetry: global busy-time exchange at
                    //       the coupling sync point, then rank-0 gauges the
                    //       sampler thread turns into series. -----
                    if telemetry_on {
                        let busy: f64 = timers.sections().iter().map(|s| timers.seconds(s)).sum();
                        let d_busy = (busy - tele_prev_busy).max(0.0);
                        tele_prev_busy = busy;
                        let max_busy =
                            ap3esm_comm::collectives::allreduce_max(rank, TELE_MAX_TAG, d_busy)
                                .unwrap_or(d_busy);
                        let sum_busy =
                            ap3esm_comm::collectives::allreduce_sum(rank, TELE_SUM_TAG, d_busy)
                                .unwrap_or(d_busy);
                        let now = std::time::Instant::now();
                        let dw = now.duration_since(tele_last_wall).as_secs_f64().max(1e-9);
                        tele_last_wall = now;
                        ap3esm_obs::gauge_set("sim.step_wall_s", dw);
                        ap3esm_obs::gauge_set("sim.sypd", get_timing(ocn_period, dw));
                        let mean_busy = sum_busy / world_ranks as f64;
                        if mean_busy > 0.0 {
                            ap3esm_obs::gauge_set("sim.imbalance", max_busy / mean_busy);
                        }
                    }
                }
            }
            stats.simulated_seconds = clock.time as f64;
            if let Some(r) = &resil {
                stats.recoveries = r.recoveries;
            }
        } else {
            // ================= Domain O: the ocean ==========================
            let mut ocn_config = fitted_ocn_config(config, ocn_period);
            // This generation's decomposition (the configured mesh, or the
            // shrink-to-fit re-fit over the survivors).
            ocn_config.px = ocn_decomp.px;
            ocn_config.py = ocn_decomp.py;
            ocn_config.rank_offset = 1; // world rank = 1 + ocean rank
            let mut ocn = OcnModel::new(&ocn_grid, ocn_config.clone(), me - 1);
            let (ni, nj) = (ocn.state.ni, ocn.state.nj);
            let mut forcing = OcnForcing::zeros(ni, nj);

            let ocn_guard = OcnGuard::new(
                &ocn.state,
                GuardConfig::default(),
                ocn_config.dt_baroclinic / ocn_config.n_barotropic.max(1) as f64,
            );
            let mut tele_prev_busy = 0.0f64;

            // Generation entry: resume this rank's slab from a hand-off
            // directory (mirrors domain A; the vote keeps everyone agreed).
            if let Some(dir) = pending_restore.take() {
                let loaded: Result<Vec<f64>, IoError> = (|| {
                    crate::restart::read_ocn_restart(&dir, &mut ocn.state, me - 1)?;
                    read_aux(&dir, "cpl_meta", 9)
                })();
                if let Err(e) = &loaded {
                    eprintln!(
                        "[resilience] rank {me}: resume from {} failed: {e}",
                        dir.display()
                    );
                }
                match try_vote_all_ok(rank, loaded.is_ok()) {
                    Ok(true) => {
                        clock.time = loaded.expect("vote passed")[0] as i64;
                    }
                    _ => {
                        stats.failure = Some(format!(
                            "resume from {} failed on at least one rank",
                            dir.display()
                        ));
                    }
                }
            }

            'sim: while stats.failure.is_none() && (clock.time as f64) < total_seconds {
                let event = clock.advance();
                if event.ocn {
                    timers.start("ocn_run");
                    let mut comm_fault: Option<String> = None;
                    // Receive merged forcing fields from domain A (keeping the
                    // previous period's forcing on a failed leg).
                    let mut fields = Vec::new();
                    for _ in 0..4 {
                        match scatter.try_rearrange(rank, config.strategy, &[], my_ocn_cols) {
                            Ok(v) => fields.push(v),
                            Err(e) => {
                                comm_fault.get_or_insert_with(|| e.to_string());
                                fields.push(vec![0.0; my_ocn_cols]);
                            }
                        }
                    }
                    forcing.taux.copy_from_slice(&fields[0]);
                    forcing.tauy.copy_from_slice(&fields[1]);
                    forcing.qnet.copy_from_slice(&fields[2]);
                    // salt_flux (psu·m/s): convert from the merged convention.
                    forcing.salt_flux.copy_from_slice(&fields[3]);
                    // Advance the ocean through the coupling period.
                    let steps = (ocn_period / ocn_config.dt_baroclinic).round() as usize;
                    for _ in 0..steps.max(1) {
                        if let Err(e) = ocn.try_step(rank, &forcing) {
                            comm_fault.get_or_insert_with(|| e.to_string());
                            break;
                        }
                    }
                    // Export surface state back to domain A (local row-major
                    // interior order == ascending global ids for a block).
                    let st = &ocn.state;
                    let mut sst = Vec::with_capacity(my_ocn_cols);
                    let mut ssu = Vec::with_capacity(my_ocn_cols);
                    let mut ssv = Vec::with_capacity(my_ocn_cols);
                    for j in 0..nj {
                        for i in 0..ni {
                            let idx = st.at(i, j);
                            sst.push(st.t[0][idx]);
                            ssu.push(st.u[0][idx] + st.ubar[idx]);
                            ssv.push(st.v[0][idx] + st.vbar[idx]);
                        }
                    }
                    for data in [&sst, &ssu, &ssv] {
                        if let Err(e) = gather.try_rearrange(rank, config.strategy, data, 0) {
                            comm_fault.get_or_insert_with(|| e.to_string());
                        }
                    }
                    timers.stop("ocn_run");
                    if let Err(e) = ap3esm_comm::collectives::allreduce_sum(
                        rank,
                        77,
                        ocn.state.kinetic_energy(),
                    ) {
                        comm_fault.get_or_insert_with(|| e.to_string());
                    }
                    if resil.is_none() {
                        if let Some(e) = &comm_fault {
                            panic!("coupler exchange failed: {e}");
                        }
                    }

                    // ----- Recovery layer (mirrors the domain-A sequence). ----
                    if let Some(resil) = resil.as_mut() {
                        let ocn_idx = ((clock.time as f64) / ocn_period).round() as u64;
                        if let Some(inj) = rank.fault_injector() {
                            // Fault plans name physical (machine) ranks.
                            if inj.take_die(rank.world_id(), ocn_idx) {
                                // Permanent loss: this thread stops participating
                                // entirely — no farewell message, exactly like a
                                // node dropping off the interconnect. The
                                // survivors detect the silence at the health
                                // agreement and shrink around it.
                                stats.lost = true;
                                stats.fault_events.push(format!(
                                    "rank {} died permanently at ocn coupling {ocn_idx}",
                                    rank.world_id()
                                ));
                                ap3esm_obs::counter_add("resilience.faults", 1);
                                ap3esm_obs::instant("fault.die");
                                fr_record(
                                    rank,
                                    ap3esm_obs::FrKind::Fault,
                                    ocn_idx,
                                    0,
                                    "died permanently (injected)",
                                );
                                eprintln!(
                                "[resilience] rank {} dying permanently at ocn coupling {ocn_idx}",
                                rank.world_id()
                            );
                                break 'sim;
                            }
                            if inj.take_kill(rank.world_id(), ocn_idx) {
                                for v in ocn.state.eta.iter_mut() {
                                    *v = f64::NAN;
                                }
                                ap3esm_obs::counter_add("resilience.faults", 1);
                                ap3esm_obs::instant("fault.kill");
                                fr_record(
                                    rank,
                                    ap3esm_obs::FrKind::Fault,
                                    ocn_idx,
                                    0,
                                    "killed (state corrupted, injected)",
                                );
                            }
                        }
                        let mut verdict = ocn_guard.check(&ocn.state);
                        if let Some(e) = comm_fault.take() {
                            stats
                                .fault_events
                                .push(format!("comm fault at ocn coupling {ocn_idx}: {e}"));
                            verdict = verdict.worst(HealthVerdict::Fatal(format!("comm: {e}")));
                        }
                        let verdict = observe_verdict(verdict, me);
                        let sev = match agree_severity(rank, verdict.severity()) {
                            Ok(sev) => sev,
                            Err(e) => match agree_survivors(
                                rank,
                                &e,
                                &mut stats,
                                &mut shrinks,
                                resil.cfg.max_shrinks,
                            ) {
                                SurvivorOutcome::Transient => 2.0,
                                SurvivorOutcome::Shrunk => {
                                    // Wait for rank 0's hand-off announcement:
                                    // the checkpoint id it redistributed onto
                                    // the survivor layout (-1 = nothing left).
                                    let gen = rank.generation();
                                    match ap3esm_comm::collectives::bcast(
                                        rank,
                                        CKPT_ID_TAG,
                                        0,
                                        vec![-1i64],
                                    ) {
                                        Ok(v) if v[0] >= 0 => {
                                            stats.degraded_ranks = rank.world_size() - rank.size();
                                            pending_restore = Some(
                                                resil.store.root().join(format!("shrunk_g{gen}")),
                                            );
                                            continue 'world;
                                        }
                                        _ => {
                                            stats.failure = Some(
                                                "no committed checkpoint to continue degraded from"
                                                    .to_string(),
                                            );
                                            break 'sim;
                                        }
                                    }
                                }
                                SurvivorOutcome::Failed(msg) => {
                                    stats.failure = Some(msg);
                                    break 'sim;
                                }
                            },
                        };
                        if sev >= 2.0 {
                            let reason =
                                format!("fatal state at ocn coupling {ocn_idx}: {verdict}");
                            if let Some(fail) = begin_rollback(rank, resil, &reason) {
                                stats.failure = Some(fail.to_string());
                                break 'sim;
                            }
                            loop {
                                let cand = agree_candidate(rank, -1);
                                if cand < 0 {
                                    stats.failure =
                                        Some("no committed checkpoint to roll back to".into());
                                    break 'sim;
                                }
                                let dir = resil.store.dir(cand as u64);
                                let loaded =
                                    crate::restart::read_ocn_restart(&dir, &mut ocn.state, me - 1);
                                if vote_all_ok(rank, loaded.is_ok()) {
                                    clock.time = (cand as f64 * ocn_period).round() as i64;
                                    ap3esm_obs::instant("rollback.restored");
                                    break;
                                }
                                if let Err(e) = &loaded {
                                    eprintln!(
                                        "[resilience] checkpoint {cand} unusable on rank {me}: {e}"
                                    );
                                }
                                rank.barrier(); // rank 0 invalidates the candidate
                            }
                        } else if resil.cfg.checkpoint_interval > 0
                            && ocn_idx.is_multiple_of(resil.cfg.checkpoint_interval as u64)
                        {
                            let id = ocn_idx;
                            ap3esm_obs::instant("checkpoint.begin");
                            fr_record(rank, ap3esm_obs::FrKind::CkptBegin, id, 0, "");
                            rank.barrier(); // rank 0 clears the checkpoint dir
                            let dir = resil.store.dir(id);
                            with_retry(
                                "checkpoint write",
                                resil.cfg.retries,
                                resil.cfg.backoff,
                                || crate::restart::write_ocn_restart(&dir, &ocn.state, me - 1),
                            )
                            .expect("checkpoint write");
                            rank.barrier(); // rank 0 commits after this
                        }
                    }

                    // Continuous telemetry: the collective leg of rank 0's
                    // busy-time exchange (results only consumed there).
                    if telemetry_on {
                        let busy = timers.seconds("ocn_run");
                        let d_busy = (busy - tele_prev_busy).max(0.0);
                        tele_prev_busy = busy;
                        let _ = ap3esm_comm::collectives::allreduce_max(rank, TELE_MAX_TAG, d_busy);
                        let _ = ap3esm_comm::collectives::allreduce_sum(rank, TELE_SUM_TAG, d_busy);
                    }
                }
            }
            stats.simulated_seconds = clock.time as f64;
            if let Some(r) = &resil {
                stats.recoveries = r.recoveries;
            }
        }

        // Both branches fall through here when the run is over (completed,
        // structurally failed, or this rank died); only a shrink hand-off
        // re-enters the loop with the next world generation.
        break 'world;
    } // 'world

    // Injected faults that actually fired (message faults, kills,
    // corruptions) join the locally observed comm faults in one stream.
    if let Some(inj) = rank.fault_injector() {
        stats
            .fault_events
            .extend(inj.fired().into_iter().map(|f| f.description));
    }

    stats.wall_seconds = t_start.elapsed().as_secs_f64();
    stats.sypd = get_timing(stats.simulated_seconds, stats.wall_seconds);
    stats.per_section_seconds = timers
        .sections()
        .iter()
        .map(|s| (s.to_string(), timers.seconds(s)))
        .collect();

    // Telemetry teardown before the report: the shutdown handshake forces
    // one final sample + alert pass, so the report's alerts array and the
    // series snapshot include the run's last state. The scrape endpoint
    // stays up until the snapshot is on disk.
    let mut alert_events: Vec<ap3esm_obs::AlertEvent> = Vec::new();
    let mut bundle_series: Option<String> = None;
    if let Some((store, engine, sampler, server)) = telemetry.take() {
        sampler.shutdown();
        alert_events = engine.events();
        stats.alerts = alert_events.iter().map(|e| e.message.clone()).collect();
        if let Some(name) = &opts.report_name {
            if opts.telemetry.as_ref().is_some_and(|t| t.snapshot) {
                stats.series_path = store.write_snapshot(name).ok();
            }
        }
        // Keep the final tsdb state for the diagnostics bundle (the store
        // itself is consumed here).
        if flightrec_on {
            bundle_series = Some(store.snapshot_json());
        }
        if let Some(server) = server {
            server.stop();
        }
    }

    // --- Flight-recorder bundle: when the run ended in trouble, rank 0
    //     dumps a self-contained diagnostics bundle before the (collective)
    //     report path, using non-draining snapshots so the later trace
    //     export still sees every comm event. Non-collective by design:
    //     dead ranks cannot be waited on. ---
    if flightrec_on {
        if let Some(f) = &stats.failure {
            fr_record(
                rank,
                ap3esm_obs::FrKind::Fault,
                0,
                0,
                &format!("structured failure: {f}"),
            );
        }
        for a in &alert_events {
            fr_record(rank, ap3esm_obs::FrKind::Alert, 0, 0, &a.message);
        }
        let troubled = stats.failure.is_some()
            || stats.shrinks > 0
            || stats.recoveries > 0
            || !stats.fault_events.is_empty();
        if is_root && troubled {
            let name = opts
                .bundle_name
                .clone()
                .or_else(|| opts.report_name.clone())
                .unwrap_or_else(|| format!("pid{}", std::process::id()));
            let reason = if let Some(f) = &stats.failure {
                format!("recovery-failure: {f}")
            } else if stats.shrinks > 0 {
                "shrink".to_string()
            } else if stats
                .fault_events
                .iter()
                .any(|e| e.contains("deadlock"))
            {
                "deadlock".to_string()
            } else {
                "fault".to_string()
            };
            // A comm-only Chrome trace so the bundle opens in Perfetto even
            // when full span tracing was off.
            let mut ct = ap3esm_obs::ChromeTrace::new();
            for r in 0..rank.world_size() {
                ct.add_process(r, &format!("rank {r}"));
                let (comm_events, _) = rank.comm_events().snapshot(r);
                ct.add_comm_events(r, &comm_events);
            }
            let recorder = rank
                .blackbox()
                .get()
                .and_then(|s| s.downcast_ref::<ap3esm_obs::FlightRecorder>());
            let spec = ap3esm_obs::BundleSpec {
                reason: &reason,
                recorder,
                comm_events: Some(rank.comm_events()),
                series_json: bundle_series.take(),
                alerts: &alert_events,
                fault_plan: rank.fault_injector().map(|i| i.plan().to_string()),
                scenario: None,
                trace_json: Some(ct.to_json()),
            };
            match ap3esm_obs::dump_bundle(&name, &spec) {
                Ok(dir) => {
                    eprintln!("[flightrec] diagnostics bundle: {}", dir.display());
                    stats.bundle_path = Some(dir);
                }
                Err(e) => eprintln!("[flightrec] bundle dump failed: {e}"),
            }
        }
    }

    if stats.lost {
        // A dead rank takes no part in the (collective) report: the
        // survivors build it over the shrunk membership without it.
        return stats;
    }

    if let Some(name) = &opts.report_name {
        // Paper §6.2 measurement rule: per-section times reduced to the
        // maximum across ranks. Collective — every rank participates.
        // Softened: a report must never turn a degraded-but-successful run
        // into a crash, so a failed aggregation just yields a thinner one.
        let spans = obs.profiler.snapshot();
        let sections = match ap3esm_obs::aggregate_sections(rank, 0x0B70, &spans) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("[report] section aggregation failed: {e}");
                Vec::new()
            }
        };
        // Paper §6.2: the trajectory's per-section walls are cross-rank
        // maxima, not rank 0's local timers — otherwise sections that only
        // run on other ranks (ocn_run on the ocean task domain) vanish
        // from the BENCH point. Sorted by name so the metric set is
        // independent of rank layout.
        if is_root && !sections.is_empty() {
            let mut merged = stats.per_section_seconds.clone();
            for s in sections.iter().filter(|s| !s.path.contains('/')) {
                match merged.iter_mut().find(|(n, _)| *n == s.path) {
                    Some(entry) => entry.1 = s.max_s,
                    None => merged.push((s.path.clone(), s.max_s)),
                }
            }
            merged.sort_by(|a, b| a.0.cmp(&b.0));
            stats.per_section_seconds = merged;
        }
        // Every rank's tree (bounded) lands in the report, not just rank 0's.
        let trees = match ap3esm_obs::gather_span_trees(rank, 0x0B74, &spans, 16, 512) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("[report] span tree gather failed: {e}");
                None
            }
        };
        // Timeline export: stop recording everywhere, then ship each rank's
        // buffered span events to rank 0. The comm-event rings live in the
        // shared world structure, so rank 0 drains them directly once the
        // barrier guarantees all ranks have stopped recording.
        let mut trace_events: Option<Vec<Vec<ap3esm_obs::TraceEvent>>> = None;
        if let Some(sink) = &trace_sink {
            rank.comm_events().set_enabled(false);
            obs.profiler.set_trace_sink(None);
            rank.barrier();
            let (events, dropped) = sink.take();
            if dropped > 0 {
                eprintln!(
                    "[trace] rank {}: {dropped} span events dropped (sink full)",
                    rank.world_id()
                );
            }
            let wire = ap3esm_obs::trace::encode_events(&events);
            match ap3esm_comm::collectives::gather::<u8>(rank, 0x0B76, 0, wire) {
                Ok(gathered) => {
                    trace_events = gathered.map(|parts| {
                        parts
                            .iter()
                            .map(|bytes| ap3esm_obs::trace::decode_events(bytes))
                            .collect()
                    });
                }
                Err(e) => eprintln!("[trace] event gather failed: {e}"),
            }
        }
        if is_root {
            if let Some(per_rank) = trace_events {
                // Drain every rank's comm ring exactly once; the same
                // events feed the chrome trace and the critical-path
                // analyzer below.
                let (all_comm, comm_dropped) = rank.comm_events().take_all();
                if comm_dropped > 0 {
                    eprintln!("[trace] {comm_dropped} comm events evicted (rings full)");
                }
                let mut ct = ap3esm_obs::ChromeTrace::new();
                for (r, events) in per_rank.iter().enumerate() {
                    ct.add_process(r, &format!("rank {r}"));
                    ct.add_span_events(r, events);
                    if let Some(comm_events) = all_comm.get(r) {
                        ct.add_comm_events(r, comm_events);
                    }
                }
                stats.trace_path = ct.write(name).ok();
                if let Some(trees) = &trees {
                    let folded = ap3esm_obs::trace::folded_stacks(trees);
                    stats.folded_path = ap3esm_obs::trace::write_folded(name, &folded).ok();
                }
                // End-of-run critical-path analysis over the same
                // timelines: where did the SYPD go, and what would
                // halving the top section buy?
                let timelines: Vec<ap3esm_obs::RankTimeline> = per_rank
                    .iter()
                    .enumerate()
                    .map(|(r, events)| ap3esm_obs::RankTimeline {
                        rank: r,
                        spans: events.clone(),
                        comms: all_comm.get(r).cloned().unwrap_or_default(),
                    })
                    .collect();
                let analyzer = ap3esm_obs::Analyzer::new(&timelines).with_sypd(stats.sypd);
                stats.critpath = Some(analyzer.analyze());
            }
            let comm = rank.stats();
            let stream = |label: &str, tags: [u64; 2]| {
                let (m, b) = tags.iter().fold((0u64, 0u64), |(m, b), &t| {
                    let (tm, tb) = comm.tag_traffic(t);
                    (m + tm, b + tb)
                });
                (label.to_string(), m, b)
            };
            let mut report = ap3esm_obs::ReportBuilder::new(name)
                .meta("world_size", rank.size())
                .meta("launched_world_size", rank.world_size())
                .meta("generation", rank.generation())
                .meta(
                    "layout",
                    if config.single_domain {
                        "sequential"
                    } else {
                        "concurrent"
                    },
                )
                .meta("strategy", format!("{:?}", config.strategy).as_str())
                .meta("simulated_seconds", stats.simulated_seconds)
                .meta("wall_seconds", stats.wall_seconds)
                .meta("sypd", stats.sypd)
                .meta("recoveries", stats.recoveries as u64)
                .meta("shrinks", stats.shrinks as u64)
                .meta("degraded_ranks", stats.degraded_ranks as u64)
                .meta("failure", stats.failure.as_deref().unwrap_or(""))
                .meta(
                    "fault_events",
                    ap3esm_obs::json::Json::Arr(
                        stats
                            .fault_events
                            .iter()
                            .map(|e| ap3esm_obs::json::Json::Str(e.clone()))
                            .collect(),
                    ),
                )
                .spans(spans)
                .alerts(alert_events)
                .sections(sections)
                .rank_trees(trees.unwrap_or_default())
                .metrics(obs.metrics.snapshot());
            if let Some(a) = &stats.critpath {
                report = report.critpath(a.to_json());
            }
            let report = report
                .comm(ap3esm_obs::CommSummary {
                    total_messages: comm.total_messages(),
                    total_bytes: comm.total_bytes(),
                    top_pairs: comm.top_pairs(5),
                    streams: vec![
                        stream("cpl_scatter", Rearranger::wire_tags_for(21)),
                        stream("cpl_gather", Rearranger::wire_tags_for(22)),
                    ],
                })
                .build();
            stats.report_json = Some(report.to_json());
            stats.report_path = report.write().ok();
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap3esm_comm::World;

    #[test]
    fn coupled_model_runs_one_day_stably() {
        let config = CoupledConfig::test_tiny();
        let world = World::new(config.world_size());
        let opts = CoupledOptions {
            days: 1.0,
            ..Default::default()
        };
        let all = world.run(|rank| run_coupled(rank, &config, &opts));
        let root = &all[0];
        assert_eq!(root.simulated_seconds, 86_400.0);
        assert!(root.sypd > 0.0);
        // Alarm cadence: 8 atm / 4 ocn / 8 ice couplings.
        assert_eq!(root.theta_series.len(), 8);
        assert_eq!(root.sst_series.len(), 4);
        assert_eq!(root.ice_series.len(), 8);
        // Physical sanity.
        for sst in &root.sst_series {
            assert!((-5.0_f64..40.0).contains(sst), "mean SST {sst}");
        }
        for th in &root.theta_series {
            assert!((250.0..400.0).contains(th), "mean theta {th}");
        }
        // Ocean spun up: KE grew from zero.
        assert!(*root.ke_series.last().unwrap() > 0.0);
        // The coupler actually moved data.
        assert!(world.stats().total_bytes() > 0);
    }

    #[test]
    fn coupled_run_emits_json_report() {
        let config = CoupledConfig::test_tiny();
        let world = World::new(config.world_size());
        let opts = CoupledOptions {
            days: 0.5,
            report_name: Some("esm-report-test".to_string()),
            ..Default::default()
        };
        let all = world.run(|rank| run_coupled(rank, &config, &opts));
        let root = &all[0];

        // Only rank 0 writes; ocean ranks still participated in aggregation.
        assert!(all[1..].iter().all(|s| s.report_json.is_none()));
        let json = root.report_json.as_ref().expect("rank 0 report");
        assert!(json.starts_with(r#"{"schema":"ap3esm-obs/5","name":"esm-report-test""#));

        // The sink wrote the same bytes to target/obs/.
        let path = root.report_path.as_ref().expect("report written");
        assert_eq!(path.file_name().unwrap(), "run-esm-report-test.json");
        let body = std::fs::read_to_string(path).unwrap();
        assert_eq!(body.trim_end(), json);

        // ≥8 distinct spans with a correct parent/child tree on rank 0:
        // driver sections parent the leaf-crate instrumentation.
        let spans_json = json
            .split(r#""spans":["#)
            .nth(1)
            .unwrap()
            .split(r#""rank_sections""#)
            .next()
            .unwrap();
        let span_paths: Vec<&str> = spans_json
            .split(r#""path":""#)
            .skip(1)
            .map(|s| s.split('"').next().unwrap())
            .collect();
        for want in [
            "atm_run",
            "atm_run/dycore",
            "atm_run/dycore/dyn_substeps",
            "atm_run/dycore/tracer_step",
            "atm_run/physics",
            "ice_run",
            "cpl_rearrange",
            "cpl_rearrange/rearrange",
        ] {
            assert!(
                span_paths.contains(&want),
                "missing span {want}: {span_paths:?}"
            );
        }
        let distinct: std::collections::BTreeSet<&&str> = span_paths.iter().collect();
        assert!(
            distinct.len() >= 8,
            "only {} distinct spans",
            distinct.len()
        );

        // Cross-rank sections: the ocean ran on every domain-O rank (rank 0
        // never does, so "ocn_run" only reaches the report through the
        // collective aggregation) and the stats carry an imbalance ratio.
        let sections_json = json.split(r#""rank_sections":["#).nth(1).unwrap();
        assert!(
            !span_paths.contains(&"ocn_run"),
            "rank 0 should not run the ocean"
        );
        assert!(
            sections_json.contains(r#""path":"ocn_run""#),
            "ocean missing from aggregation"
        );
        assert!(sections_json.contains(r#""imbalance":"#));

        // Comm digest: real bytes moved, attributed to the coupling phases.
        assert!(json.contains(r#""comm":{"total_messages":"#));
        assert!(world.stats().total_bytes() > 0);
        let streams = json.split(r#""streams":["#).nth(1).unwrap();
        assert!(streams.contains(r#""label":"cpl_scatter""#));
        assert!(streams.contains(r#""label":"cpl_gather""#));
        // Scatter moved 4 forcing fields per ocean coupling; non-zero bytes.
        let scatter_bytes: u64 = streams
            .split(r#""label":"cpl_scatter","messages":"#)
            .nth(1)
            .and_then(|s| s.split(r#""bytes":"#).nth(1))
            .and_then(|s| s.split(['}', ',']).next())
            .and_then(|s| s.parse().ok())
            .unwrap();
        assert!(scatter_bytes > 0, "no scatter traffic attributed");

        // The rearranger histogram flowed into the metrics registry.
        assert!(json.contains(r#""cpl.rearrange.ns":{"count":"#));
    }

    #[test]
    fn ai_physics_coupled_run_is_stable() {
        let mut config = CoupledConfig::test_tiny();
        config.ai_physics = true;
        let world = World::new(config.world_size());
        let opts = CoupledOptions {
            days: 0.25,
            ..Default::default()
        };
        let all = world.run(|rank| run_coupled(rank, &config, &opts));
        let root = &all[0];
        for th in &root.theta_series {
            assert!(th.is_finite() && *th > 200.0 && *th < 500.0, "theta {th}");
        }
        for sst in &root.sst_series {
            assert!((-5.0..40.0).contains(sst), "SST {sst}");
        }
    }

    #[test]
    fn single_domain_matches_two_domain_layout() {
        // §5.1.2: the two task-layout strategies must produce the same
        // physics. With a 1×1 ocean decomposition in both layouts the
        // trajectories are bitwise identical.
        let opts = CoupledOptions {
            days: 0.5,
            ..Default::default()
        };
        let mut sequential = CoupledConfig::test_tiny();
        sequential.ocn_px = 1;
        sequential.ocn_py = 1;
        sequential.single_domain = true;
        assert_eq!(sequential.world_size(), 1);
        let world = World::new(1);
        let seq = world.run(|rank| run_coupled(rank, &sequential, &opts));

        let mut concurrent = sequential.clone();
        concurrent.single_domain = false;
        assert_eq!(concurrent.world_size(), 2);
        let world = World::new(2);
        let con = world.run(|rank| run_coupled(rank, &concurrent, &opts));

        assert_eq!(seq[0].sst_series.len(), con[0].sst_series.len());
        for (a, b) in seq[0].sst_series.iter().zip(&con[0].sst_series) {
            assert_eq!(a.to_bits(), b.to_bits(), "task layout changed physics");
        }
        for (a, b) in seq[0].ke_series.iter().zip(&con[0].ke_series) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn alltoall_and_p2p_coupling_agree() {
        let mut config = CoupledConfig::test_tiny();
        let opts = CoupledOptions {
            days: 0.5,
            ..Default::default()
        };
        config.strategy = ap3esm_cpl::rearrange::RearrangeStrategy::AllToAll;
        let world = World::new(config.world_size());
        let a = world.run(|rank| run_coupled(rank, &config, &opts));
        config.strategy = ap3esm_cpl::rearrange::RearrangeStrategy::NonBlockingP2p;
        let world = World::new(config.world_size());
        let b = world.run(|rank| run_coupled(rank, &config, &opts));
        // Identical physics — identical trajectories.
        assert_eq!(a[0].sst_series.len(), b[0].sst_series.len());
        for (x, y) in a[0].sst_series.iter().zip(&b[0].sst_series) {
            assert_eq!(x.to_bits(), y.to_bits(), "strategy changed the answer");
        }
    }
}
