//! GPTL-analogue timers and the `getTiming` SYPD computation (§6.2):
//! "Wall-clock time measurements are obtained using timers … with the
//! maximum value across all MPI ranks recorded to account for potential
//! load imbalance."

use std::collections::BTreeMap;
use std::time::Instant;

use ap3esm_comm::collectives::allreduce_max;
use ap3esm_comm::Rank;

/// Named accumulating timers (one instance per rank).
#[derive(Debug, Default)]
pub struct Timers {
    running: BTreeMap<String, Instant>,
    accum: BTreeMap<String, f64>,
    counts: BTreeMap<String, u64>,
}

impl Timers {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn start(&mut self, name: &str) {
        let prev = self.running.insert(name.to_string(), Instant::now());
        assert!(prev.is_none(), "timer {name:?} already running");
    }

    pub fn stop(&mut self, name: &str) {
        let t0 = self
            .running
            .remove(name)
            .unwrap_or_else(|| panic!("timer {name:?} not running"));
        *self.accum.entry(name.to_string()).or_insert(0.0) += t0.elapsed().as_secs_f64();
        *self.counts.entry(name.to_string()).or_insert(0) += 1;
    }

    /// Time a closure under `name`.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        self.start(name);
        let r = f();
        self.stop(name);
        r
    }

    /// Accumulated seconds for a section (0 if never stopped).
    pub fn seconds(&self, name: &str) -> f64 {
        self.accum.get(name).copied().unwrap_or(0.0)
    }

    pub fn count(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// All section names in sorted order.
    pub fn sections(&self) -> Vec<&str> {
        self.accum.keys().map(|s| s.as_str()).collect()
    }

    /// The paper's measurement rule: the maximum of this section's time
    /// across all ranks (load imbalance shows up here).
    pub fn max_across_ranks(&self, rank: &Rank, name: &str) -> f64 {
        allreduce_max(rank, 0x71_3000, self.seconds(name))
    }
}

/// The `getTiming` computation: SYPD from simulated seconds and wall
/// seconds ("dividing the length of the simulated time interval by the
/// wall-clock time required for execution").
pub fn get_timing(simulated_seconds: f64, wall_seconds: f64) -> f64 {
    assert!(wall_seconds > 0.0 && simulated_seconds >= 0.0);
    let simulated_years = simulated_seconds / (365.0 * 86_400.0);
    let wall_days = wall_seconds / 86_400.0;
    simulated_years / wall_days
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_accumulates_and_counts() {
        let mut t = Timers::new();
        for _ in 0..3 {
            t.time("atm_run", || std::thread::sleep(std::time::Duration::from_millis(2)));
        }
        assert_eq!(t.count("atm_run"), 3);
        assert!(t.seconds("atm_run") >= 0.006);
        assert_eq!(t.sections(), vec!["atm_run"]);
        assert_eq!(t.seconds("never"), 0.0);
    }

    #[test]
    #[should_panic(expected = "already running")]
    fn double_start_rejected() {
        let mut t = Timers::new();
        t.start("x");
        t.start("x");
    }

    #[test]
    fn get_timing_matches_paper_arithmetic() {
        // 1 simulated year in 1 wall day = 1 SYPD.
        assert!((get_timing(365.0 * 86_400.0, 86_400.0) - 1.0).abs() < 1e-12);
        // The coupled 1v1 headline: 0.54 SYPD means one simulated day takes
        // 86400/(365·0.54) ≈ 438 wall seconds.
        let wall_per_simday = 86_400.0 / (365.0 * 0.54);
        assert!((get_timing(86_400.0, wall_per_simday) - 0.54).abs() < 1e-9);
    }

    #[test]
    fn max_across_ranks_takes_slowest() {
        use ap3esm_comm::World;
        let world = World::new(3);
        let out = world.run(|rank| {
            let mut t = Timers::new();
            t.start("work");
            std::thread::sleep(std::time::Duration::from_millis(
                2 + 4 * rank.id() as u64,
            ));
            t.stop("work");
            t.max_across_ranks(rank, "work")
        });
        // All ranks agree on the maximum, which is at least rank 2's sleep.
        for v in &out {
            assert!((v - out[0]).abs() < 1e-12);
            assert!(*v >= 0.010);
        }
    }
}
