//! GPTL-analogue timers and the `getTiming` SYPD computation (§6.2):
//! "Wall-clock time measurements are obtained using timers … with the
//! maximum value across all MPI ranks recorded to account for potential
//! load imbalance."
//!
//! [`Timers`] is a thin facade over the `ap3esm-obs` span profiler: every
//! `start`/`stop` section also opens/closes a span on the attached
//! [`Obs`](ap3esm_obs::Obs) instance, so driver-level sections and the
//! leaf-crate instrumentation (dycore substeps, rearranger, I/O) land in
//! one call tree. Re-entrant `start` of the same name nests like a stack —
//! recursion is recorded, never aborted.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use ap3esm_comm::collectives::allreduce_max;
use ap3esm_comm::{CommError, Rank};
use ap3esm_obs::{Obs, SpanGuard};

/// Named accumulating timers (one instance per rank).
pub struct Timers {
    obs: Arc<Obs>,
    /// Open sections, innermost last.
    open: Vec<(String, Instant, SpanGuard)>,
    accum: BTreeMap<String, f64>,
    counts: BTreeMap<String, u64>,
}

impl Default for Timers {
    fn default() -> Self {
        Timers::new()
    }
}

impl std::fmt::Debug for Timers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Timers")
            .field("open", &self.open.iter().map(|(n, _, _)| n).collect::<Vec<_>>())
            .field("accum", &self.accum)
            .field("counts", &self.counts)
            .finish()
    }
}

impl Timers {
    /// Timers over a private observability instance.
    pub fn new() -> Self {
        Timers::attached(Arc::new(Obs::new()))
    }

    /// Timers feeding spans into an existing instance (typically the one
    /// the driver installed with [`ap3esm_obs::install`], so timer sections
    /// parent the leaf-crate spans).
    pub fn attached(obs: Arc<Obs>) -> Self {
        Timers {
            obs,
            open: Vec::new(),
            accum: BTreeMap::new(),
            counts: BTreeMap::new(),
        }
    }

    /// The observability instance this facade feeds.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Open the section `name`. Starting an already-running section nests
    /// (stack semantics); each `stop` closes the innermost open instance.
    pub fn start(&mut self, name: &str) {
        let guard = self.obs.profiler.enter(name);
        self.open.push((name.to_string(), Instant::now(), guard));
    }

    pub fn stop(&mut self, name: &str) {
        let pos = self
            .open
            .iter()
            .rposition(|(n, _, _)| n == name)
            .unwrap_or_else(|| panic!("timer {name:?} not running"));
        let (name, t0, guard) = self.open.remove(pos);
        drop(guard); // closes the span now, not at scope end
        *self.accum.entry(name.clone()).or_insert(0.0) += t0.elapsed().as_secs_f64();
        *self.counts.entry(name).or_insert(0) += 1;
    }

    /// Time a closure under `name`.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        self.start(name);
        let r = f();
        self.stop(name);
        r
    }

    /// Accumulated seconds for a section (0 if never stopped).
    pub fn seconds(&self, name: &str) -> f64 {
        self.accum.get(name).copied().unwrap_or(0.0)
    }

    pub fn count(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// All section names in sorted order.
    pub fn sections(&self) -> Vec<&str> {
        self.accum.keys().map(|s| s.as_str()).collect()
    }

    /// The paper's measurement rule: the maximum of this section's time
    /// across all ranks (load imbalance shows up here).
    pub fn max_across_ranks(&self, rank: &Rank, name: &str) -> Result<f64, CommError> {
        allreduce_max(rank, 0x71_3000, self.seconds(name))
    }
}

/// The `getTiming` computation: SYPD from simulated seconds and wall
/// seconds ("dividing the length of the simulated time interval by the
/// wall-clock time required for execution").
pub fn get_timing(simulated_seconds: f64, wall_seconds: f64) -> f64 {
    assert!(wall_seconds > 0.0 && simulated_seconds >= 0.0);
    let simulated_years = simulated_seconds / (365.0 * 86_400.0);
    let wall_days = wall_seconds / 86_400.0;
    simulated_years / wall_days
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_accumulates_and_counts() {
        let mut t = Timers::new();
        for _ in 0..3 {
            t.time("atm_run", || std::thread::sleep(std::time::Duration::from_millis(2)));
        }
        assert_eq!(t.count("atm_run"), 3);
        assert!(t.seconds("atm_run") >= 0.006);
        assert_eq!(t.sections(), vec!["atm_run"]);
        assert_eq!(t.seconds("never"), 0.0);
    }

    #[test]
    fn reentrant_start_nests_instead_of_panicking() {
        let mut t = Timers::new();
        t.start("x");
        t.start("x"); // the pre-obs implementation aborted here
        t.stop("x");
        t.stop("x");
        assert_eq!(t.count("x"), 2);
        // The profiler recorded the recursion as a nested span.
        let paths: Vec<String> = t.obs().profiler.snapshot().into_iter().map(|s| s.path).collect();
        assert_eq!(paths, vec!["x", "x/x"]);
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn stopping_a_never_started_section_is_loud() {
        let mut t = Timers::new();
        t.stop("ghost");
    }

    #[test]
    fn sections_mirror_into_the_span_tree() {
        let mut t = Timers::new();
        t.start("outer");
        t.time("inner", || {});
        t.stop("outer");
        let snap = t.obs().profiler.snapshot();
        let paths: Vec<&str> = snap.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["outer", "outer/inner"]);
        assert_eq!(snap[1].count, 1);
    }

    #[test]
    fn get_timing_matches_paper_arithmetic() {
        // 1 simulated year in 1 wall day = 1 SYPD.
        assert!((get_timing(365.0 * 86_400.0, 86_400.0) - 1.0).abs() < 1e-12);
        // The coupled 1v1 headline: 0.54 SYPD means one simulated day takes
        // 86400/(365·0.54) ≈ 438 wall seconds.
        let wall_per_simday = 86_400.0 / (365.0 * 0.54);
        assert!((get_timing(86_400.0, wall_per_simday) - 0.54).abs() < 1e-9);
    }

    #[test]
    fn max_across_ranks_takes_slowest() {
        use ap3esm_comm::World;
        let world = World::new(3);
        let out = world.run(|rank| {
            let mut t = Timers::new();
            t.start("work");
            std::thread::sleep(std::time::Duration::from_millis(
                2 + 4 * rank.id() as u64,
            ));
            t.stop("work");
            t.max_across_ranks(rank, "work").unwrap()
        });
        // All ranks agree on the maximum, which is at least rank 2's sleep.
        for v in &out {
            assert!((v - out[0]).abs() < 1e-12);
            assert!(*v >= 0.010);
        }
    }
}
