//! Solar geometry: the cosine of the solar zenith angle (`coszr`), an input
//! of both the conventional radiation scheme and the AI radiation module.

/// Cosine of the solar zenith angle at `(lat, lon)` radians and simulation
/// time `seconds` since 00:00 UTC on `day_of_year` (1-based). Clamped ≥ 0.
pub fn cos_zenith(lat: f64, lon: f64, day_of_year: f64, seconds_utc: f64) -> f64 {
    // Solar declination (Cooper's formula).
    let decl = 23.45_f64.to_radians()
        * (2.0 * std::f64::consts::PI * (284.0 + day_of_year) / 365.0).sin();
    // Hour angle: 0 at local solar noon.
    let solar_time_hours = seconds_utc / 3600.0 + lon.to_degrees() / 15.0;
    let hour_angle = (solar_time_hours - 12.0) * 15.0_f64.to_radians();
    (lat.sin() * decl.sin() + lat.cos() * decl.cos() * hour_angle.cos()).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equatorial_noon_is_near_overhead() {
        // Equinox-ish (day 81), local noon at lon 0.
        let c = cos_zenith(0.0, 0.0, 81.0, 12.0 * 3600.0);
        assert!(c > 0.95, "coszr {c}");
    }

    #[test]
    fn midnight_is_dark() {
        let c = cos_zenith(0.0, 0.0, 81.0, 0.0);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn longitude_shifts_local_noon() {
        // 90°E reaches noon 6 hours earlier in UTC.
        let c_east = cos_zenith(0.0, std::f64::consts::FRAC_PI_2, 81.0, 6.0 * 3600.0);
        assert!(c_east > 0.95, "coszr {c_east}");
    }

    #[test]
    fn polar_night_in_winter() {
        // 80°N around the December solstice (day 355): dark all day.
        let lat = 80.0_f64.to_radians();
        for h in 0..24 {
            assert_eq!(cos_zenith(lat, 0.0, 355.0, h as f64 * 3600.0), 0.0);
        }
    }

    #[test]
    fn summer_pole_has_midnight_sun() {
        let lat = 80.0_f64.to_radians();
        let c = cos_zenith(lat, 0.0, 172.0, 0.0); // June solstice, midnight
        assert!(c > 0.0, "no midnight sun: {c}");
    }
}
