//! The Typhoon-Doksuri forecast experiment (§7.1, Figs. 6–7).
//!
//! The paper initialises AP3ESM 3v2 and 25v10 from analysis data, simulates
//! late July 2023, and compares the typhoon's track and intensity against
//! the CMA best track / ERA5. Our substitution (DESIGN.md): an idealized
//! warm-core vortex seeded at Doksuri's genesis point in the coupled model,
//! scored against a synthetic Doksuri-shaped best track. The *code path* —
//! initialize → couple → track → compare at two resolutions — is the
//! paper's.

use ap3esm_atm::vortex::{best_track, track_error_km, BestTrackPoint, TrackPoint, VortexSpec};
use ap3esm_comm::World;

use crate::config::CoupledConfig;
use crate::coupled::{run_coupled, CoupledOptions, CoupledStats};

/// Result of one forecast run.
#[derive(Debug, Clone)]
pub struct ForecastResult {
    /// Nominal atmosphere grid spacing (km) of this configuration.
    pub atm_dx_km: f64,
    pub track: Vec<TrackPoint>,
    pub reference: Vec<BestTrackPoint>,
    /// Per-coupling great-circle track error (km), track vs reference.
    pub track_error_km: Vec<f64>,
    pub stats: CoupledStats,
}

impl ForecastResult {
    pub fn mean_track_error(&self) -> f64 {
        if self.track_error_km.is_empty() {
            return f64::NAN;
        }
        self.track_error_km.iter().sum::<f64>() / self.track_error_km.len() as f64
    }

    /// Peak model intensity (max lowest-level wind, m/s).
    pub fn peak_intensity(&self) -> f64 {
        self.track.iter().map(|p| p.max_wind).fold(0.0, f64::max)
    }

    /// Minimum central pressure reached (Pa).
    pub fn min_pressure(&self) -> f64 {
        self.track
            .iter()
            .map(|p| p.min_ps)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Run the forecast experiment at one configuration for `days`.
pub fn run_forecast(config: &CoupledConfig, days: f64) -> ForecastResult {
    run_forecast_with(config, days, &CoupledOptions::default())
}

/// [`run_forecast`] with caller-controlled run options (report name, trace
/// export, live telemetry, resilience). The forecast still owns `days`,
/// the vortex seed and track recording; everything else is taken from
/// `base`.
pub fn run_forecast_with(
    config: &CoupledConfig,
    days: f64,
    base: &CoupledOptions,
) -> ForecastResult {
    let atm_dx_km =
        ap3esm_grid::mean_spacing_km(10 * 4usize.pow(config.atm_glevel) + 2);
    let spec = VortexSpec::doksuri_at_resolution(atm_dx_km);
    let opts = CoupledOptions {
        days,
        vortex: Some(spec),
        record_track: true,
        ..base.clone()
    };
    let world = World::new(config.world_size());
    let mut all = world.run(|rank| run_coupled(rank, config, &opts));
    let stats = all.swap_remove(0);
    let track = stats.track.clone();
    // Reference points at the atmosphere coupling cadence.
    let step_hours = 24.0 / config.couplings_per_day.0 as f64;
    let reference = best_track(days * 24.0 - step_hours, step_hours);
    let errors: Vec<f64> = track
        .iter()
        .zip(&reference)
        .map(|(t, r)| track_error_km((t.lat_deg, t.lon_deg), (r.lat_deg, r.lon_deg)))
        .collect();
    ForecastResult {
        atm_dx_km,
        track,
        reference,
        track_error_km: errors,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forecast_tracks_a_vortex() {
        let config = CoupledConfig::test_tiny();
        let result = run_forecast(&config, 0.5);
        assert!(!result.track.is_empty());
        // The tracker found a depression, not the resting background.
        assert!(result.min_pressure() < 1.0e5 - 500.0, "min ps {}", result.min_pressure());
        assert!(result.peak_intensity() > 2.0);
        // Errors are finite and bounded (coarse-grid discretisation allows
        // cell-scale offsets, ~900 km at G3, plus drift).
        for e in &result.track_error_km {
            assert!(e.is_finite());
            assert!(*e < 4000.0, "track error {e} km");
        }
    }
}
