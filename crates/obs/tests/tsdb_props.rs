//! Property tests for the time-series downsampling tiers: every bucket of
//! a downsampled tier must *bound* the raw samples it covers — its `min`
//! and `max` are the extremes of the covered window, its mean lies inside
//! `[min, max]`, and the bucket counts account for every cascaded sample.
//! Otherwise alert rules evaluated on coarse tiers could see values no raw
//! sample ever took.

use ap3esm_obs::tsdb::{SeriesStore, DOWNSAMPLE_FACTOR, N_TIERS};
use proptest::prelude::*;

/// Deterministic sample stream mixing smooth drift with spiky noise, so
/// windows have genuine interior extremes.
fn sample_stream(seed: u64, n: usize, scale: f64) -> Vec<f64> {
    let mut s = seed | 1;
    (0..n)
        .map(|i| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let noise = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            let drift = (i as f64 * 0.05).sin();
            scale * (drift + if s.is_multiple_of(7) { 5.0 * noise } else { noise })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn downsampled_buckets_bound_their_raw_windows(
        n in 1usize..400,
        seed in 1u64..u64::MAX,
        scale in 0.01f64..1e6,
    ) {
        // Capacity large enough that nothing is evicted: then tier k+1's
        // buckets partition tier k's closed windows exactly.
        let store = SeriesStore::new(512);
        let samples = sample_stream(seed, n, scale);
        for (i, &v) in samples.iter().enumerate() {
            store.record_at("x", i as f64, v);
        }
        let snap = &store.snapshot()[0];
        prop_assert_eq!(snap.total, n as u64);

        for tier in 1..N_TIERS {
            let window = DOWNSAMPLE_FACTOR.pow(tier as u32);
            prop_assert_eq!(snap.tiers[tier].len(), n / window, "tier {} len", tier);
            for (bi, b) in snap.tiers[tier].iter().enumerate() {
                let raw = &samples[bi * window..(bi + 1) * window];
                let lo = raw.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = raw.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let sum: f64 = raw.iter().sum();

                prop_assert_eq!(b.count, window as u64);
                prop_assert_eq!(b.t_s, (bi * window) as f64, "bucket starts at window");
                prop_assert_eq!(b.min, lo, "tier {} bucket {} min", tier, bi);
                prop_assert_eq!(b.max, hi, "tier {} bucket {} max", tier, bi);
                // The sum is accumulated pairwise through the cascade, so
                // allow f64 reassociation error relative to the magnitude.
                let tol = 1e-9 * raw.iter().map(|v| v.abs()).sum::<f64>().max(1e-300);
                prop_assert!((b.sum - sum).abs() <= tol, "sum {} vs {}", b.sum, sum);

                let mean = b.mean();
                prop_assert!(
                    lo - tol <= mean && mean <= hi + tol,
                    "mean {} outside [{}, {}]", mean, lo, hi
                );
            }
        }
    }

    #[test]
    fn eviction_never_widens_bounds(
        n in 64usize..2000,
        seed in 1u64..u64::MAX,
    ) {
        // Small capacity forces raw-ring eviction; surviving coarse buckets
        // must still bound the (recomputable) windows they summarise.
        let store = SeriesStore::new(16);
        let samples = sample_stream(seed, n, 10.0);
        for (i, &v) in samples.iter().enumerate() {
            store.record_at("x", i as f64, v);
        }
        let snap = &store.snapshot()[0];
        prop_assert!(snap.tiers[0].len() <= 16);
        for tier in 1..N_TIERS {
            let window = DOWNSAMPLE_FACTOR.pow(tier as u32);
            for b in &snap.tiers[tier] {
                let start = b.t_s as usize;
                prop_assert_eq!(start % window, 0, "window-aligned timestamp");
                let raw = &samples[start..start + window];
                let lo = raw.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = raw.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                prop_assert_eq!(b.min, lo);
                prop_assert_eq!(b.max, hi);
                prop_assert_eq!(b.count, window as u64);
            }
        }
    }
}
