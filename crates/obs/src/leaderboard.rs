//! The `ap3esm-leaderboard/1` campaign-summary schema.
//!
//! A campaign run (the scenario engine's fan-out over a catalog — see
//! `ap3esm-scenario`) ends in one machine-readable ranking of its
//! scenarios. The schema is deliberately restricted to **deterministic**
//! quantities: health verdicts, conservation drift, ensemble spread, and
//! the cost-model SYPD projection derived from the configuration — never
//! wall-clock measurements, so the same catalog and seed produce a
//! byte-identical report on any machine (the property CI's
//! `scenario-smoke` job asserts with a double run). Measured wall-clock
//! SYPD belongs in the human table and the per-scenario `ap3esm-tsdb/1`
//! snapshots, not here.
//!
//! Like the other `ap3esm-*` schemas in this crate, the writer is the
//! insertion-ordered [`Json`] tree and the reader is strict: unknown
//! schema tags, missing fields, or mistyped values are errors, so a CI
//! gate that validates a leaderboard actually validates it.

use std::path::PathBuf;

use crate::json::Json;

/// Schema tag of the campaign leaderboard document.
pub const LEADERBOARD_SCHEMA: &str = "ap3esm-leaderboard/1";

/// One scenario's row. All fields must be deterministic functions of
/// (catalog, seed) — see the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderboardRow {
    pub name: String,
    /// Component subset ("full", "ocean-only", "atm-only", "ice-only").
    pub model: String,
    /// Resolution-ladder rung ("tiny", "small", "medium").
    pub grid: String,
    pub days: f64,
    /// Ensemble members executed (1 = deterministic single run).
    pub members: u64,
    /// Restart-cycled reforecast segments (1 = one cold-started run).
    pub cycles: u64,
    /// Contracted outcome ("healthy" | "degraded" | "failure").
    pub expect: String,
    /// Observed outcome (worst member): the contract values plus
    /// "PANIC" / "DIVERGENCE" for runs that broke the harness contract.
    pub verdict: String,
    /// Did the verdict match the contract?
    pub ok: bool,
    /// Ranking score: cost-model SYPD discounted by drift and verdict
    /// (see [`score`]).
    pub score: f64,
    /// Deterministic cost-model SYPD projection for this configuration on
    /// the reference machine (not a measurement).
    pub sypd_proxy: f64,
    /// Worst-member conservation drift (relative, model-specific metric:
    /// θ-mass drift for atmospheres, volume anomaly for oceans, …).
    pub drift: f64,
    /// Ensemble spread: max-min of the members' final primary diagnostic
    /// (0 for single-member scenarios).
    pub spread: f64,
    pub simulated_seconds: f64,
    /// Fault events injected+observed across members (chaos scenarios).
    pub faults: u64,
    /// Rollback recoveries across members.
    pub recoveries: u64,
    /// Shrink-to-fit recoveries across members.
    pub shrinks: u64,
    /// Per-scenario `ap3esm-tsdb/1` snapshot file name (relative to the
    /// campaign output directory), if one was written.
    pub series: Option<String>,
}

/// Ranking score: the deterministic SYPD projection, discounted by
/// conservation drift (1% drift halves the score at `drift = 0.01`) and
/// gated by the verdict — a scenario that broke its contract ranks below
/// every scenario that honoured it regardless of speed.
pub fn score(ok: bool, sypd_proxy: f64, drift: f64) -> f64 {
    let drift_discount = 1.0 / (1.0 + 100.0 * drift.abs());
    let contract = if ok { 1.0 } else { 0.0 };
    contract * sypd_proxy * drift_discount
}

/// The ranked campaign leaderboard.
#[derive(Debug, Clone, PartialEq)]
pub struct Leaderboard {
    /// Catalog name (from the catalog's `name` line).
    pub campaign: String,
    /// Campaign seed the scenario/member seeds derive from.
    pub seed: u64,
    /// Rows in rank order (rank 1 first).
    pub rows: Vec<LeaderboardRow>,
}

impl Leaderboard {
    /// Rank rows: contract-honouring scenarios first, then by score
    /// descending, ties broken by name so the order is total and
    /// deterministic.
    pub fn ranked(campaign: &str, seed: u64, mut rows: Vec<LeaderboardRow>) -> Self {
        rows.sort_by(|a, b| {
            b.ok.cmp(&a.ok)
                .then(b.score.total_cmp(&a.score))
                .then(a.name.cmp(&b.name))
        });
        Leaderboard {
            campaign: campaign.to_string(),
            seed,
            rows,
        }
    }

    /// Serialise as the `ap3esm-leaderboard/1` document (compact, one
    /// line, byte-stable for a fixed input).
    pub fn to_json(&self) -> String {
        let mut root = Json::obj();
        root.set("schema", Json::Str(LEADERBOARD_SCHEMA.into()));
        root.set("campaign", Json::Str(self.campaign.clone()));
        root.set("seed", Json::UInt(self.seed));
        root.set("scenarios", Json::UInt(self.rows.len() as u64));
        root.set(
            "violations",
            Json::UInt(self.rows.iter().filter(|r| !r.ok).count() as u64),
        );
        let rows = self
            .rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let mut o = Json::obj();
                o.set("rank", Json::UInt(i as u64 + 1));
                o.set("name", Json::Str(r.name.clone()));
                o.set("model", Json::Str(r.model.clone()));
                o.set("grid", Json::Str(r.grid.clone()));
                o.set("days", Json::Num(r.days));
                o.set("members", Json::UInt(r.members));
                o.set("cycles", Json::UInt(r.cycles));
                o.set("expect", Json::Str(r.expect.clone()));
                o.set("verdict", Json::Str(r.verdict.clone()));
                o.set("ok", Json::Bool(r.ok));
                o.set("score", Json::Num(r.score));
                o.set("sypd_proxy", Json::Num(r.sypd_proxy));
                o.set("drift", Json::Num(r.drift));
                o.set("spread", Json::Num(r.spread));
                o.set("simulated_seconds", Json::Num(r.simulated_seconds));
                o.set("faults", Json::UInt(r.faults));
                o.set("recoveries", Json::UInt(r.recoveries));
                o.set("shrinks", Json::UInt(r.shrinks));
                o.set(
                    "series",
                    match &r.series {
                        Some(s) => Json::Str(s.clone()),
                        None => Json::Null,
                    },
                );
                o
            })
            .collect();
        root.set("leaderboard", Json::Arr(rows));
        root.to_string()
    }

    /// Write the document to `dir/leaderboard-<name>.json` (newline
    /// terminated) and return the path.
    pub fn write(&self, dir: &std::path::Path, name: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("leaderboard-{name}.json"));
        std::fs::write(&path, self.to_json() + "\n")?;
        Ok(path)
    }

    /// Strict parse of an `ap3esm-leaderboard/1` document: wrong schema
    /// tag, missing fields, mistyped values, or rank numbers out of order
    /// are all errors.
    pub fn parse(text: &str) -> Result<Leaderboard, String> {
        let root = Json::parse(text).map_err(|e| format!("not JSON: {e}"))?;
        match root.get("schema").and_then(Json::as_str) {
            Some(LEADERBOARD_SCHEMA) => {}
            Some(other) => return Err(format!("schema is {other:?}, want {LEADERBOARD_SCHEMA:?}")),
            None => return Err("missing schema tag".into()),
        }
        let campaign = root
            .get("campaign")
            .and_then(Json::as_str)
            .ok_or("missing campaign")?
            .to_string();
        let seed = root
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or("missing seed")?;
        let declared = root
            .get("scenarios")
            .and_then(Json::as_u64)
            .ok_or("missing scenarios count")?;
        let rows_json = root
            .get("leaderboard")
            .and_then(Json::as_arr)
            .ok_or("missing leaderboard array")?;
        if rows_json.len() as u64 != declared {
            return Err(format!(
                "scenarios says {declared} but leaderboard has {} rows",
                rows_json.len()
            ));
        }
        let mut rows = Vec::with_capacity(rows_json.len());
        for (i, row) in rows_json.iter().enumerate() {
            let ctx = |field: &str| format!("row {}: missing or mistyped {field}", i + 1);
            let s = |field: &str| -> Result<String, String> {
                row.get(field)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| ctx(field))
            };
            let f = |field: &str| -> Result<f64, String> {
                row.get(field).and_then(Json::as_f64).ok_or_else(|| ctx(field))
            };
            let u = |field: &str| -> Result<u64, String> {
                row.get(field).and_then(Json::as_u64).ok_or_else(|| ctx(field))
            };
            let rank = u("rank")?;
            if rank != i as u64 + 1 {
                return Err(format!("row {}: rank says {rank}", i + 1));
            }
            let ok = match row.get("ok") {
                Some(Json::Bool(b)) => *b,
                _ => return Err(ctx("ok")),
            };
            let expect = s("expect")?;
            if !["healthy", "degraded", "failure"].contains(&expect.as_str()) {
                return Err(format!("row {}: bad expect {expect:?}", i + 1));
            }
            rows.push(LeaderboardRow {
                name: s("name")?,
                model: s("model")?,
                grid: s("grid")?,
                days: f("days")?,
                members: u("members")?,
                cycles: u("cycles")?,
                expect,
                verdict: s("verdict")?,
                ok,
                score: f("score")?,
                sypd_proxy: f("sypd_proxy")?,
                drift: f("drift")?,
                spread: f("spread")?,
                simulated_seconds: f("simulated_seconds")?,
                faults: u("faults")?,
                recoveries: u("recoveries")?,
                shrinks: u("shrinks")?,
                series: match row.get("series") {
                    Some(Json::Str(s)) => Some(s.clone()),
                    Some(Json::Null) | None => None,
                    _ => return Err(ctx("series")),
                },
            });
        }
        Ok(Leaderboard {
            campaign,
            seed,
            rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, ok: bool, sypd: f64, drift: f64) -> LeaderboardRow {
        LeaderboardRow {
            name: name.into(),
            model: "full".into(),
            grid: "tiny".into(),
            days: 1.0,
            members: 1,
            cycles: 1,
            expect: "healthy".into(),
            verdict: if ok { "healthy".into() } else { "PANIC".into() },
            ok,
            score: score(ok, sypd, drift),
            sypd_proxy: sypd,
            drift,
            spread: 0.0,
            simulated_seconds: 86_400.0,
            faults: 0,
            recoveries: 0,
            shrinks: 0,
            series: Some(format!("series-demo-{name}.json")),
        }
    }

    #[test]
    fn ranking_is_total_and_contract_first() {
        let lb = Leaderboard::ranked(
            "demo",
            7,
            vec![
                row("slow-clean", true, 10.0, 0.0),
                row("fast-drifty", true, 100.0, 0.5),
                row("fastest-broken", false, 1000.0, 0.0),
            ],
        );
        // drift discount: 100/(1+50) ≈ 1.96 < 10 → slow-clean wins.
        assert_eq!(lb.rows[0].name, "slow-clean");
        assert_eq!(lb.rows[1].name, "fast-drifty");
        // Contract violations sink below every honoured contract.
        assert_eq!(lb.rows[2].name, "fastest-broken");
    }

    #[test]
    fn json_roundtrip_is_identity() {
        let lb = Leaderboard::ranked(
            "demo",
            42,
            vec![row("a", true, 5.0, 1e-6), row("b", false, 9.0, 0.0)],
        );
        let text = lb.to_json();
        assert!(text.starts_with(r#"{"schema":"ap3esm-leaderboard/1""#));
        let back = Leaderboard::parse(&text).unwrap();
        assert_eq!(back, lb);
        // And serialisation is stable.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn parse_is_strict() {
        let lb = Leaderboard::ranked("demo", 1, vec![row("a", true, 5.0, 0.0)]);
        let good = lb.to_json();
        for (what, bad) in [
            ("schema", good.replace("ap3esm-leaderboard/1", "ap3esm-leaderboard/2")),
            ("count", good.replace(r#""scenarios":1"#, r#""scenarios":2"#)),
            ("rank order", good.replace(r#""rank":1"#, r#""rank":3"#)),
            ("expect", good.replace(r#""expect":"healthy""#, r#""expect":"fine""#)),
            ("missing field", good.replace(r#""drift":0,"#, "")),
            ("not json", "leaderboard? what leaderboard".into()),
        ] {
            assert!(Leaderboard::parse(&bad).is_err(), "{what} must be rejected");
        }
    }
}
