//! Hierarchical span profiler.
//!
//! A [`Profiler`] owns a call tree of named spans. [`Profiler::enter`]
//! resolves (or creates) the child of the calling thread's current span and
//! returns an RAII [`SpanGuard`]; dropping the guard accumulates elapsed
//! wall time into the node with two relaxed atomic adds. Nesting is tracked
//! per thread, so each rank thread of a
//! [`World`](ap3esm_comm::World) builds its own branch structure while
//! sharing one tree, and concurrent guards never lose samples.
//!
//! When the profiler is disabled (or none is installed — see the crate
//! root), `enter` returns an inert guard after a single relaxed load: cheap
//! enough to leave instrumentation compiled into the dycore hot loops.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use ap3esm_comm::events::trace_now_us;

use crate::trace::TraceSink;

/// Sentinel parent id for top-level spans.
const ROOT: u32 = u32::MAX;

/// Per-node accumulators, shared between the tree and open guards so the
/// drop path never takes the tree lock.
struct NodeStats {
    total_ns: AtomicU64,
    count: AtomicU64,
}

struct Node {
    name: String,
    parent: u32,
    depth: usize,
    stats: Arc<NodeStats>,
}

#[derive(Default)]
struct Tree {
    nodes: Vec<Node>,
    /// (parent, name) → node id; children are created once and reused.
    index: HashMap<(u32, String), u32>,
}

/// A thread-safe hierarchical profiler (one per rank in a coupled run).
pub struct Profiler {
    enabled: AtomicBool,
    /// Distinguishes profilers on the shared thread-local span stack.
    id: u64,
    tree: Mutex<Tree>,
    /// Fast gate mirroring `trace.is_some()`; checked with one relaxed load
    /// on the span path so non-traced runs pay nothing extra.
    trace_on: AtomicBool,
    /// When installed, every completed span and instant event is also
    /// pushed here for chrome-trace export.
    trace: Mutex<Option<Arc<TraceSink>>>,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

thread_local! {
    /// Open spans of this thread: (profiler id, node id), innermost last.
    static STACK: std::cell::RefCell<Vec<(u64, u32)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

fn next_profiler_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

fn lock_tree(tree: &Mutex<Tree>) -> MutexGuard<'_, Tree> {
    tree.lock().unwrap_or_else(|p| p.into_inner())
}

impl Profiler {
    pub fn new() -> Self {
        Profiler {
            enabled: AtomicBool::new(true),
            id: next_profiler_id(),
            tree: Mutex::new(Tree::default()),
            trace_on: AtomicBool::new(false),
            trace: Mutex::new(None),
        }
    }

    /// A profiler whose `enter` is a near-free no-op.
    pub fn disabled() -> Self {
        let p = Profiler::new();
        p.enabled.store(false, Ordering::Relaxed);
        p
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Install (or remove) a trace sink. While one is installed, every
    /// completed span additionally records a chrome-trace complete event.
    pub fn set_trace_sink(&self, sink: Option<Arc<TraceSink>>) {
        let mut slot = self.trace.lock().unwrap_or_else(|p| p.into_inner());
        self.trace_on.store(sink.is_some(), Ordering::Relaxed);
        *slot = sink;
    }

    /// The currently installed trace sink, if any.
    pub fn trace_sink(&self) -> Option<Arc<TraceSink>> {
        if !self.trace_on.load(Ordering::Relaxed) {
            return None;
        }
        self.trace
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Record a point event (fault injection, health verdict, rollback…)
    /// on the installed trace sink; a no-op when tracing is off.
    pub fn record_instant(&self, name: &str) {
        if let Some(sink) = self.trace_sink() {
            sink.record_instant(name);
        }
    }

    /// Opens the span `name` under the calling thread's current span of
    /// this profiler (a root span when the thread has none open).
    pub fn enter(&self, name: &str) -> SpanGuard {
        if !self.enabled.load(Ordering::Relaxed) {
            return SpanGuard::inactive();
        }
        let parent = STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(pid, _)| *pid == self.id)
                .map(|&(_, node)| node)
                .unwrap_or(ROOT)
        });
        let (node, stats) = {
            let mut tree = lock_tree(&self.tree);
            match tree.index.get(&(parent, name.to_string())) {
                Some(&id) => (id, Arc::clone(&tree.nodes[id as usize].stats)),
                None => {
                    let id = tree.nodes.len() as u32;
                    let depth = if parent == ROOT {
                        0
                    } else {
                        tree.nodes[parent as usize].depth + 1
                    };
                    let stats = Arc::new(NodeStats {
                        total_ns: AtomicU64::new(0),
                        count: AtomicU64::new(0),
                    });
                    tree.nodes.push(Node {
                        name: name.to_string(),
                        parent,
                        depth,
                        stats: Arc::clone(&stats),
                    });
                    tree.index.insert((parent, name.to_string()), id);
                    (id, stats)
                }
            }
        };
        STACK.with(|s| s.borrow_mut().push((self.id, node)));
        let trace = self
            .trace_sink()
            .map(|sink| (sink, name.to_string(), trace_now_us()));
        SpanGuard {
            open: Some(OpenSpan {
                profiler_id: self.id,
                node,
                stats,
                t0: Instant::now(),
                trace,
            }),
        }
    }

    /// Preorder snapshot of the span tree (children in creation order).
    pub fn snapshot(&self) -> Vec<SpanSnapshot> {
        let tree = lock_tree(&self.tree);
        let n = tree.nodes.len();
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut roots = Vec::new();
        for (id, node) in tree.nodes.iter().enumerate() {
            if node.parent == ROOT {
                roots.push(id as u32);
            } else {
                children[node.parent as usize].push(id as u32);
            }
        }
        let mut out = Vec::with_capacity(n);
        let mut stack: Vec<u32> = roots.into_iter().rev().collect();
        let mut paths: Vec<String> = vec![String::new(); n];
        while let Some(id) = stack.pop() {
            let node = &tree.nodes[id as usize];
            let path = if node.parent == ROOT {
                node.name.clone()
            } else {
                format!("{}/{}", paths[node.parent as usize], node.name)
            };
            paths[id as usize] = path.clone();
            let total_ns = node.stats.total_ns.load(Ordering::Relaxed);
            let child_ns: u64 = children[id as usize]
                .iter()
                .map(|&c| tree.nodes[c as usize].stats.total_ns.load(Ordering::Relaxed))
                .sum();
            out.push(SpanSnapshot {
                path,
                name: node.name.clone(),
                depth: node.depth,
                total_s: total_ns as f64 * 1e-9,
                self_s: total_ns.saturating_sub(child_ns) as f64 * 1e-9,
                count: node.stats.count.load(Ordering::Relaxed),
            });
            for &c in children[id as usize].iter().rev() {
                stack.push(c);
            }
        }
        out
    }
}

struct OpenSpan {
    profiler_id: u64,
    node: u32,
    stats: Arc<NodeStats>,
    t0: Instant,
    /// `(sink, span name, enter timestamp µs)` when tracing is active.
    trace: Option<(Arc<TraceSink>, String, u64)>,
}

/// RAII handle for an open span; accumulates on drop.
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

impl SpanGuard {
    /// The guard returned when profiling is off: dropping it does nothing.
    pub fn inactive() -> Self {
        SpanGuard { open: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        let elapsed = open.t0.elapsed().as_nanos() as u64;
        open.stats.total_ns.fetch_add(elapsed, Ordering::Relaxed);
        open.stats.count.fetch_add(1, Ordering::Relaxed);
        if let Some((sink, name, ts_us)) = &open.trace {
            sink.record_complete(name, *ts_us, elapsed / 1_000);
        }
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards normally drop innermost-first; tolerate out-of-order
            // drops by removing the last matching entry.
            if let Some(pos) = stack
                .iter()
                .rposition(|&(pid, node)| pid == open.profiler_id && node == open.node)
            {
                stack.remove(pos);
            }
        });
    }
}

/// One node of a [`Profiler::snapshot`], in preorder.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Slash-joined path from the root, e.g. `atm_run/dycore/dyn_substeps`.
    pub path: String,
    pub name: String,
    pub depth: usize,
    /// Wall seconds inside this span (children included).
    pub total_s: f64,
    /// Wall seconds not attributed to any child span.
    pub self_s: f64,
    /// Completed enters.
    pub count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(us: u64) {
        let t0 = Instant::now();
        while t0.elapsed().as_micros() < us as u128 {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn builds_parent_child_tree_with_self_time() {
        let p = Profiler::new();
        {
            let _a = p.enter("a");
            spin(2_000);
            {
                let _b = p.enter("b");
                spin(2_000);
            }
            {
                let _b = p.enter("b");
                spin(2_000);
            }
        }
        let snap = p.snapshot();
        assert_eq!(snap.len(), 2);
        let a = &snap[0];
        let b = &snap[1];
        assert_eq!(a.path, "a");
        assert_eq!((a.depth, a.count), (0, 1));
        assert_eq!(b.path, "a/b");
        assert_eq!((b.depth, b.count), (1, 2));
        assert!(a.total_s >= b.total_s);
        assert!(b.total_s >= 0.004);
        // Self time excludes the children: roughly the 2 ms spent in `a`.
        assert!(a.self_s >= 0.002 - 1e-4);
        assert!(a.self_s <= a.total_s - b.total_s + 1e-4);
    }

    #[test]
    fn same_name_under_different_parents_are_distinct_nodes() {
        let p = Profiler::new();
        {
            let _x = p.enter("x");
            let _h = p.enter("halo");
        }
        {
            let _y = p.enter("y");
            let _h = p.enter("halo");
        }
        let paths: Vec<String> = p.snapshot().into_iter().map(|s| s.path).collect();
        assert_eq!(paths, vec!["x", "x/halo", "y", "y/halo"]);
    }

    #[test]
    fn reentrant_same_name_nests_instead_of_aborting() {
        let p = Profiler::new();
        {
            let _outer = p.enter("solve");
            let _inner = p.enter("solve"); // recursion must not panic
        }
        let snap = p.snapshot();
        assert_eq!(snap[0].path, "solve");
        assert_eq!(snap[1].path, "solve/solve");
        assert_eq!(snap[0].count, 1);
        assert_eq!(snap[1].count, 1);
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::disabled();
        {
            let _g = p.enter("ghost");
        }
        assert!(p.snapshot().is_empty());
        p.set_enabled(true);
        {
            let _g = p.enter("real");
        }
        assert_eq!(p.snapshot().len(), 1);
    }

    #[test]
    fn concurrent_threads_share_one_tree_without_losing_samples() {
        let p = Arc::new(Profiler::new());
        let threads = 8;
        let iters = 200;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let p = Arc::clone(&p);
                s.spawn(move || {
                    for _ in 0..iters {
                        let _a = p.enter("work");
                        let _b = p.enter("leaf");
                    }
                });
            }
        });
        let snap = p.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].path, "work");
        assert_eq!(snap[0].count, (threads * iters) as u64);
        assert_eq!(snap[1].path, "work/leaf");
        assert_eq!(snap[1].count, (threads * iters) as u64);
    }

    #[test]
    fn installed_trace_sink_sees_spans_and_instants() {
        let p = Profiler::new();
        let sink = Arc::new(TraceSink::new(64));
        p.set_trace_sink(Some(Arc::clone(&sink)));
        {
            let _a = p.enter("a");
            spin(1_000);
        }
        p.record_instant("fault.kill");
        p.set_trace_sink(None);
        {
            let _b = p.enter("b"); // not traced once the sink is removed
        }
        let (events, dropped) = sink.take();
        assert_eq!(dropped, 0);
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a", "fault.kill"]);
        assert!(events[0].dur_us >= 1_000);
        assert_eq!(p.snapshot().len(), 2); // tree still records both spans
    }

    #[test]
    fn two_profilers_on_one_thread_stay_independent() {
        let p = Profiler::new();
        let q = Profiler::new();
        {
            let _a = p.enter("p_outer");
            let _b = q.enter("q_outer");
            let _c = p.enter("p_inner"); // parent must be p_outer, not q_outer
        }
        let pp: Vec<String> = p.snapshot().into_iter().map(|s| s.path).collect();
        let qq: Vec<String> = q.snapshot().into_iter().map(|s| s.path).collect();
        assert_eq!(pp, vec!["p_outer", "p_outer/p_inner"]);
        assert_eq!(qq, vec!["q_outer"]);
    }
}
