//! Metrics registry: named counters, gauges, and log-bucketed histograms.
//!
//! Handles are `Arc`s resolved once through the registry lock and then
//! updated with relaxed atomics, so hot loops (per-message byte counts,
//! per-substep durations) never contend on a map.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonic event/byte counter.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins f64 gauge (stored as bits).
#[derive(Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

// Histogram bucket layout: values below 2^LINEAR_BITS get exact unit
// buckets; above that, each power of two is split into 2^SUB_BITS
// sub-buckets, bounding the relative quantile error by 2^-SUB_BITS (~3%).
const SUB_BITS: u32 = 5;
const LINEAR_MAX: u64 = 1 << SUB_BITS; // 32 exact buckets
const N_BUCKETS: usize = (LINEAR_MAX as usize) + ((64 - SUB_BITS as usize) << SUB_BITS);

fn bucket_of(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS
        let sub = ((v >> (msb - SUB_BITS)) & (LINEAR_MAX - 1)) as usize;
        LINEAR_MAX as usize + (((msb - SUB_BITS) as usize) << SUB_BITS) + sub
    }
}

/// Midpoint of a bucket's value range (its exact value in the linear part).
fn bucket_value(idx: usize) -> u64 {
    if idx < LINEAR_MAX as usize {
        idx as u64
    } else {
        let rel = idx - LINEAR_MAX as usize;
        let msb = (rel >> SUB_BITS) as u32 + SUB_BITS;
        let sub = (rel & (LINEAR_MAX as usize - 1)) as u64;
        let width = 1u64 << (msb - SUB_BITS);
        let lower = (1u64 << msb) + sub * width;
        lower + width / 2
    }
}

/// Lock-free histogram over `u64` samples (durations in ns, sizes in
/// bytes); quantiles carry ≤ ~3% relative bucketing error, min/max are
/// exact.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX { 0 } else { m }
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]` (nearest-rank over buckets).
    /// Defined on every state: an empty histogram returns 0 and a
    /// single-sample histogram returns that sample exactly for every `q`,
    /// instead of walking buckets into an underflow edge case.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        // Snapshot the extremes once, defensively ordered: a concurrent
        // `record` updates min before max, so a racing reader can observe
        // min > max — which would make `clamp` panic.
        let lo = self.min();
        let hi = self.max().max(lo);
        if n == 1 || lo == hi {
            return hi;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                // Clamp to the exact extremes so q=0/q=1 are error-free.
                return bucket_value(idx).clamp(lo, hi);
            }
        }
        hi
    }

    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
        }
    }

    /// Fold `other`'s samples into `self` bucket-wise, so quantiles of the
    /// merged histogram are exact (up to bucketing error) rather than
    /// approximated from two digests. The raw `min` atomics are merged with
    /// `fetch_min` on the stored bits, so an empty side's `u64::MAX`
    /// sentinel never poisons the result — merging an empty histogram is a
    /// no-op and merging *into* an empty one yields `other` exactly, which
    /// keeps alert-rule thresholds on merged p50/p95 NaN-free.
    pub fn merge(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(&other.buckets) {
            let n = src.load(Ordering::Relaxed);
            if n != 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Point-in-time digest of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    pub count: u64,
    pub min: u64,
    pub max: u64,
    pub mean: f64,
    pub p50: u64,
    pub p95: u64,
}

impl HistogramSummary {
    /// Combine two digests (e.g. the same histogram from two ranks). An
    /// empty side contributes nothing: the result's p50/p95 equal the
    /// non-empty side's, never 0 or NaN. When both sides hold samples the
    /// quantiles are count-weighted interpolations — an approximation
    /// (digests cannot be merged exactly); merge [`Histogram`]s bucket-wise
    /// via [`Histogram::merge`] when exactness matters.
    pub fn merge(&self, other: &HistogramSummary) -> HistogramSummary {
        if self.count == 0 {
            return other.clone();
        }
        if other.count == 0 {
            return self.clone();
        }
        let n = self.count + other.count;
        let (wa, wb) = (self.count as f64 / n as f64, other.count as f64 / n as f64);
        let blend = |a: u64, b: u64| (a as f64 * wa + b as f64 * wb).round() as u64;
        HistogramSummary {
            count: n,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            mean: self.mean * wa + other.mean * wb,
            p50: blend(self.p50, other.p50),
            p95: blend(self.p95, other.p95),
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Named-metric registry; get-or-create by name, sorted snapshots.
#[derive(Default)]
pub struct Metrics {
    inner: Mutex<BTreeMap<String, Metric>>,
}

/// Snapshot entry of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    Counter(u64),
    Gauge(f64),
    Histogram(HistogramSummary),
}

impl Metrics {
    fn entry<T, F: FnOnce() -> Metric, G: Fn(&Metric) -> Option<Arc<T>>>(
        &self,
        name: &str,
        make: F,
        as_kind: G,
    ) -> Arc<T> {
        let mut map = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let metric = map.entry(name.to_string()).or_insert_with(make);
        as_kind(metric)
            .unwrap_or_else(|| panic!("metric {name:?} already registered with another kind"))
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.entry(
            name,
            || Metric::Counter(Arc::default()),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.entry(
            name,
            || Metric::Gauge(Arc::default()),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.entry(
            name,
            || Metric::Histogram(Arc::default()),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// All metrics by name (BTreeMap order: lexicographic, deterministic).
    pub fn snapshot(&self) -> Vec<(String, MetricSnapshot)> {
        let map = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        map.iter()
            .map(|(name, metric)| {
                let snap = match metric {
                    Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                    Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                    Metric::Histogram(h) => MetricSnapshot::Histogram(h.summary()),
                };
                (name.clone(), snap)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let m = Metrics::default();
        m.counter("msgs").add(3);
        m.counter("msgs").add(4);
        m.gauge("sypd").set(0.54);
        assert_eq!(m.counter("msgs").get(), 7);
        assert_eq!(m.gauge("sypd").get(), 0.54);
        let snap = m.snapshot();
        assert_eq!(snap[0].0, "msgs");
        assert_eq!(snap[0].1, MetricSnapshot::Counter(7));
        assert_eq!(snap[1].1, MetricSnapshot::Gauge(0.54));
    }

    #[test]
    fn bucket_mapping_is_monotone_and_bounded() {
        let mut last = 0usize;
        for v in [0u64, 1, 31, 32, 33, 100, 1_000, 1 << 20, u64::MAX / 2, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= last, "bucket order broke at {v}");
            assert!(b < N_BUCKETS);
            last = b;
            if v > 0 {
                // The representative value is within the sub-bucket width.
                let rep = bucket_value(b) as f64;
                let rel = (rep - v as f64).abs() / v as f64;
                assert!(rel <= 1.0 / LINEAR_MAX as f64 + 1e-12, "rel err {rel} at {v}");
            }
        }
    }

    #[test]
    fn empty_histogram_quantiles_are_defined() {
        let h = Histogram::default();
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
        let s = h.summary();
        assert_eq!((s.count, s.min, s.max, s.p50, s.p95), (0, 0, 0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sample_histogram_returns_the_sample_at_every_quantile() {
        // A value deep in the log-bucketed range, where the bucket midpoint
        // differs from the sample — quantiles must still be exact.
        let h = Histogram::default();
        h.record(1_000_003);
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), 1_000_003, "q={q}");
        }
        let s = h.summary();
        assert_eq!((s.p50, s.p95), (1_000_003, 1_000_003));
        assert_eq!((s.min, s.max), (1_000_003, 1_000_003));
    }

    #[test]
    fn identical_samples_collapse_to_the_exact_value() {
        let h = Histogram::default();
        for _ in 0..100 {
            h.record(777_777);
        }
        assert_eq!(h.quantile(0.5), 777_777);
        assert_eq!(h.quantile(0.95), 777_777);
    }

    #[test]
    fn quantiles_match_sorted_reference_within_bucket_error() {
        // Deterministic pseudo-random samples spanning several decades.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut samples = Vec::with_capacity(10_000);
        let h = Histogram::default();
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x % 1_000_000;
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        for q in [0.0, 0.25, 0.50, 0.75, 0.95, 0.99, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).max(1) - 1;
            let exact = samples[rank] as f64;
            let approx = h.quantile(q) as f64;
            let tol = exact / LINEAR_MAX as f64 + 1.0; // bucket width + rounding
            assert!(
                (approx - exact).abs() <= tol,
                "q={q}: approx {approx} vs exact {exact} (tol {tol})"
            );
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.min(), samples[0]);
        assert_eq!(h.max(), *samples.last().unwrap());
    }

    #[test]
    fn histogram_is_safe_under_concurrent_recording() {
        let h = Arc::new(Histogram::default());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 3999);
    }

    #[test]
    fn merging_an_empty_histogram_keeps_quantiles_of_the_nonempty_side() {
        // Both directions: empty into nonempty, and nonempty into empty.
        // Before the raw-bits min merge, the empty side's u64::MAX sentinel
        // (or its `min() == 0` public value) would poison the result and
        // drive alert thresholds to 0/NaN.
        let full = Histogram::default();
        for v in [100, 200, 300, 400, 1000] {
            full.record(v);
        }
        let want = full.summary();

        let empty = Histogram::default();
        full.merge(&empty);
        assert_eq!(full.summary(), want, "empty → nonempty must be a no-op");

        let dst = Histogram::default();
        dst.merge(&full);
        assert_eq!(dst.summary(), want, "nonempty → empty must equal the source");
        assert_eq!(dst.min(), 100);

        // Digest-level merge observes the same invariant.
        let none = Histogram::default().summary();
        assert_eq!(none.merge(&want), want);
        assert_eq!(want.merge(&none), want);
        assert!(!none.merge(&want).mean.is_nan());
    }

    #[test]
    fn merging_two_nonempty_histograms_is_bucket_exact() {
        let a = Histogram::default();
        let b = Histogram::default();
        let whole = Histogram::default();
        for v in 0..500u64 {
            let x = v * 7 + 3;
            if v % 2 == 0 { a.record(x) } else { b.record(x) }
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a.summary(), whole.summary());
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_conflicts_are_loud() {
        let m = Metrics::default();
        m.counter("x").add(1);
        let _ = m.gauge("x");
    }
}
