//! Rank-aware aggregation of span timings.
//!
//! §6.2: "Wall-clock time measurements are obtained using timers … with the
//! maximum value across all MPI ranks recorded to account for potential
//! load imbalance." [`aggregate_sections`] implements that rule on top of
//! the `ap3esm-comm` collectives — every rank contributes its local span
//! snapshot and every rank returns the same merged table of per-section
//! max/min/mean plus the load-imbalance ratio. [`gather_span_trees`]
//! additionally ships every rank's *full tree* (bounded by depth and span
//! count) to the reporting rank, so the run report and the chrome-trace
//! export can show each rank's structure, not just a flat table.

use std::collections::BTreeMap;

use ap3esm_comm::collectives::{allgather, gather};
use ap3esm_comm::{CommError, Rank};

use crate::span::SpanSnapshot;

/// Cross-rank statistics for one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct SectionStats {
    /// Slash-joined span path (e.g. `ocn_run/ocn_step/barotropic`).
    pub path: String,
    /// Paper rule: slowest rank's total for this section.
    pub max_s: f64,
    pub min_s: f64,
    /// Mean over the ranks that entered the section.
    pub mean_s: f64,
    /// Load-imbalance ratio: max over the *world-wide* mean, where ranks
    /// that never entered the section contribute zero. A section run by one
    /// rank of N therefore reads as N× imbalanced instead of silently
    /// reporting 1.0 — the coupled layout (atmosphere on rank 0, ocean
    /// elsewhere) is full of such sections and they are exactly the ones
    /// the §6.2 analysis needs flagged.
    pub imbalance: f64,
    /// How many ranks entered the section.
    pub ranks: usize,
    /// World size the aggregation ran over.
    pub world: usize,
    /// Largest per-rank call count.
    pub count: u64,
}

// Wire encoding of one rank's sections: [u32 path len][path bytes]
// [f64 total bits][u64 count] per span, concatenated.
fn encode(spans: &[SpanSnapshot]) -> Vec<u8> {
    let mut out = Vec::new();
    for s in spans {
        out.extend_from_slice(&(s.path.len() as u32).to_le_bytes());
        out.extend_from_slice(s.path.as_bytes());
        out.extend_from_slice(&s.total_s.to_bits().to_le_bytes());
        out.extend_from_slice(&s.count.to_le_bytes());
    }
    out
}

fn decode(mut buf: &[u8]) -> Vec<(String, f64, u64)> {
    let mut out = Vec::new();
    while buf.len() >= 4 {
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        if buf.len() < 4 + len + 16 {
            break; // truncated record: keep the complete prefix
        }
        buf = &buf[4..];
        let path = String::from_utf8_lossy(&buf[..len]).into_owned();
        buf = &buf[len..];
        let total = f64::from_bits(u64::from_le_bytes(buf[..8].try_into().unwrap()));
        buf = &buf[8..];
        let count = u64::from_le_bytes(buf[..8].try_into().unwrap());
        buf = &buf[8..];
        out.push((path, total, count));
    }
    out
}

/// Merges every rank's span snapshot into per-section cross-rank stats;
/// collective over the whole world (every rank must call it), and every
/// rank returns the identical table, sorted by path.
pub fn aggregate_sections(
    rank: &Rank,
    tag: u64,
    spans: &[SpanSnapshot],
) -> Result<Vec<SectionStats>, CommError> {
    let mine = encode(spans);
    // Variable-length allgather: lengths first, then the concatenated bytes.
    let lens = allgather(rank, tag, vec![mine.len() as u64])?;
    let all = allgather(rank, tag + 1, mine)?;

    let world = rank.size();
    let mut merged: BTreeMap<String, SectionStats> = BTreeMap::new();
    let mut offset = 0usize;
    for &len in &lens {
        let len = len as usize;
        for (path, total, count) in decode(&all[offset..offset + len]) {
            let entry = merged.entry(path.clone()).or_insert(SectionStats {
                path,
                max_s: f64::NEG_INFINITY,
                min_s: f64::INFINITY,
                mean_s: 0.0, // holds the running sum until the final pass
                imbalance: 1.0,
                ranks: 0,
                world,
                count: 0,
            });
            entry.max_s = entry.max_s.max(total);
            entry.min_s = entry.min_s.min(total);
            entry.mean_s += total;
            entry.ranks += 1;
            entry.count = entry.count.max(count);
        }
        offset += len;
    }
    Ok(merged
        .into_values()
        .map(|mut s| {
            // Imbalance over the whole world: absent ranks contribute zero
            // time, so a section run by 1 of N ranks reads as N×.
            let world_mean = s.mean_s / world as f64;
            s.mean_s /= s.ranks as f64;
            s.imbalance = if world_mean > 0.0 {
                s.max_s / world_mean
            } else {
                1.0
            };
            s
        })
        .collect())
}

/// One rank's (bounded) span tree as gathered by [`gather_span_trees`].
#[derive(Debug, Clone, PartialEq)]
pub struct RankTree {
    pub rank: usize,
    /// Spans omitted by the depth/count bounds.
    pub dropped: u64,
    /// Preorder snapshot, parents before children.
    pub spans: Vec<SpanSnapshot>,
}

// Wire encoding of one bounded tree: [u64 dropped] then per span
// [u32 path len][path][u32 depth][f64 total bits][f64 self bits][u64 count].
fn encode_tree(dropped: u64, spans: &[SpanSnapshot]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&dropped.to_le_bytes());
    for s in spans {
        out.extend_from_slice(&(s.path.len() as u32).to_le_bytes());
        out.extend_from_slice(s.path.as_bytes());
        out.extend_from_slice(&(s.depth as u32).to_le_bytes());
        out.extend_from_slice(&s.total_s.to_bits().to_le_bytes());
        out.extend_from_slice(&s.self_s.to_bits().to_le_bytes());
        out.extend_from_slice(&s.count.to_le_bytes());
    }
    out
}

fn decode_tree(rank: usize, mut buf: &[u8]) -> RankTree {
    let dropped = if buf.len() >= 8 {
        let d = u64::from_le_bytes(buf[..8].try_into().unwrap());
        buf = &buf[8..];
        d
    } else {
        0
    };
    let mut spans = Vec::new();
    while buf.len() >= 4 {
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        if buf.len() < 4 + len + 28 {
            break; // truncated record: keep the complete prefix
        }
        buf = &buf[4..];
        let path = String::from_utf8_lossy(&buf[..len]).into_owned();
        buf = &buf[len..];
        let depth = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        buf = &buf[4..];
        let total_s = f64::from_bits(u64::from_le_bytes(buf[..8].try_into().unwrap()));
        buf = &buf[8..];
        let self_s = f64::from_bits(u64::from_le_bytes(buf[..8].try_into().unwrap()));
        buf = &buf[8..];
        let count = u64::from_le_bytes(buf[..8].try_into().unwrap());
        buf = &buf[8..];
        let name = path.rsplit('/').next().unwrap_or(&path).to_string();
        spans.push(SpanSnapshot {
            path,
            name,
            depth,
            total_s,
            self_s,
            count,
        });
    }
    RankTree {
        rank,
        dropped,
        spans,
    }
}

/// Ships every rank's span tree (preorder, bounded to `max_depth` and
/// `max_spans` per rank) to rank 0. Collective over the whole world; rank 0
/// returns `Some(trees)` in rank order, every other rank returns `None`.
pub fn gather_span_trees(
    rank: &Rank,
    tag: u64,
    spans: &[SpanSnapshot],
    max_depth: usize,
    max_spans: usize,
) -> Result<Option<Vec<RankTree>>, CommError> {
    // Depth bound first (preorder keeps parents before children, and a
    // node's children are strictly deeper, so the prefix stays a forest).
    let kept: Vec<&SpanSnapshot> = spans
        .iter()
        .filter(|s| s.depth <= max_depth)
        .take(max_spans)
        .collect();
    let dropped = (spans.len() - kept.len()) as u64;
    let bounded: Vec<SpanSnapshot> = kept.into_iter().cloned().collect();
    let wire = encode_tree(dropped, &bounded);
    let gathered = gather::<u8>(rank, tag, 0, wire)?;
    Ok(gathered.map(|parts| {
        parts
            .into_iter()
            .enumerate()
            .map(|(r, bytes)| decode_tree(r, &bytes))
            .collect()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap3esm_comm::World;

    fn span(path: &str, total_s: f64, count: u64) -> SpanSnapshot {
        SpanSnapshot {
            path: path.to_string(),
            name: path.rsplit('/').next().unwrap().to_string(),
            depth: path.matches('/').count(),
            total_s,
            self_s: total_s,
            count,
        }
    }

    #[test]
    fn takes_max_across_ranks_and_computes_imbalance() {
        let world = World::new(4);
        let tables = world.run(|rank| {
            // Rank r spends (r+1) seconds in "work": mean 2.5, max 4.
            let spans = vec![span("work", (rank.id() + 1) as f64, 10)];
            aggregate_sections(rank, 0x0B50, &spans).unwrap()
        });
        for t in &tables {
            assert_eq!(t.len(), 1);
            let w = &t[0];
            assert_eq!(w.path, "work");
            assert_eq!(w.ranks, 4);
            assert_eq!(w.world, 4);
            assert_eq!(w.max_s, 4.0);
            assert_eq!(w.min_s, 1.0);
            assert!((w.mean_s - 2.5).abs() < 1e-12);
            assert!((w.imbalance - 1.6).abs() < 1e-12);
            assert_eq!(w.count, 10);
        }
        // Every rank computed the identical table.
        assert_eq!(tables[0], tables[3]);
    }

    #[test]
    fn sections_missing_on_some_ranks_read_as_world_imbalance() {
        let world = World::new(3);
        let tables = world.run(|rank| {
            // Only rank 0 runs the atmosphere; all ranks run the ocean. The
            // section also exists on ranks *other than 0* in real coupled
            // runs (ocean spans absent on rank 0): either way the table
            // must list it and flag the concentration, not report 1.0.
            let mut spans = vec![span("ocn_run", 2.0, 4)];
            if rank.id() == 0 {
                spans.push(span("atm_run", 6.0, 8));
            } else {
                spans.push(span("ocn_run/barotropic", 1.0, 2));
            }
            aggregate_sections(rank, 0x0B60, &spans).unwrap()
        });
        let t = &tables[1];
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].path, "atm_run"); // BTreeMap: sorted by path
        assert_eq!(t[0].ranks, 1);
        assert_eq!(t[0].world, 3);
        assert_eq!(t[0].mean_s, 6.0); // mean over participants is unchanged
        // World mean is 6/3 = 2 s, so one-rank-of-three reads as 3×.
        assert!((t[0].imbalance - 3.0).abs() < 1e-12);
        assert_eq!(t[1].path, "ocn_run");
        assert_eq!(t[1].ranks, 3);
        assert_eq!(t[1].imbalance, 1.0); // balanced sections still read 1.0
        // Present on ranks 1..3 but absent on rank 0: 1.0/(2/3) = 1.5×.
        assert_eq!(t[2].path, "ocn_run/barotropic");
        assert_eq!(t[2].ranks, 2);
        assert!((t[2].imbalance - 1.5).abs() < 1e-12);
    }

    #[test]
    fn gathers_every_ranks_tree_to_root_in_rank_order() {
        let world = World::new(3);
        let trees = world.run(|rank| {
            let spans = vec![
                span("top", (rank.id() + 1) as f64, 1),
                span("top/leaf", 0.5, 2),
            ];
            gather_span_trees(rank, 0x0B70, &spans, 16, 512).unwrap()
        });
        assert!(trees[1].is_none());
        assert!(trees[2].is_none());
        let trees = trees[0].as_ref().unwrap();
        assert_eq!(trees.len(), 3);
        for (r, t) in trees.iter().enumerate() {
            assert_eq!(t.rank, r);
            assert_eq!(t.dropped, 0);
            assert_eq!(t.spans.len(), 2);
            assert_eq!(t.spans[0].path, "top");
            assert_eq!(t.spans[0].total_s, (r + 1) as f64);
            assert_eq!(t.spans[1].path, "top/leaf");
            assert_eq!(t.spans[1].name, "leaf");
            assert_eq!(t.spans[1].depth, 1);
        }
    }

    #[test]
    fn tree_gather_bounds_depth_and_count() {
        let world = World::new(2);
        let trees = world.run(|rank| {
            let spans = vec![
                span("a", 3.0, 1),
                span("a/b", 2.0, 1),
                span("a/b/c", 1.0, 1), // over max_depth
                span("d", 1.0, 1),     // over max_spans after depth cut
            ];
            gather_span_trees(rank, 0x0B80, &spans, 1, 2).unwrap()
        });
        let trees = trees[0].as_ref().unwrap();
        let t = &trees[1];
        assert_eq!(t.dropped, 2);
        let paths: Vec<&str> = t.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["a", "a/b"]);
    }

    #[test]
    fn wire_roundtrip_preserves_paths_and_bits() {
        let spans = vec![span("a/b c", 0.1234567890123, 7), span("x", 0.0, 0)];
        let decoded = decode(&encode(&spans));
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].0, "a/b c");
        assert_eq!(decoded[0].1.to_bits(), 0.1234567890123f64.to_bits());
        assert_eq!(decoded[1], ("x".to_string(), 0.0, 0));
    }
}
