//! Rank-aware aggregation of span timings.
//!
//! §6.2: "Wall-clock time measurements are obtained using timers … with the
//! maximum value across all MPI ranks recorded to account for potential
//! load imbalance." [`aggregate_sections`] implements that rule on top of
//! the `ap3esm-comm` collectives — every rank contributes its local span
//! snapshot and every rank returns the same merged table of per-section
//! max/min/mean plus the load-imbalance ratio max/mean.

use std::collections::BTreeMap;

use ap3esm_comm::collectives::allgather;
use ap3esm_comm::{CommError, Rank};

use crate::span::SpanSnapshot;

/// Cross-rank statistics for one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct SectionStats {
    /// Slash-joined span path (e.g. `ocn_run/ocn_step/barotropic`).
    pub path: String,
    /// Paper rule: slowest rank's total for this section.
    pub max_s: f64,
    pub min_s: f64,
    /// Mean over the ranks that entered the section.
    pub mean_s: f64,
    /// Load-imbalance ratio max/mean (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// How many ranks entered the section.
    pub ranks: usize,
    /// Largest per-rank call count.
    pub count: u64,
}

// Wire encoding of one rank's sections: [u32 path len][path bytes]
// [f64 total bits][u64 count] per span, concatenated.
fn encode(spans: &[SpanSnapshot]) -> Vec<u8> {
    let mut out = Vec::new();
    for s in spans {
        out.extend_from_slice(&(s.path.len() as u32).to_le_bytes());
        out.extend_from_slice(s.path.as_bytes());
        out.extend_from_slice(&s.total_s.to_bits().to_le_bytes());
        out.extend_from_slice(&s.count.to_le_bytes());
    }
    out
}

fn decode(mut buf: &[u8]) -> Vec<(String, f64, u64)> {
    let mut out = Vec::new();
    while buf.len() >= 4 {
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        buf = &buf[4..];
        let path = String::from_utf8_lossy(&buf[..len]).into_owned();
        buf = &buf[len..];
        let total = f64::from_bits(u64::from_le_bytes(buf[..8].try_into().unwrap()));
        buf = &buf[8..];
        let count = u64::from_le_bytes(buf[..8].try_into().unwrap());
        buf = &buf[8..];
        out.push((path, total, count));
    }
    out
}

/// Merges every rank's span snapshot into per-section cross-rank stats;
/// collective over the whole world (every rank must call it), and every
/// rank returns the identical table, sorted by path.
pub fn aggregate_sections(
    rank: &Rank,
    tag: u64,
    spans: &[SpanSnapshot],
) -> Result<Vec<SectionStats>, CommError> {
    let mine = encode(spans);
    // Variable-length allgather: lengths first, then the concatenated bytes.
    let lens = allgather(rank, tag, vec![mine.len() as u64])?;
    let all = allgather(rank, tag + 1, mine)?;

    let mut merged: BTreeMap<String, SectionStats> = BTreeMap::new();
    let mut offset = 0usize;
    for &len in &lens {
        let len = len as usize;
        for (path, total, count) in decode(&all[offset..offset + len]) {
            let entry = merged.entry(path.clone()).or_insert(SectionStats {
                path,
                max_s: f64::NEG_INFINITY,
                min_s: f64::INFINITY,
                mean_s: 0.0, // holds the running sum until the final pass
                imbalance: 1.0,
                ranks: 0,
                count: 0,
            });
            entry.max_s = entry.max_s.max(total);
            entry.min_s = entry.min_s.min(total);
            entry.mean_s += total;
            entry.ranks += 1;
            entry.count = entry.count.max(count);
        }
        offset += len;
    }
    Ok(merged
        .into_values()
        .map(|mut s| {
            s.mean_s /= s.ranks as f64;
            s.imbalance = if s.mean_s > 0.0 { s.max_s / s.mean_s } else { 1.0 };
            s
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap3esm_comm::World;

    fn span(path: &str, total_s: f64, count: u64) -> SpanSnapshot {
        SpanSnapshot {
            path: path.to_string(),
            name: path.rsplit('/').next().unwrap().to_string(),
            depth: path.matches('/').count(),
            total_s,
            self_s: total_s,
            count,
        }
    }

    #[test]
    fn takes_max_across_ranks_and_computes_imbalance() {
        let world = World::new(4);
        let tables = world.run(|rank| {
            // Rank r spends (r+1) seconds in "work": mean 2.5, max 4.
            let spans = vec![span("work", (rank.id() + 1) as f64, 10)];
            aggregate_sections(rank, 0x0B50, &spans).unwrap()
        });
        for t in &tables {
            assert_eq!(t.len(), 1);
            let w = &t[0];
            assert_eq!(w.path, "work");
            assert_eq!(w.ranks, 4);
            assert_eq!(w.max_s, 4.0);
            assert_eq!(w.min_s, 1.0);
            assert!((w.mean_s - 2.5).abs() < 1e-12);
            assert!((w.imbalance - 1.6).abs() < 1e-12);
            assert_eq!(w.count, 10);
        }
        // Every rank computed the identical table.
        assert_eq!(tables[0], tables[3]);
    }

    #[test]
    fn sections_missing_on_some_ranks_average_over_participants() {
        let world = World::new(3);
        let tables = world.run(|rank| {
            // Only rank 0 runs the atmosphere; all ranks run the ocean.
            let mut spans = vec![span("ocn_run", 2.0, 4)];
            if rank.id() == 0 {
                spans.push(span("atm_run", 6.0, 8));
            }
            aggregate_sections(rank, 0x0B60, &spans).unwrap()
        });
        let t = &tables[1];
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].path, "atm_run"); // BTreeMap: sorted by path
        assert_eq!(t[0].ranks, 1);
        assert_eq!(t[0].mean_s, 6.0);
        assert_eq!(t[0].imbalance, 1.0);
        assert_eq!(t[1].path, "ocn_run");
        assert_eq!(t[1].ranks, 3);
        assert_eq!(t[1].imbalance, 1.0);
    }

    #[test]
    fn wire_roundtrip_preserves_paths_and_bits() {
        let spans = vec![span("a/b c", 0.1234567890123, 7), span("x", 0.0, 0)];
        let decoded = decode(&encode(&spans));
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].0, "a/b c");
        assert_eq!(decoded[0].1.to_bits(), 0.1234567890123f64.to_bits());
        assert_eq!(decoded[1], ("x".to_string(), 0.0, 0));
    }
}
