//! Black-box flight recorder and cross-rank postmortem analyzer.
//!
//! The paper's year-scale runs live or die by diagnosing rare failures at
//! scale: after a multi-hour run collapses, the question is *which rank
//! stalled first and why*. This module is the forensic layer:
//!
//! * [`FlightRecorder`] — an always-on, bounded, last-writer-wins journal:
//!   one ring of structured [`FrEvent`]s per rank (health transitions,
//!   alert firings, recovery/shrink actions, checkpoint begin/commit,
//!   serve ticket lifecycle), timestamped on the same
//!   [`trace_epoch`](ap3esm_comm::events::trace_epoch) the comm-event
//!   timeline uses. Recording when disabled costs one relaxed atomic
//!   load; when the ring is full the oldest events are evicted, so what
//!   survives a crash is the tail — the part a postmortem needs.
//! * [`dump_bundle`] — on panic, `Deadlock`, shrink, `RecoveryFailure`,
//!   or chaos-scenario violation, the driver writes a self-contained
//!   diagnostics bundle to `target/obs/bundle-<name>/`: every rank's
//!   journal tail merged with the comm timeline (`journal.json`), the
//!   current tsdb snapshot, fired alerts, `BuildInfo`, the active fault
//!   plan/scenario, and the Chrome trace.
//! * [`analyze`] — the postmortem: merges the journals on the shared
//!   trace clock into a causally-ordered cross-rank timeline, finds the
//!   first-stalled rank (the rank whose activity ends earliest — the
//!   silence the rest of the world then times out against), matches
//!   unpaired sends to missing receives per FIFO channel, and renders a
//!   blame report as JSON ([`Postmortem::to_json`]) and a human table
//!   ([`Postmortem::render_table`]).
//!
//! The recorder deliberately does **not** own the comm half of the
//! journal: `comm` cannot depend on `obs`, so send/recv/timeout/stale
//! events live in [`CommEventLog`](ap3esm_comm::events::CommEventLog) and
//! the two halves are merged at dump time, where both sides' shared
//! trace clock makes the interleave causally meaningful.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use ap3esm_comm::events::{trace_now_us, CommEvent, CommEventLog};

use crate::alert::AlertEvent;
use crate::json::Json;
use crate::msgflow::{pair_fifo, FlowEvent, FlowKind};
use crate::perf::BuildInfo;
use crate::report::alert_event_json;

/// What a flight-recorder event records. Comm-level kinds (send, recv,
/// timeout, stale) are *not* duplicated here — they come from the
/// [`CommEventLog`] half of the journal at dump time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrKind {
    /// A health-agreement verdict (`a` = severity code: 0 healthy,
    /// 1 degraded, 2 fatal).
    Health,
    /// An alert rule fired (detail names the rule).
    Alert,
    /// A recovery action: rollback begun (`a` = rollback count so far).
    Recovery,
    /// The world shrank (`a` = new generation, `b` = surviving rank count).
    Shrink,
    /// Checkpoint write begun (`a` = checkpoint id).
    CkptBegin,
    /// Checkpoint committed and agreed (`a` = checkpoint id).
    CkptCommit,
    /// An injected or detected fault (detail carries the record).
    Fault,
    /// Serve: a ticket entered the system (`a` = ticket/job id).
    ServeSubmit,
    /// Serve: a ticket completed (`a` = ticket/job id).
    ServeDone,
    /// Serve: a ticket was shed by admission control (`a` = ticket id).
    ServeShed,
    /// Free-form milestone marker (run start, scenario boundary, …).
    Mark,
}

impl FrKind {
    /// Stable lower-case label used in `journal.json`.
    pub fn label(&self) -> &'static str {
        match self {
            FrKind::Health => "health",
            FrKind::Alert => "alert",
            FrKind::Recovery => "recovery",
            FrKind::Shrink => "shrink",
            FrKind::CkptBegin => "ckpt.begin",
            FrKind::CkptCommit => "ckpt.commit",
            FrKind::Fault => "fault",
            FrKind::ServeSubmit => "serve.submit",
            FrKind::ServeDone => "serve.done",
            FrKind::ServeShed => "serve.shed",
            FrKind::Mark => "mark",
        }
    }
}

/// One journal entry on a rank's flight-recorder ring.
#[derive(Debug, Clone, PartialEq)]
pub struct FrEvent {
    /// Microseconds since the shared trace epoch.
    pub ts_us: u64,
    pub kind: FrKind,
    /// Kind-specific payload (see [`FrKind`] variants).
    pub a: u64,
    pub b: u64,
    /// Short human-readable context (empty when the kind says it all).
    pub detail: String,
}

/// Default per-rank journal capacity (events). Small enough that an
/// always-on recorder is memory-trivial, large enough that the failure
/// window of interest survives eviction.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4_096;

/// Always-on bounded per-rank journal of structured [`FrEvent`]s.
///
/// Mirrors the comm layer's [`CommEventLog`] discipline: an `AtomicBool`
/// gate read with one relaxed load on every record call, per-rank rings
/// under independent mutexes (ranks are threads; each writes its own
/// ring, so contention is nil in steady state), oldest-evicted when full
/// with per-rank eviction counters.
pub struct FlightRecorder {
    enabled: AtomicBool,
    capacity: usize,
    rings: Vec<Mutex<VecDeque<FrEvent>>>,
    dropped: Vec<AtomicU64>,
}

impl FlightRecorder {
    /// A recorder for `n_ranks` journals, enabled from birth (the whole
    /// point is to already be on when the failure happens).
    pub fn new(n_ranks: usize, capacity: usize) -> Self {
        FlightRecorder {
            enabled: AtomicBool::new(true),
            capacity: capacity.max(1),
            rings: (0..n_ranks).map(|_| Mutex::new(VecDeque::new())).collect(),
            dropped: (0..n_ranks).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// The hot-path gate: one relaxed load.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn n_ranks(&self) -> usize {
        self.rings.len()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record an event on `rank`'s journal, stamped with the shared trace
    /// clock. A no-op (one relaxed load) when the recorder is disabled.
    pub fn record(&self, rank: usize, kind: FrKind, a: u64, b: u64, detail: &str) {
        if !self.is_enabled() {
            return;
        }
        let event = FrEvent {
            ts_us: trace_now_us(),
            kind,
            a,
            b,
            detail: detail.to_string(),
        };
        let mut ring = lock(&self.rings[rank]);
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped[rank].fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Clone `rank`'s retained journal tail (oldest first) plus the
    /// eviction count, without draining — a bundle dump must not steal
    /// events from a later dump of the same run.
    pub fn snapshot(&self, rank: usize) -> (Vec<FrEvent>, u64) {
        let ring = lock(&self.rings[rank]);
        (
            ring.iter().cloned().collect(),
            self.dropped[rank].load(Ordering::Relaxed),
        )
    }

    /// Events currently journaled for `rank` (test/diagnostic helper).
    pub fn len(&self, rank: usize) -> usize {
        lock(&self.rings[rank]).len()
    }

    pub fn is_empty(&self, rank: usize) -> bool {
        self.len(rank) == 0
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

// --- diagnostics bundle -------------------------------------------------

/// Everything a bundle dump can attach. All fields are optional except
/// the name and reason: a postmortem of a half-dead world must be able to
/// dump whatever rank 0 can still reach.
#[derive(Default)]
pub struct BundleSpec<'a> {
    /// Human reason the bundle exists ("deadlock", "shrink",
    /// "recovery-failure", "panic", "scenario-violation", …).
    pub reason: &'a str,
    /// The obs half of the journal.
    pub recorder: Option<&'a FlightRecorder>,
    /// The comm half of the journal (snapshot, not drained).
    pub comm_events: Option<&'a CommEventLog>,
    /// Current tsdb snapshot (`ap3esm-tsdb/1` JSON text).
    pub series_json: Option<String>,
    /// Alerts fired so far.
    pub alerts: &'a [AlertEvent],
    /// The active fault plan, rendered (`FaultPlan` Display).
    pub fault_plan: Option<String>,
    /// The active campaign scenario (name / expectation / plan).
    pub scenario: Option<String>,
    /// A rendered Chrome trace JSON document.
    pub trace_json: Option<String>,
}

/// Write a self-contained diagnostics bundle to `dir/bundle-<name>/`.
/// Returns the bundle directory. Existing files are overwritten —
/// last-writer-wins, like the recorder itself.
pub fn dump_bundle_to(
    dir: impl AsRef<Path>,
    name: &str,
    spec: &BundleSpec,
) -> std::io::Result<PathBuf> {
    let bundle = dir.as_ref().join(format!("bundle-{name}"));
    std::fs::create_dir_all(&bundle)?;
    // Normalise `crates/obs/../../target`-style default paths so reports
    // and CI logs carry a clean, clickable bundle location.
    let bundle = bundle.canonicalize().unwrap_or(bundle);

    let journal = merge_journal(spec.recorder, spec.comm_events);
    let n_ranks = spec
        .recorder
        .map(|r| r.n_ranks())
        .or(spec.comm_events.map(|c| c.n_ranks()))
        .unwrap_or(0);

    let mut files: Vec<&str> = vec!["manifest.json", "journal.json", "alerts.json"];

    // journal.json — the merged cross-rank timeline, sorted on the shared
    // trace clock so the interleave is causally ordered.
    let mut jdoc = Json::obj();
    jdoc.set("schema", "ap3esm-journal/1".into())
        .set("ranks", n_ranks.into())
        .set(
            "events",
            Json::Arr(journal.iter().map(journal_row_json).collect()),
        );
    std::fs::write(bundle.join("journal.json"), jdoc.to_string() + "\n")?;

    // alerts.json — always written (an empty array is itself a finding).
    let alerts = Json::Arr(spec.alerts.iter().map(alert_event_json).collect());
    std::fs::write(bundle.join("alerts.json"), alerts.to_string() + "\n")?;

    if let Some(series) = &spec.series_json {
        std::fs::write(bundle.join("series.json"), series)?;
        files.push("series.json");
    }
    if let Some(plan) = &spec.fault_plan {
        std::fs::write(bundle.join("faultplan.txt"), plan)?;
        files.push("faultplan.txt");
    }
    if let Some(scenario) = &spec.scenario {
        std::fs::write(bundle.join("scenario.txt"), scenario)?;
        files.push("scenario.txt");
    }
    if let Some(trace) = &spec.trace_json {
        std::fs::write(bundle.join("trace.json"), trace)?;
        files.push("trace.json");
    }

    // manifest.json last: it indexes what was actually written.
    let mut manifest = Json::obj();
    manifest
        .set("schema", "ap3esm-bundle/1".into())
        .set("name", name.into())
        .set("reason", spec.reason.into())
        .set("ranks", n_ranks.into())
        .set("events", journal.len().into())
        .set("build", BuildInfo::current().to_json())
        .set(
            "files",
            Json::Arr(files.iter().map(|f| Json::Str(f.to_string())).collect()),
        );
    std::fs::write(bundle.join("manifest.json"), manifest.to_string() + "\n")?;
    Ok(bundle)
}

/// [`dump_bundle_to`] into the workspace default sink, `target/obs/`.
pub fn dump_bundle(name: &str, spec: &BundleSpec) -> std::io::Result<PathBuf> {
    dump_bundle_to(crate::report::default_dir(), name, spec)
}

/// One merged journal row: either half of the journal normalised to a
/// single shape so the analyzer (and a human with `jq`) reads one stream.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRow {
    pub rank: usize,
    pub ts_us: u64,
    pub dur_us: u64,
    /// Kind label: `send`/`recv`/`timeout`/`stale` from the comm half,
    /// [`FrKind::label`] values from the recorder half.
    pub kind: String,
    /// Peer rank for comm rows; kind-specific `a` for recorder rows.
    pub peer: u64,
    /// Message tag for comm rows; kind-specific `b` for recorder rows.
    pub tag: u64,
    /// Payload bytes (sends/recvs), dropped-message count (stale), 0 else.
    pub n: u64,
    pub detail: String,
}

fn merge_journal(
    recorder: Option<&FlightRecorder>,
    comm: Option<&CommEventLog>,
) -> Vec<JournalRow> {
    let mut rows = Vec::new();
    if let Some(rec) = recorder {
        for rank in 0..rec.n_ranks() {
            let (events, _) = rec.snapshot(rank);
            for e in events {
                rows.push(JournalRow {
                    rank,
                    ts_us: e.ts_us,
                    dur_us: 0,
                    kind: e.kind.label().to_string(),
                    peer: e.a,
                    tag: e.b,
                    n: 0,
                    detail: e.detail,
                });
            }
        }
    }
    if let Some(log) = comm {
        for rank in 0..log.n_ranks() {
            let (events, _) = log.snapshot(rank);
            for e in events {
                rows.push(comm_row(rank, &e));
            }
        }
    }
    // Stable sort: equal timestamps keep rank-major insertion order.
    rows.sort_by_key(|r| r.ts_us);
    rows
}

fn comm_row(rank: usize, e: &CommEvent) -> JournalRow {
    JournalRow {
        rank,
        ts_us: e.ts_us,
        dur_us: e.dur_us,
        kind: e.kind.label().to_string(),
        peer: e.peer as u64,
        tag: e.tag,
        n: e.bytes,
        detail: String::new(),
    }
}

fn journal_row_json(r: &JournalRow) -> Json {
    let mut o = Json::obj();
    o.set("rank", r.rank.into())
        .set("ts_us", r.ts_us.into())
        .set("dur_us", r.dur_us.into())
        .set("kind", r.kind.as_str().into())
        .set("peer", r.peer.into())
        .set("tag", r.tag.into())
        .set("n", r.n.into())
        .set("detail", r.detail.as_str().into());
    o
}

// --- postmortem analyzer ------------------------------------------------

/// Per-rank activity envelope on the merged timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct RankActivity {
    pub rank: usize,
    pub events: usize,
    pub first_us: u64,
    /// End of the rank's last activity (`ts + dur` of its final event);
    /// 0 when the rank journaled nothing at all.
    pub last_us: u64,
    /// The rank's final journal row, for the blame table.
    pub last_event: Option<JournalRow>,
}

/// A send with no matching receive on its FIFO channel (the shared
/// pairing's leftover tail — see [`crate::msgflow::pair_fifo`]).
pub use crate::msgflow::UnpairedSend;

/// A blocking receive that timed out into a `Deadlock`.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeoutRecord {
    pub rank: usize,
    pub peer: usize,
    pub tag: u64,
    pub ts_us: u64,
    pub dur_us: u64,
}

/// The analyzer's verdict over one diagnostics bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct Postmortem {
    pub bundle: PathBuf,
    pub reason: String,
    pub n_ranks: usize,
    pub total_events: usize,
    /// Ranks sorted by rank id.
    pub ranks: Vec<RankActivity>,
    /// The first-stalled rank: the rank whose activity ends earliest
    /// (including never-started). `None` only for an empty journal.
    pub blamed: Option<usize>,
    /// How long the rest of the world kept going after the blamed rank
    /// went silent — the gap the deadlock timeouts then measure.
    pub silence_gap_us: u64,
    /// Sends that never met a receive, missing-receiver side first.
    pub unpaired_sends: Vec<UnpairedSend>,
    pub timeouts: Vec<TimeoutRecord>,
}

/// Analyze a bundle directory written by [`dump_bundle_to`]: parse
/// `journal.json` (and `manifest.json` for the reason), merge the
/// timeline, and derive blame.
pub fn analyze(bundle_dir: impl AsRef<Path>) -> Result<Postmortem, String> {
    let bundle = bundle_dir.as_ref();
    let journal_text = std::fs::read_to_string(bundle.join("journal.json"))
        .map_err(|e| format!("read {}/journal.json: {e}", bundle.display()))?;
    let jdoc = Json::parse(&journal_text)?;
    let schema = jdoc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "ap3esm-journal/1" {
        return Err(format!("unsupported journal schema {schema:?}"));
    }
    let n_ranks = jdoc
        .get("ranks")
        .and_then(Json::as_u64)
        .ok_or("journal missing ranks")? as usize;
    let rows: Vec<JournalRow> = jdoc
        .get("events")
        .and_then(Json::as_arr)
        .ok_or("journal missing events")?
        .iter()
        .map(parse_row)
        .collect::<Result<_, _>>()?;

    let reason = std::fs::read_to_string(bundle.join("manifest.json"))
        .ok()
        .and_then(|t| Json::parse(&t).ok())
        .and_then(|m| m.get("reason").and_then(Json::as_str).map(str::to_string))
        .unwrap_or_default();

    Ok(analyze_rows(bundle.to_path_buf(), reason, n_ranks, rows))
}

fn parse_row(v: &Json) -> Result<JournalRow, String> {
    let u = |k: &str| v.get(k).and_then(Json::as_u64).ok_or(format!("row missing {k}"));
    Ok(JournalRow {
        rank: u("rank")? as usize,
        ts_us: u("ts_us")?,
        dur_us: u("dur_us")?,
        kind: v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("row missing kind")?
            .to_string(),
        peer: u("peer")?,
        tag: u("tag")?,
        n: u("n")?,
        detail: v
            .get("detail")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string(),
    })
}

/// The pure core of [`analyze`], separated so tests and in-process
/// callers can run it on rows they already hold.
pub fn analyze_rows(
    bundle: PathBuf,
    reason: String,
    n_ranks: usize,
    rows: Vec<JournalRow>,
) -> Postmortem {
    // Per-rank envelopes. A rank with no events keeps last_us = 0: total
    // silence sorts first, which is exactly the right blame order.
    let mut ranks: Vec<RankActivity> = (0..n_ranks)
        .map(|rank| RankActivity {
            rank,
            events: 0,
            first_us: 0,
            last_us: 0,
            last_event: None,
        })
        .collect();
    for row in &rows {
        if row.rank >= ranks.len() {
            ranks.resize_with(row.rank + 1, || RankActivity {
                rank: 0,
                events: 0,
                first_us: 0,
                last_us: 0,
                last_event: None,
            });
            for (i, r) in ranks.iter_mut().enumerate() {
                r.rank = i;
            }
        }
        let r = &mut ranks[row.rank];
        let end = row.ts_us + row.dur_us;
        if r.events == 0 {
            r.first_us = row.ts_us;
        }
        r.events += 1;
        if end >= r.last_us {
            r.last_us = end;
            r.last_event = Some(row.clone());
        }
    }

    // Blame: the rank that went silent first. Ties keep the lowest rank.
    let blamed = ranks.iter().min_by_key(|r| r.last_us).map(|r| r.rank);
    let global_last = ranks.iter().map(|r| r.last_us).max().unwrap_or(0);
    let silence_gap_us = blamed
        .map(|b| global_last.saturating_sub(ranks[b].last_us))
        .unwrap_or(0);

    // FIFO channel pairing: the k-th send on (src, dst, tag) matches the
    // k-th recv on the same channel; the excess tail of sends is unpaired.
    // The pairing itself is the shared msgflow implementation, so the
    // postmortem and the chrome-trace flow arrows can never disagree.
    let mut flow_events = Vec::new();
    let mut timeouts = Vec::new();
    for row in &rows {
        match row.kind.as_str() {
            "send" => flow_events.push(FlowEvent {
                rank: row.rank,
                kind: FlowKind::Send,
                ts_us: row.ts_us,
                dur_us: row.dur_us,
                peer: row.peer as usize,
                tag: row.tag,
                bytes: row.n,
            }),
            "recv" => flow_events.push(FlowEvent {
                rank: row.rank,
                kind: FlowKind::Recv,
                ts_us: row.ts_us,
                dur_us: row.dur_us,
                peer: row.peer as usize,
                tag: row.tag,
                bytes: row.n,
            }),
            "timeout" => timeouts.push(TimeoutRecord {
                rank: row.rank,
                peer: row.peer as usize,
                tag: row.tag,
                ts_us: row.ts_us,
                dur_us: row.dur_us,
            }),
            _ => {}
        }
    }
    let mut unpaired_sends = pair_fifo(&flow_events).unpaired_sends;
    // Sends into (or out of) the blamed rank first — those are the
    // messages the silence orphaned — then chronological.
    unpaired_sends.sort_by_key(|u| {
        let involves_blamed = Some(u.dst) == blamed || Some(u.src) == blamed;
        (!involves_blamed, u.ts_us)
    });

    Postmortem {
        bundle,
        reason,
        n_ranks: ranks.len(),
        total_events: rows.len(),
        ranks,
        blamed,
        silence_gap_us,
        unpaired_sends,
        timeouts,
    }
}

impl Postmortem {
    /// Machine-readable blame report (`ap3esm-postmortem/1`).
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("schema", "ap3esm-postmortem/1".into())
            .set("bundle", self.bundle.display().to_string().as_str().into())
            .set("reason", self.reason.as_str().into())
            .set("ranks", self.n_ranks.into())
            .set("events", self.total_events.into());
        match self.blamed {
            Some(b) => o.set("blamed_rank", b.into()),
            None => o.set("blamed_rank", Json::Null),
        };
        o.set("silence_gap_us", self.silence_gap_us.into());
        o.set(
            "rank_activity",
            Json::Arr(
                self.ranks
                    .iter()
                    .map(|r| {
                        let mut ro = Json::obj();
                        ro.set("rank", r.rank.into())
                            .set("events", r.events.into())
                            .set("first_us", r.first_us.into())
                            .set("last_us", r.last_us.into());
                        match &r.last_event {
                            Some(e) => ro.set("last_event", journal_row_json(e)),
                            None => ro.set("last_event", Json::Null),
                        };
                        ro
                    })
                    .collect(),
            ),
        );
        o.set(
            "unpaired_sends",
            Json::Arr(
                self.unpaired_sends
                    .iter()
                    .map(|u| {
                        let mut uo = Json::obj();
                        uo.set("src", u.src.into())
                            .set("dst", u.dst.into())
                            .set("tag", u.tag.into())
                            .set("ts_us", u.ts_us.into());
                        uo
                    })
                    .collect(),
            ),
        );
        o.set(
            "timeouts",
            Json::Arr(
                self.timeouts
                    .iter()
                    .map(|t| {
                        let mut to = Json::obj();
                        to.set("rank", t.rank.into())
                            .set("peer", t.peer.into())
                            .set("tag", t.tag.into())
                            .set("ts_us", t.ts_us.into())
                            .set("dur_us", t.dur_us.into());
                        to
                    })
                    .collect(),
            ),
        );
        o
    }

    /// Human-readable blame table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "postmortem: {}\nreason: {}\n",
            self.bundle.display(),
            if self.reason.is_empty() { "(unknown)" } else { &self.reason }
        ));
        match self.blamed {
            Some(b) => out.push_str(&format!(
                "blamed rank: {b} (first stalled; world ran {:.1} ms past its last event)\n",
                self.silence_gap_us as f64 / 1_000.0
            )),
            None => out.push_str("blamed rank: none (empty journal)\n"),
        }
        out.push_str("\nrank  events  first_us    last_us     last event\n");
        for r in &self.ranks {
            let last = match &r.last_event {
                Some(e) => {
                    let mut s = format!("{} peer={} tag={:#x}", e.kind, e.peer, e.tag);
                    if !e.detail.is_empty() {
                        s.push_str(&format!(" — {}", e.detail));
                    }
                    s
                }
                None => "(silent — no events journaled)".to_string(),
            };
            let mark = if Some(r.rank) == self.blamed { "*" } else { " " };
            out.push_str(&format!(
                "{mark}{:<4} {:>7} {:>10} {:>10}  {last}\n",
                r.rank, r.events, r.first_us, r.last_us
            ));
        }
        if !self.unpaired_sends.is_empty() {
            out.push_str(&format!(
                "\nunpaired sends ({} total; never received):\n",
                self.unpaired_sends.len()
            ));
            for u in self.unpaired_sends.iter().take(16) {
                out.push_str(&format!(
                    "  rank {} -> rank {}  tag {:#x}  at {} us\n",
                    u.src, u.dst, u.tag, u.ts_us
                ));
            }
            if self.unpaired_sends.len() > 16 {
                out.push_str(&format!(
                    "  … and {} more\n",
                    self.unpaired_sends.len() - 16
                ));
            }
        }
        if !self.timeouts.is_empty() {
            out.push_str(&format!("\nreceive timeouts ({}):\n", self.timeouts.len()));
            for t in self.timeouts.iter().take(16) {
                out.push_str(&format!(
                    "  rank {} waited {:.1} ms on rank {} tag {:#x}\n",
                    t.rank,
                    t.dur_us as f64 / 1_000.0,
                    t.peer,
                    t.tag
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap3esm_comm::events::{CommEvent, CommEventKind};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ap3esm-flightrec-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn recorder_is_bounded_and_counts_evictions() {
        let rec = FlightRecorder::new(1, 3);
        for i in 0..5u64 {
            rec.record(0, FrKind::Mark, i, 0, "");
        }
        let (events, dropped) = rec.snapshot(0);
        assert_eq!(events.len(), 3);
        assert_eq!(dropped, 2);
        let ids: Vec<u64> = events.iter().map(|e| e.a).collect();
        assert_eq!(ids, vec![2, 3, 4], "oldest evicted, tail kept");
        // Snapshot does not drain.
        assert_eq!(rec.len(0), 3);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = FlightRecorder::new(2, 8);
        rec.set_enabled(false);
        rec.record(0, FrKind::Health, 2, 0, "fatal");
        rec.record(1, FrKind::Alert, 0, 0, "sypd-collapse");
        assert!(rec.is_empty(0));
        assert!(rec.is_empty(1));
    }

    #[test]
    fn blame_names_the_first_silent_rank_and_unpaired_sends() {
        // Rank 1 stops at t=100; ranks 0 and 2 keep going to t=900. Rank 0
        // sent rank 1 two messages of which one was never received, and
        // timed out waiting on rank 1.
        let rows = vec![
            JournalRow { rank: 0, ts_us: 10, dur_us: 0, kind: "send".into(), peer: 1, tag: 7, n: 64, detail: String::new() },
            JournalRow { rank: 1, ts_us: 20, dur_us: 30, kind: "recv".into(), peer: 0, tag: 7, n: 64, detail: String::new() },
            JournalRow { rank: 1, ts_us: 100, dur_us: 0, kind: "ckpt.begin".into(), peer: 1, tag: 0, n: 0, detail: String::new() },
            JournalRow { rank: 0, ts_us: 200, dur_us: 0, kind: "send".into(), peer: 1, tag: 7, n: 64, detail: String::new() },
            JournalRow { rank: 2, ts_us: 300, dur_us: 50, kind: "recv".into(), peer: 0, tag: 9, n: 8, detail: String::new() },
            JournalRow { rank: 0, ts_us: 250, dur_us: 0, kind: "send".into(), peer: 2, tag: 9, n: 8, detail: String::new() },
            JournalRow { rank: 0, ts_us: 400, dur_us: 500, kind: "timeout".into(), peer: 1, tag: 7, n: 0, detail: String::new() },
            JournalRow { rank: 2, ts_us: 880, dur_us: 20, kind: "mark".into(), peer: 0, tag: 0, n: 0, detail: "tail".into() },
        ];
        let pm = analyze_rows(PathBuf::from("x"), "test".into(), 3, rows);
        assert_eq!(pm.blamed, Some(1));
        assert_eq!(pm.ranks[1].last_us, 100);
        assert_eq!(pm.silence_gap_us, 900 - 100);
        assert_eq!(pm.unpaired_sends.len(), 1);
        assert_eq!(pm.unpaired_sends[0].src, 0);
        assert_eq!(pm.unpaired_sends[0].dst, 1);
        assert_eq!(pm.unpaired_sends[0].tag, 7);
        assert_eq!(pm.timeouts.len(), 1);
        assert_eq!(pm.timeouts[0].peer, 1);
    }

    #[test]
    fn silent_rank_outranks_slow_rank_in_blame() {
        // Rank 1 never journaled anything: maximal suspicion.
        let rows = vec![
            JournalRow { rank: 0, ts_us: 10, dur_us: 0, kind: "mark".into(), peer: 0, tag: 0, n: 0, detail: String::new() },
            JournalRow { rank: 2, ts_us: 15, dur_us: 0, kind: "mark".into(), peer: 0, tag: 0, n: 0, detail: String::new() },
        ];
        let pm = analyze_rows(PathBuf::from("x"), String::new(), 3, rows);
        assert_eq!(pm.blamed, Some(1));
        assert!(pm.ranks[1].last_event.is_none());
    }

    #[test]
    fn bundle_roundtrips_through_the_analyzer() {
        let dir = tmpdir("roundtrip");
        let rec = FlightRecorder::new(3, 64);
        let comm = CommEventLog::new(3, 64);
        comm.set_enabled(true);

        // Synthetic history on the real trace clock: rank 1 dies after one
        // recv; ranks 0/2 continue and rank 0 times out on rank 1.
        let t0 = trace_now_us();
        comm.record(0, CommEvent { kind: CommEventKind::Send, ts_us: t0 + 1, dur_us: 0, peer: 1, tag: 42, bytes: 800 });
        comm.record(1, CommEvent { kind: CommEventKind::Recv, ts_us: t0 + 2, dur_us: 1, peer: 0, tag: 42, bytes: 800 });
        rec.record(1, FrKind::CkptBegin, 1, 0, "");
        comm.record(0, CommEvent { kind: CommEventKind::Send, ts_us: t0 + 500, dur_us: 0, peer: 1, tag: 42, bytes: 800 });
        comm.record(0, CommEvent { kind: CommEventKind::Timeout, ts_us: t0 + 600, dur_us: 900, peer: 1, tag: 42, bytes: 0 });
        rec.record(0, FrKind::Recovery, 1, 0, "rollback 1");
        rec.record(2, FrKind::Mark, 0, 0, "still alive");
        comm.record(2, CommEvent { kind: CommEventKind::Recv, ts_us: t0 + 2_000, dur_us: 10, peer: 0, tag: 9, bytes: 8 });
        comm.record(0, CommEvent { kind: CommEventKind::Send, ts_us: t0 + 1_990, dur_us: 0, peer: 2, tag: 9, bytes: 8 });

        let spec = BundleSpec {
            reason: "deadlock",
            recorder: Some(&rec),
            comm_events: Some(&comm),
            series_json: Some("{\"schema\":\"ap3esm-tsdb/1\",\"series\":[]}".to_string()),
            fault_plan: Some("die rank=1 step=1\n".to_string()),
            ..Default::default()
        };
        let bundle = dump_bundle_to(&dir, "unit", &spec).unwrap();
        assert!(bundle.ends_with("bundle-unit"));
        for f in ["manifest.json", "journal.json", "alerts.json", "series.json", "faultplan.txt"] {
            assert!(bundle.join(f).is_file(), "bundle missing {f}");
        }

        let pm = analyze(&bundle).unwrap();
        assert_eq!(pm.reason, "deadlock");
        assert_eq!(pm.n_ranks, 3);
        assert_eq!(pm.blamed, Some(1), "rank 1 stalled first: {}", pm.render_table());
        assert_eq!(pm.unpaired_sends.len(), 1);
        assert_eq!((pm.unpaired_sends[0].src, pm.unpaired_sends[0].dst), (0, 1));
        assert_eq!(pm.timeouts.len(), 1);

        // JSON form round-trips through the parser with the right schema.
        let text = pm.to_json().to_string();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some("ap3esm-postmortem/1"));
        assert_eq!(doc.get("blamed_rank").and_then(Json::as_u64), Some(1));
        // The table names the blamed rank and the orphaned channel.
        let table = pm.render_table();
        assert!(table.contains("blamed rank: 1"));
        assert!(table.contains("rank 0 -> rank 1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_tolerates_a_minimal_spec() {
        // A panic handler may have almost nothing: name + reason only.
        let dir = tmpdir("minimal");
        let spec = BundleSpec { reason: "panic", ..Default::default() };
        let bundle = dump_bundle_to(&dir, "bare", &spec).unwrap();
        let pm = analyze(&bundle).unwrap();
        assert_eq!(pm.blamed, None);
        assert_eq!(pm.total_events, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
