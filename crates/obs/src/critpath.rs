//! Critical-path analyzer: where did the coupled run's wall clock go?
//!
//! Replays each rank's span timeline plus the `CommEventLog` send/recv
//! rings into the cross-rank *program-activity graph*, then answers the
//! three questions `BENCH_*.json` alone cannot:
//!
//! 1. **What is on the critical path?** A backward walk from the last
//!    rank to finish: busy segments are walked on-rank, and each blocking
//!    receive either stays on-rank (the message was already late-*received*)
//!    or jumps along the message edge to the sender (late-*sender* — the
//!    wait was the sender's fault, so the path continues there). Every
//!    on-path microsecond lands in exactly one of {compute, comm, wait},
//!    so the three fractions sum to 1.
//! 2. **Why did ranks wait?** Every blocking receive is classified
//!    Scalasca-style: late-sender (blame the source), late-receiver
//!    (arrival/progress lag on the destination), wait-at-collective
//!    (reserved wire tags — barrier/allreduce legs), deadlock timeout, or
//!    orphaned wait, each attributed to a rank and the enclosing
//!    top-level section.
//! 3. **What would a speedup buy?** [`Analyzer::what_if`] shrinks a named
//!    section's busy time by a factor and *re-solves* the graph forward
//!    (message joins move with their senders), reporting the projected
//!    makespan and SYPD gain against the same solver's factor-1.0
//!    baseline, so model error cancels in the ratio.
//!
//! Message pairing is the shared [`crate::msgflow`] FIFO implementation —
//! the same one the chrome-trace flow arrows and the flight-recorder
//! postmortem use — and traffic is costed against the
//! [`ap3esm-machine`](ap3esm_machine) α–β network model for the
//! per-section compute-vs-bandwidth-vs-latency verdict.
//!
//! Works end-of-run (the coupled driver feeds drained rings directly) and
//! offline ([`Analyzer::from_chrome_trace`] rebuilds the timelines from a
//! `trace-<name>.json`, whose comm rows carry machine-readable `args`).

use std::collections::{BTreeMap, VecDeque};

use ap3esm_comm::events::{CommEvent, CommEventKind};
use ap3esm_comm::{collective_kind, is_collective_tag};
use ap3esm_machine::{section_bound, MachineSpec};

use crate::json::Json;
use crate::msgflow::{pair_fifo, FlowEvent, PairedMessage};
use crate::trace::{TraceEvent, TracePhase};

/// Schema tag of [`Analysis::to_json`].
pub const SCHEMA: &str = "ap3esm-critpath/1";

/// Section label for busy time not covered by any top-level span.
pub const UNTRACKED: &str = "(untracked)";

/// One rank's raw material: its span/instant events (from the trace sink)
/// and its comm-event ring, both on the shared trace-epoch clock.
#[derive(Debug, Clone, Default)]
pub struct RankTimeline {
    pub rank: usize,
    pub spans: Vec<TraceEvent>,
    pub comms: Vec<CommEvent>,
}

/// Scalasca-style class of one blocking wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WaitClass {
    /// The matching send was posted after the receiver already blocked —
    /// the wait is the *sender's* fault.
    LateSender,
    /// The send was already posted when the receive began; the residual
    /// wait is arrival/progress lag on the receiving side.
    LateReceiver,
    /// The wait sits on a reserved collective wire tag (barrier, gather or
    /// bcast leg of an allreduce, …) — the rank is parked at a
    /// synchronisation point.
    Collective,
    /// The wait exhausted the deadlock deadline and never completed.
    Timeout,
    /// No send was recorded for this receive inside the trace window
    /// (ring eviction or a genuinely missing message).
    Orphan,
}

impl WaitClass {
    pub fn label(&self) -> &'static str {
        match self {
            WaitClass::LateSender => "late-sender",
            WaitClass::LateReceiver => "late-receiver",
            WaitClass::Collective => "collective",
            WaitClass::Timeout => "timeout",
            WaitClass::Orphan => "orphan",
        }
    }
}

/// What one critical-path step is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// The rank was executing (attributed to a top-level section).
    Compute,
    /// The path rides a message edge from its send to its delivery.
    Comm,
    /// The rank idled on-path (the wait itself is the bottleneck).
    Wait(WaitClass),
}

/// One contiguous step of the critical path (chronological after
/// [`Analyzer::analyze`] returns).
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    pub rank: usize,
    pub kind: StepKind,
    pub ts_us: u64,
    pub dur_us: u64,
    /// Covering top-level section ([`UNTRACKED`] when none); for comm
    /// steps, the *receiving* rank's section.
    pub section: String,
}

/// One classified blocking wait (all ranks, on-path or not).
#[derive(Debug, Clone, PartialEq)]
pub struct WaitRecord {
    pub rank: usize,
    pub peer: usize,
    pub tag: u64,
    pub ts_us: u64,
    pub dur_us: u64,
    pub class: WaitClass,
    /// The rank the wait is attributed to.
    pub blamed: usize,
    /// The waiting rank's covering top-level section.
    pub section: String,
}

/// Per-class wait totals across all ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitClassTotal {
    pub class: WaitClass,
    pub count: u64,
    pub total_us: u64,
}

/// Wait time attributed to one (class, blamed rank) cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlameEntry {
    pub class: WaitClass,
    pub rank: usize,
    pub count: u64,
    pub total_us: u64,
}

/// One row of the ranked optimization-targets table.
#[derive(Debug, Clone, PartialEq)]
pub struct SectionCost {
    pub name: String,
    /// Slowest rank's wall time inside the section (seconds).
    pub wall_max_s: f64,
    /// On-path compute microseconds attributed to the section.
    pub on_path_compute_us: u64,
    /// On-path wait microseconds whose waiting rank sat in the section.
    pub on_path_wait_us: u64,
    /// Messages sent from inside the section (all ranks).
    pub msgs: u64,
    /// Bytes sent from inside the section (all ranks).
    pub bytes: u64,
    /// α–β roofline verdict label (`compute-bound`, `latency-bound`, …).
    pub verdict: &'static str,
    /// Modeled per-rank communication seconds behind the verdict.
    pub comm_model_s: f64,
    /// Projected SYPD gain (percent) from halving this section's work.
    pub what_if_half_gain_pct: f64,
}

impl SectionCost {
    pub fn on_path_us(&self) -> u64 {
        self.on_path_compute_us + self.on_path_wait_us
    }
}

/// Per-coupling-interval slice of the critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalSummary {
    pub index: usize,
    pub start_us: u64,
    pub end_us: u64,
    pub compute_us: u64,
    pub comm_us: u64,
    pub wait_us: u64,
}

/// Result of one what-if projection.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIf {
    pub section: String,
    pub factor: f64,
    /// Solver makespan with factor 1.0 (model baseline, µs).
    pub baseline_us: f64,
    /// Solver makespan with the section scaled (µs).
    pub projected_us: f64,
    /// Projected speed gain in percent (`baseline/projected - 1`).
    pub gain_pct: f64,
    /// Measured SYPD scaled by the projected speedup (0 when unknown).
    pub projected_sypd: f64,
}

/// The full analysis of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    pub n_ranks: usize,
    /// The rank whose activity ends last (where the backward walk starts).
    pub end_rank: usize,
    pub start_us: u64,
    pub end_us: u64,
    /// Critical-path wall length (µs); equals the sum of step durations.
    pub total_us: u64,
    pub compute_us: u64,
    pub comm_us: u64,
    pub wait_us: u64,
    /// On-path compute microseconds covered by `io_*` spans (a sub-bucket
    /// of `compute_us`, not a fourth fraction).
    pub io_us: u64,
    pub steps: Vec<PathStep>,
    /// Ranked by on-path time, descending.
    pub sections: Vec<SectionCost>,
    pub wait_classes: Vec<WaitClassTotal>,
    /// Ranked by attributed wait time, descending.
    pub blame: Vec<BlameEntry>,
    pub waits: Vec<WaitRecord>,
    pub intervals: Vec<IntervalSummary>,
    /// The section with the most on-path time (the top optimization
    /// target; empty for an empty run).
    pub top_section: String,
    /// Measured SYPD carried in for what-if scaling (0 when unknown).
    pub sypd: f64,
    /// Precomputed ×0.5 projection for the top section.
    pub what_if_half_top: Option<WhatIf>,
}

impl Analysis {
    pub fn compute_frac(&self) -> f64 {
        frac(self.compute_us, self.total_us)
    }

    pub fn comm_frac(&self) -> f64 {
        frac(self.comm_us, self.total_us)
    }

    pub fn wait_frac(&self) -> f64 {
        frac(self.wait_us, self.total_us)
    }
}

fn frac(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

// --- per-rank preparation ----------------------------------------------

/// A top-level section instance on one rank.
#[derive(Debug, Clone)]
struct Sect {
    name: String,
    ts: u64,
    end: u64,
}

/// One blocking wait on one rank's timeline.
#[derive(Debug, Clone)]
struct Wait {
    ts: u64,
    end: u64,
    peer: usize,
    tag: u64,
    timeout: bool,
    pair: Option<PairedMessage>,
}

#[derive(Debug, Clone, Default)]
struct RankPrep {
    /// Top-level section instances, sorted by start.
    sections: Vec<Sect>,
    /// Merged `io_*` span windows, sorted.
    io: Vec<(u64, u64)>,
    /// Blocking waits (recv with dur > 0, timeouts), sorted by start.
    waits: Vec<Wait>,
    /// Activity envelope.
    first_us: u64,
    last_us: u64,
    empty: bool,
}

/// Extract top-level (depth-0) spans per thread track via a containment
/// sweep: sort by `(ts, dur desc)` so parents precede children, keep a
/// stack of open span ends.
fn top_level_sections(spans: &[TraceEvent]) -> Vec<Sect> {
    let mut by_tid: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for e in spans {
        if e.ph == TracePhase::Complete {
            by_tid.entry(e.tid).or_default().push(e);
        }
    }
    let mut out = Vec::new();
    for group in by_tid.values_mut() {
        group.sort_by_key(|e| (e.ts_us, std::cmp::Reverse(e.dur_us)));
        let mut stack: Vec<u64> = Vec::new();
        for e in group {
            while stack.last().is_some_and(|end| *end <= e.ts_us) {
                stack.pop();
            }
            if stack.is_empty() {
                out.push(Sect {
                    name: e.name.clone(),
                    ts: e.ts_us,
                    end: e.ts_us + e.dur_us,
                });
            }
            stack.push(e.ts_us + e.dur_us);
        }
    }
    out.sort_by_key(|s| (s.ts, s.end));
    out
}

/// Merge possibly-overlapping `io_*` windows into a sorted disjoint set.
fn io_windows(spans: &[TraceEvent]) -> Vec<(u64, u64)> {
    let mut raw: Vec<(u64, u64)> = spans
        .iter()
        .filter(|e| e.ph == TracePhase::Complete && e.name.starts_with("io_"))
        .map(|e| (e.ts_us, e.ts_us + e.dur_us))
        .collect();
    raw.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::new();
    for (a, b) in raw {
        match out.last_mut() {
            Some((_, end)) if a <= *end => *end = (*end).max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

/// Total overlap of `[a, b)` with a sorted disjoint window set.
fn overlap_us(windows: &[(u64, u64)], a: u64, b: u64) -> u64 {
    let mut total = 0;
    for &(lo, hi) in windows {
        if hi <= a {
            continue;
        }
        if lo >= b {
            break;
        }
        total += hi.min(b) - lo.max(a);
    }
    total
}

// --- the analyzer -------------------------------------------------------

/// Builder + engine. Construct with [`Analyzer::new`] (end-of-run) or
/// [`Analyzer::from_chrome_trace`] (offline), optionally configure, then
/// call [`Analyzer::analyze`] and/or [`Analyzer::what_if`].
pub struct Analyzer {
    machine: MachineSpec,
    sypd: f64,
    interval_section: String,
    preps: Vec<RankPrep>,
    comms: Vec<Vec<CommEvent>>,
}

impl Analyzer {
    /// Build from per-rank timelines. Rank ids index the internal tables;
    /// gaps (a rank with no timeline) become empty ranks.
    pub fn new(timelines: &[RankTimeline]) -> Analyzer {
        let n = timelines.iter().map(|t| t.rank + 1).max().unwrap_or(0);
        let mut comms: Vec<Vec<CommEvent>> = vec![Vec::new(); n];
        let mut spans: Vec<&[TraceEvent]> = vec![&[]; n];
        for t in timelines {
            comms[t.rank] = t.comms.clone();
            spans[t.rank] = &t.spans;
        }
        // Shared FIFO pairing over every rank's ring, then hand each recv
        // its pair back by walking rings in order with per-channel counters.
        let flow: Vec<FlowEvent> = comms
            .iter()
            .enumerate()
            .flat_map(|(r, ring)| ring.iter().filter_map(move |e| FlowEvent::from_comm(r, e)))
            .collect();
        let pairing = pair_fifo(&flow);
        let mut chan_pairs: BTreeMap<(usize, usize, u64), Vec<&PairedMessage>> = BTreeMap::new();
        for p in &pairing.pairs {
            chan_pairs.entry((p.src, p.dst, p.tag)).or_default().push(p);
        }

        let mut preps = Vec::with_capacity(n);
        for (r, ring) in comms.iter().enumerate() {
            let mut prep = RankPrep {
                sections: top_level_sections(spans[r]),
                io: io_windows(spans[r]),
                ..RankPrep::default()
            };
            let mut first = u64::MAX;
            let mut last = 0u64;
            for e in spans[r].iter().filter(|e| e.ph == TracePhase::Complete) {
                first = first.min(e.ts_us);
                last = last.max(e.ts_us + e.dur_us);
            }
            let mut recv_seen: BTreeMap<(usize, usize, u64), usize> = BTreeMap::new();
            for e in ring {
                first = first.min(e.ts_us);
                last = last.max(e.ts_us + e.dur_us);
                match e.kind {
                    CommEventKind::Recv => {
                        let key = (e.peer, r, e.tag);
                        let k = recv_seen.entry(key).or_default();
                        let pair = chan_pairs
                            .get(&key)
                            .and_then(|v| v.get(*k))
                            .map(|p| (*p).clone());
                        *k += 1;
                        if e.dur_us > 0 {
                            prep.waits.push(Wait {
                                ts: e.ts_us,
                                end: e.ts_us + e.dur_us,
                                peer: e.peer,
                                tag: e.tag,
                                timeout: false,
                                pair,
                            });
                        }
                    }
                    CommEventKind::Timeout if e.dur_us > 0 => prep.waits.push(Wait {
                        ts: e.ts_us,
                        end: e.ts_us + e.dur_us,
                        peer: e.peer,
                        tag: e.tag,
                        timeout: true,
                        pair: None,
                    }),
                    _ => {}
                }
            }
            prep.waits.sort_by_key(|w| (w.ts, w.end));
            prep.empty = first == u64::MAX;
            prep.first_us = if prep.empty { 0 } else { first };
            prep.last_us = last;
            preps.push(prep);
        }

        Analyzer {
            machine: MachineSpec::sunway_oceanlight(),
            sypd: 0.0,
            interval_section: "cpl_rearrange".to_string(),
            preps,
            comms,
        }
    }

    /// Cost message edges and section verdicts against `spec` instead of
    /// the default Sunway OceanLight model.
    pub fn with_machine(mut self, spec: &MachineSpec) -> Analyzer {
        self.machine = spec.clone();
        self
    }

    /// Carry the run's measured SYPD so what-if projections report an
    /// absolute projected SYPD, not just a percentage.
    pub fn with_sypd(mut self, sypd: f64) -> Analyzer {
        self.sypd = sypd;
        self
    }

    /// Section whose instances delimit coupling intervals (default
    /// `cpl_rearrange`).
    pub fn with_interval_section(mut self, name: &str) -> Analyzer {
        self.interval_section = name.to_string();
        self
    }

    fn n_ranks(&self) -> usize {
        self.preps.len()
    }

    fn global_start(&self) -> u64 {
        self.preps
            .iter()
            .filter(|p| !p.empty)
            .map(|p| p.first_us)
            .min()
            .unwrap_or(0)
    }

    fn global_end(&self) -> u64 {
        self.preps.iter().map(|p| p.last_us).max().unwrap_or(0)
    }

    /// α + bytes/β, in microseconds — the modeled wire time of one message.
    fn wire_us(&self, bytes: u64) -> f64 {
        (self.machine.net_alpha + bytes as f64 / self.machine.net_beta) * 1e6
    }

    /// Covering top-level section at instant `t` on `rank`; when `t` sits
    /// between sections (a wait beginning exactly where a section ended),
    /// the most recently begun section takes the attribution.
    fn section_at(&self, rank: usize, t: u64) -> &str {
        let secs = &self.preps[rank].sections;
        let before = &secs[..secs.partition_point(|s| s.ts <= t)];
        before
            .iter()
            .rev()
            .find(|s| t < s.end)
            .or_else(|| before.last())
            .map(|s| s.name.as_str())
            .unwrap_or(UNTRACKED)
    }

    /// Split busy window `[a, b)` of `rank` into per-section compute steps,
    /// pushed latest-first (the walk builds the path backward).
    fn attribute_busy_rev(&self, rank: usize, a: u64, b: u64, steps: &mut Vec<PathStep>) {
        if b <= a {
            return;
        }
        let mut cursor = b;
        for s in self.preps[rank].sections.iter().rev() {
            if cursor <= a {
                break;
            }
            let lo = s.ts.max(a);
            let hi = s.end.min(cursor);
            if hi <= lo {
                continue;
            }
            if hi < cursor {
                steps.push(PathStep {
                    rank,
                    kind: StepKind::Compute,
                    ts_us: hi,
                    dur_us: cursor - hi,
                    section: UNTRACKED.to_string(),
                });
            }
            steps.push(PathStep {
                rank,
                kind: StepKind::Compute,
                ts_us: lo,
                dur_us: hi - lo,
                section: s.name.clone(),
            });
            cursor = lo;
        }
        if cursor > a {
            steps.push(PathStep {
                rank,
                kind: StepKind::Compute,
                ts_us: a,
                dur_us: cursor - a,
                section: UNTRACKED.to_string(),
            });
        }
    }

    fn classify(&self, w: &Wait) -> WaitClass {
        if w.timeout {
            WaitClass::Timeout
        } else if is_collective_tag(w.tag) {
            WaitClass::Collective
        } else {
            match &w.pair {
                None => WaitClass::Orphan,
                Some(p) if p.late_sender() => WaitClass::LateSender,
                Some(_) => WaitClass::LateReceiver,
            }
        }
    }

    fn blame_of(&self, w: &Wait, class: WaitClass) -> usize {
        match class {
            // The receiver's own progress lag.
            WaitClass::LateReceiver => w.pair.as_ref().map(|p| p.dst).unwrap_or(w.peer),
            // Everything else points at the peer the rank waited on.
            _ => w.peer,
        }
    }

    /// Walk the critical path backward from the last rank to finish.
    fn walk(&self) -> (Vec<PathStep>, usize) {
        let mut steps = Vec::new();
        let end_rank = self
            .preps
            .iter()
            .enumerate()
            .max_by_key(|(r, p)| (p.last_us, usize::MAX - r))
            .map(|(r, _)| r)
            .unwrap_or(0);
        if self.preps.is_empty() || self.preps[end_rank].last_us == 0 {
            return (steps, end_rank);
        }
        let mut cur = end_rank;
        let mut t = self.preps[end_rank].last_us;
        let total_waits: usize = self.preps.iter().map(|p| p.waits.len()).sum();
        let max_iters = total_waits + self.n_ranks() + 16;
        let mut stall = 0usize;
        for _ in 0..max_iters {
            let p = &self.preps[cur];
            // Latest wait ending at or before the cursor (ends are
            // monotone: a rank's waits are sequential).
            let idx = p.waits.partition_point(|w| w.end <= t);
            let Some(w) = (idx > 0).then(|| &p.waits[idx - 1]) else {
                self.attribute_busy_rev(cur, p.first_us.min(t), t, &mut steps);
                break;
            };
            let w = w.clone();
            self.attribute_busy_rev(cur, w.end, t, &mut steps);
            let class = self.classify(&w);
            // `send_ts < w.end` guards against eviction-skewed pairings
            // (a full ring can drop recvs and shift the FIFO match, putting
            // the "matching" send after this wait ended); jumping such an
            // edge would move the walk forward in time.
            let on_path_jump = match (&w.pair, class) {
                (Some(pr), WaitClass::LateSender | WaitClass::Collective)
                    if pr.late_sender() && pr.src < self.n_ranks() && pr.send_ts_us < w.end =>
                {
                    Some(pr.clone())
                }
                _ => None,
            };
            match on_path_jump {
                Some(pr) => {
                    // Ride the message edge back to the sender.
                    steps.push(PathStep {
                        rank: cur,
                        kind: StepKind::Comm,
                        ts_us: pr.send_ts_us,
                        dur_us: w.end - pr.send_ts_us,
                        section: self.section_at(cur, w.ts).to_string(),
                    });
                    stall = if pr.send_ts_us == t { stall + 1 } else { 0 };
                    cur = pr.src;
                    t = pr.send_ts_us;
                    if stall > self.n_ranks() {
                        break;
                    }
                }
                None => {
                    // The wait itself is on-path.
                    steps.push(PathStep {
                        rank: cur,
                        kind: StepKind::Wait(class),
                        ts_us: w.ts,
                        dur_us: w.end - w.ts,
                        section: self.section_at(cur, w.ts).to_string(),
                    });
                    stall = 0;
                    t = w.ts;
                }
            }
            if t <= self.global_start() {
                break;
            }
        }
        steps.reverse();
        (steps, end_rank)
    }

    /// Classify every blocking wait on every rank (on-path or not).
    fn classify_all(&self) -> Vec<WaitRecord> {
        let mut out = Vec::new();
        for (r, p) in self.preps.iter().enumerate() {
            for w in &p.waits {
                let class = self.classify(w);
                out.push(WaitRecord {
                    rank: r,
                    peer: w.peer,
                    tag: w.tag,
                    ts_us: w.ts,
                    dur_us: w.end - w.ts,
                    class,
                    blamed: self.blame_of(w, class),
                    section: self.section_at(r, w.ts).to_string(),
                });
            }
        }
        out.sort_by_key(|w| (w.ts_us, w.rank));
        out
    }

    /// Full analysis: path, fractions, wait taxonomy, ranked sections,
    /// per-interval slices, and the precomputed ×0.5 top-section what-if.
    pub fn analyze(&self) -> Analysis {
        let (steps, end_rank) = self.walk();
        let start_us = steps.first().map(|s| s.ts_us).unwrap_or(0);
        let end_us = steps.last().map(|s| s.ts_us + s.dur_us).unwrap_or(0);

        let (mut compute_us, mut comm_us, mut wait_us, mut io_us) = (0u64, 0u64, 0u64, 0u64);
        let mut sec_compute: BTreeMap<String, u64> = BTreeMap::new();
        let mut sec_wait: BTreeMap<String, u64> = BTreeMap::new();
        for s in &steps {
            match s.kind {
                StepKind::Compute => {
                    compute_us += s.dur_us;
                    io_us += overlap_us(&self.preps[s.rank].io, s.ts_us, s.ts_us + s.dur_us);
                    *sec_compute.entry(s.section.clone()).or_default() += s.dur_us;
                }
                StepKind::Comm => comm_us += s.dur_us,
                StepKind::Wait(_) => {
                    wait_us += s.dur_us;
                    *sec_wait.entry(s.section.clone()).or_default() += s.dur_us;
                }
            }
        }
        let total_us = compute_us + comm_us + wait_us;

        // Wait taxonomy and blame.
        let waits = self.classify_all();
        let mut class_tot: BTreeMap<WaitClass, (u64, u64)> = BTreeMap::new();
        let mut blame_tot: BTreeMap<(WaitClass, usize), (u64, u64)> = BTreeMap::new();
        for w in &waits {
            let c = class_tot.entry(w.class).or_default();
            c.0 += 1;
            c.1 += w.dur_us;
            let b = blame_tot.entry((w.class, w.blamed)).or_default();
            b.0 += 1;
            b.1 += w.dur_us;
        }
        let wait_classes: Vec<WaitClassTotal> = class_tot
            .into_iter()
            .map(|(class, (count, total_us))| WaitClassTotal {
                class,
                count,
                total_us,
            })
            .collect();
        let mut blame: Vec<BlameEntry> = blame_tot
            .into_iter()
            .map(|((class, rank), (count, total_us))| BlameEntry {
                class,
                rank,
                count,
                total_us,
            })
            .collect();
        blame.sort_by_key(|b| (std::cmp::Reverse(b.total_us), b.rank));

        // Section table: wall(max rank), traffic, verdicts, what-if gains.
        let mut wall_by_rank: BTreeMap<String, BTreeMap<usize, u64>> = BTreeMap::new();
        for (r, p) in self.preps.iter().enumerate() {
            for s in &p.sections {
                *wall_by_rank
                    .entry(s.name.clone())
                    .or_default()
                    .entry(r)
                    .or_default() += s.end - s.ts;
            }
        }
        let mut traffic: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for (r, ring) in self.comms.iter().enumerate() {
            for e in ring {
                if e.kind == CommEventKind::Send {
                    let t = traffic.entry(self.section_at(r, e.ts_us)).or_default();
                    t.0 += 1;
                    t.1 += e.bytes;
                }
            }
        }
        let traffic: BTreeMap<String, (u64, u64)> = traffic
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        let mut names: Vec<String> = wall_by_rank.keys().cloned().collect();
        for n in sec_compute.keys().chain(sec_wait.keys()) {
            if !names.contains(n) {
                names.push(n.clone());
            }
        }
        let n_ranks_f = self.n_ranks().max(1) as u64;
        let mut sections: Vec<SectionCost> = names
            .into_iter()
            .map(|name| {
                let wall_max_s = wall_by_rank
                    .get(&name)
                    .and_then(|m| m.values().max())
                    .map(|us| *us as f64 / 1e6)
                    .unwrap_or(0.0);
                let (msgs, bytes) = traffic.get(&name).copied().unwrap_or((0, 0));
                let (verdict, comm_model_s) =
                    section_bound(&self.machine, wall_max_s, msgs / n_ranks_f, bytes / n_ranks_f);
                SectionCost {
                    on_path_compute_us: sec_compute.get(&name).copied().unwrap_or(0),
                    on_path_wait_us: sec_wait.get(&name).copied().unwrap_or(0),
                    wall_max_s,
                    msgs,
                    bytes,
                    verdict: verdict.label(),
                    comm_model_s,
                    what_if_half_gain_pct: 0.0,
                    name,
                }
            })
            .collect();
        sections.sort_by(|a, b| {
            b.on_path_us()
                .cmp(&a.on_path_us())
                .then_with(|| a.name.cmp(&b.name))
        });
        for s in sections.iter_mut().take(4) {
            if s.name != UNTRACKED && s.on_path_us() > 0 {
                s.what_if_half_gain_pct = self.what_if(&s.name, 0.5).gain_pct;
            }
        }
        let top_section = sections
            .iter()
            .find(|s| s.name != UNTRACKED && s.on_path_us() > 0)
            .map(|s| s.name.clone())
            .unwrap_or_default();
        let what_if_half_top = (!top_section.is_empty()).then(|| self.what_if(&top_section, 0.5));

        let intervals = self.intervals(&steps);

        Analysis {
            n_ranks: self.n_ranks(),
            end_rank,
            start_us,
            end_us,
            total_us,
            compute_us,
            comm_us,
            wait_us,
            io_us,
            steps,
            sections,
            wait_classes,
            blame,
            waits,
            intervals,
            top_section,
            sypd: self.sypd,
            what_if_half_top,
        }
    }

    /// Slice the path by the interval section's instance starts on the
    /// rank that owns the most instances (rank 0 in a coupled run).
    fn intervals(&self, steps: &[PathStep]) -> Vec<IntervalSummary> {
        let owner = self
            .preps
            .iter()
            .enumerate()
            .max_by_key(|(r, p)| {
                (
                    p.sections
                        .iter()
                        .filter(|s| s.name == self.interval_section)
                        .count(),
                    usize::MAX - r,
                )
            })
            .map(|(r, _)| r);
        let mut bounds: Vec<u64> = owner
            .map(|r| {
                self.preps[r]
                    .sections
                    .iter()
                    .filter(|s| s.name == self.interval_section)
                    .map(|s| s.ts)
                    .collect()
            })
            .unwrap_or_default();
        let start = self.global_start();
        let end = self.global_end();
        bounds.retain(|b| *b > start && *b < end);
        bounds.insert(0, start);
        bounds.push(end);
        bounds.dedup();
        let mut out: Vec<IntervalSummary> = bounds
            .windows(2)
            .enumerate()
            .map(|(index, w)| IntervalSummary {
                index,
                start_us: w[0],
                end_us: w[1],
                compute_us: 0,
                comm_us: 0,
                wait_us: 0,
            })
            .collect();
        for s in steps {
            let (a, b) = (s.ts_us, s.ts_us + s.dur_us);
            for iv in out.iter_mut() {
                if iv.end_us <= a {
                    continue;
                }
                if iv.start_us >= b {
                    break;
                }
                let ov = b.min(iv.end_us) - a.max(iv.start_us);
                match s.kind {
                    StepKind::Compute => iv.compute_us += ov,
                    StepKind::Comm => iv.comm_us += ov,
                    StepKind::Wait(_) => iv.wait_us += ov,
                }
            }
        }
        out
    }

    /// Scaled busy time of `rank` in `[a, b)`: windows covered by
    /// `target`-named section instances shrink by `factor`.
    fn scaled_work(&self, rank: usize, a: u64, b: u64, target: &str, factor: f64) -> f64 {
        if b <= a {
            return 0.0;
        }
        let busy = (b - a) as f64;
        if target.is_empty() || factor == 1.0 {
            return busy;
        }
        let covered: u64 = self.preps[rank]
            .sections
            .iter()
            .filter(|s| s.name == target)
            .map(|s| {
                if s.end <= a || s.ts >= b {
                    0
                } else {
                    s.end.min(b) - s.ts.max(a)
                }
            })
            .sum();
        busy - covered as f64 * (1.0 - factor)
    }

    /// Forward re-solve of the activity graph with `target` section busy
    /// time scaled by `factor`; returns the projected makespan (µs).
    fn solve(&self, target: &str, factor: f64) -> f64 {
        let global_start = self.global_start();
        let n = self.n_ranks();
        let mut t_new: Vec<f64> = self
            .preps
            .iter()
            .map(|p| (p.first_us.saturating_sub(global_start)) as f64)
            .collect();
        let mut last_orig: Vec<u64> = self.preps.iter().map(|p| p.first_us).collect();

        struct Ev {
            rank: usize,
            kind: CommEventKind,
            ts: u64,
            end: u64,
            peer: usize,
            tag: u64,
            bytes: u64,
            seq: usize,
        }
        let mut events: Vec<Ev> = Vec::new();
        for (r, ring) in self.comms.iter().enumerate() {
            for (seq, e) in ring.iter().enumerate() {
                if e.kind == CommEventKind::Stale {
                    continue;
                }
                events.push(Ev {
                    rank: r,
                    kind: e.kind,
                    ts: e.ts_us,
                    end: e.ts_us + e.dur_us,
                    peer: e.peer,
                    tag: e.tag,
                    bytes: e.bytes,
                    seq,
                });
            }
        }
        // Topological order: per-rank completion times are monotone, and a
        // paired send completes no later than its receive's delivery (same
        // address space), so sorting by original completion — sends first
        // on ties — processes every producer before its consumer.
        events.sort_by_key(|e| (e.end, (e.kind != CommEventKind::Send) as u8, e.rank, e.seq));

        let mut chans: BTreeMap<(usize, usize, u64), VecDeque<f64>> = BTreeMap::new();
        for e in &events {
            let r = e.rank;
            t_new[r] += self.scaled_work(r, last_orig[r], e.ts, target, factor);
            match e.kind {
                CommEventKind::Send => {
                    chans.entry((r, e.peer, e.tag)).or_default().push_back(t_new[r]);
                }
                CommEventKind::Recv => {
                    let sent = (e.peer < n)
                        .then(|| chans.get_mut(&(e.peer, r, e.tag)).and_then(VecDeque::pop_front))
                        .flatten();
                    match sent {
                        Some(send_new) => {
                            t_new[r] = t_new[r].max(send_new + self.wire_us(e.bytes));
                        }
                        // Unpaired: no producer in the window, keep the
                        // original wait.
                        None => t_new[r] += (e.end - e.ts) as f64,
                    }
                }
                CommEventKind::Timeout => t_new[r] += (e.end - e.ts) as f64,
                CommEventKind::Stale => {}
            }
            last_orig[r] = last_orig[r].max(e.end);
        }
        for (r, p) in self.preps.iter().enumerate() {
            t_new[r] += self.scaled_work(r, last_orig[r], p.last_us, target, factor);
        }
        t_new.into_iter().fold(0.0, f64::max)
    }

    /// Project the makespan and SYPD effect of scaling `section`'s busy
    /// time by `factor` (0.5 = a 2× kernel speedup). The gain is reported
    /// against the solver's own factor-1.0 baseline so model error in the
    /// wire times cancels.
    pub fn what_if(&self, section: &str, factor: f64) -> WhatIf {
        let baseline_us = self.solve("", 1.0);
        let projected_us = self.solve(section, factor);
        let gain_pct = if projected_us > 0.0 {
            (baseline_us / projected_us - 1.0) * 100.0
        } else {
            0.0
        };
        WhatIf {
            section: section.to_string(),
            factor,
            baseline_us,
            projected_us,
            gain_pct,
            projected_sypd: if self.sypd > 0.0 && projected_us > 0.0 {
                self.sypd * baseline_us / projected_us
            } else {
                0.0
            },
        }
    }

    /// Rebuild timelines from a chrome-trace document written by
    /// [`crate::trace::ChromeTrace`]. Comm rows are recognised by their
    /// `args` object (`kind`/`peer`/`tag`/`bytes`), with a fallback parse
    /// of the human-facing row name for traces from older builds.
    pub fn from_chrome_trace(doc: &Json) -> Result<Analyzer, String> {
        let rows = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .ok_or("trace missing traceEvents")?;
        let mut by_rank: BTreeMap<usize, RankTimeline> = BTreeMap::new();
        for row in rows {
            let ph = row.get("ph").and_then(Json::as_str).unwrap_or("");
            if ph != "X" {
                continue;
            }
            let pid = row.get("pid").and_then(Json::as_u64).unwrap_or(0) as usize;
            let tid = row.get("tid").and_then(Json::as_u64).unwrap_or(0);
            let ts = row.get("ts").and_then(Json::as_u64).unwrap_or(0);
            let dur = row.get("dur").and_then(Json::as_u64).unwrap_or(0);
            let name = row.get("name").and_then(Json::as_str).unwrap_or("");
            let tl = by_rank.entry(pid).or_insert_with(|| RankTimeline {
                rank: pid,
                ..RankTimeline::default()
            });
            if tid == 0 {
                if let Some(e) = parse_comm_row(row, name, ts, dur) {
                    tl.comms.push(e);
                }
            } else {
                tl.spans.push(TraceEvent {
                    name: name.to_string(),
                    ph: TracePhase::Complete,
                    ts_us: ts,
                    dur_us: dur,
                    tid,
                });
            }
        }
        if by_rank.is_empty() {
            return Err("trace has no complete events".to_string());
        }
        let timelines: Vec<RankTimeline> = by_rank.into_values().collect();
        Ok(Analyzer::new(&timelines))
    }
}

/// Decode one comm-track `X` row back into a [`CommEvent`].
fn parse_comm_row(row: &Json, name: &str, ts: u64, dur: u64) -> Option<CommEvent> {
    let (kind, peer, tag, bytes) = match row.get("args") {
        Some(args) => (
            args.get("kind").and_then(Json::as_str)?.to_string(),
            args.get("peer").and_then(Json::as_u64)? as usize,
            args.get("tag").and_then(Json::as_u64)?,
            args.get("bytes").and_then(Json::as_u64).unwrap_or(0),
        ),
        None => {
            // Fallback: "send→1 tag 0x7" / "recv←0 tag 0x7" / "timeout←…".
            let (kind, rest) = name.split_once(['→', '←'])?;
            let (peer, tag) = rest.split_once(" tag ")?;
            (
                kind.to_string(),
                peer.trim().parse().ok()?,
                u64::from_str_radix(tag.trim().trim_start_matches("0x"), 16).ok()?,
                0,
            )
        }
    };
    let kind = match kind.as_str() {
        "send" => CommEventKind::Send,
        "recv" => CommEventKind::Recv,
        "timeout" => CommEventKind::Timeout,
        _ => return None,
    };
    Some(CommEvent {
        kind,
        ts_us: ts,
        // Sends render with a 1 µs sliver for visibility; restore 0.
        dur_us: if kind == CommEventKind::Send { 0 } else { dur },
        peer,
        tag,
        bytes,
    })
}

// --- reporting ----------------------------------------------------------

const JSON_STEP_CAP: usize = 2_048;
const JSON_WAIT_CAP: usize = 1_024;

impl WhatIf {
    /// Deterministic machine-readable form.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("section", self.section.as_str().into())
            .set("factor", self.factor.into())
            .set("baseline_us", self.baseline_us.into())
            .set("projected_us", self.projected_us.into())
            .set("gain_pct", self.gain_pct.into())
            .set("projected_sypd", self.projected_sypd.into());
        o
    }
}

impl Analysis {
    /// Deterministic machine-readable form (`ap3esm-critpath/1`).
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("schema", SCHEMA.into())
            .set("n_ranks", self.n_ranks.into())
            .set("end_rank", self.end_rank.into())
            .set("start_us", self.start_us.into())
            .set("end_us", self.end_us.into())
            .set("total_us", self.total_us.into());
        let mut fr = Json::obj();
        fr.set("compute", self.compute_frac().into())
            .set("comm", self.comm_frac().into())
            .set("wait", self.wait_frac().into())
            .set("io_of_compute", frac(self.io_us, self.total_us).into());
        o.set("fractions", fr);
        let mut tot = Json::obj();
        tot.set("compute_us", self.compute_us.into())
            .set("comm_us", self.comm_us.into())
            .set("wait_us", self.wait_us.into())
            .set("io_us", self.io_us.into());
        o.set("totals", tot);
        o.set(
            "sections",
            Json::Arr(
                self.sections
                    .iter()
                    .map(|s| {
                        let mut so = Json::obj();
                        so.set("name", s.name.as_str().into())
                            .set("on_path_us", s.on_path_us().into())
                            .set("on_path_compute_us", s.on_path_compute_us.into())
                            .set("on_path_wait_us", s.on_path_wait_us.into())
                            .set("wall_max_s", s.wall_max_s.into())
                            .set("msgs", s.msgs.into())
                            .set("bytes", s.bytes.into())
                            .set("verdict", s.verdict.into())
                            .set("comm_model_s", s.comm_model_s.into())
                            .set("what_if_half_gain_pct", s.what_if_half_gain_pct.into());
                        so
                    })
                    .collect(),
            ),
        );
        o.set(
            "wait_classes",
            Json::Arr(
                self.wait_classes
                    .iter()
                    .map(|c| {
                        let mut co = Json::obj();
                        co.set("class", c.class.label().into())
                            .set("count", c.count.into())
                            .set("total_us", c.total_us.into());
                        co
                    })
                    .collect(),
            ),
        );
        o.set(
            "blame",
            Json::Arr(
                self.blame
                    .iter()
                    .map(|b| {
                        let mut bo = Json::obj();
                        bo.set("class", b.class.label().into())
                            .set("rank", b.rank.into())
                            .set("count", b.count.into())
                            .set("total_us", b.total_us.into());
                        bo
                    })
                    .collect(),
            ),
        );
        o.set(
            "waits",
            Json::Arr(
                self.waits
                    .iter()
                    .take(JSON_WAIT_CAP)
                    .map(|w| {
                        let mut wo = Json::obj();
                        wo.set("rank", w.rank.into())
                            .set("peer", w.peer.into())
                            .set("tag", w.tag.into())
                            .set("ts_us", w.ts_us.into())
                            .set("dur_us", w.dur_us.into())
                            .set("class", w.class.label().into())
                            .set("blamed", w.blamed.into())
                            .set("section", w.section.as_str().into());
                        if w.class == WaitClass::Collective {
                            if let Some(kind) = collective_kind(w.tag) {
                                wo.set("collective", kind.into());
                            }
                        }
                        wo
                    })
                    .collect(),
            ),
        );
        o.set("waits_truncated", Json::Bool(self.waits.len() > JSON_WAIT_CAP));
        o.set(
            "intervals",
            Json::Arr(
                self.intervals
                    .iter()
                    .map(|iv| {
                        let mut io = Json::obj();
                        io.set("index", iv.index.into())
                            .set("start_us", iv.start_us.into())
                            .set("end_us", iv.end_us.into())
                            .set("compute_us", iv.compute_us.into())
                            .set("comm_us", iv.comm_us.into())
                            .set("wait_us", iv.wait_us.into());
                        io
                    })
                    .collect(),
            ),
        );
        o.set(
            "path",
            Json::Arr(
                self.steps
                    .iter()
                    .take(JSON_STEP_CAP)
                    .map(|s| {
                        let mut so = Json::obj();
                        so.set("rank", s.rank.into())
                            .set(
                                "kind",
                                match s.kind {
                                    StepKind::Compute => "compute".into(),
                                    StepKind::Comm => "comm".into(),
                                    StepKind::Wait(c) => c.label().into(),
                                },
                            )
                            .set("ts_us", s.ts_us.into())
                            .set("dur_us", s.dur_us.into())
                            .set("section", s.section.as_str().into());
                        so
                    })
                    .collect(),
            ),
        );
        o.set("path_truncated", Json::Bool(self.steps.len() > JSON_STEP_CAP));
        o.set("top_section", self.top_section.as_str().into());
        o.set("sypd", self.sypd.into());
        match &self.what_if_half_top {
            Some(w) => o.set("what_if_half_top", w.to_json()),
            None => o.set("what_if_half_top", Json::Null),
        };
        o
    }

    /// Human-readable "where is my SYPD going?" table.
    pub fn render_table(&self) -> String {
        let ms = |us: u64| us as f64 / 1e3;
        let pct = |f: f64| f * 100.0;
        let mut out = String::new();
        out.push_str(&format!(
            "critical path: {:.1} ms across {} ranks (ends on rank {})\n",
            ms(self.total_us),
            self.n_ranks,
            self.end_rank
        ));
        out.push_str(&format!(
            "fractions: compute {:.1}%  comm {:.1}%  wait {:.1}%  (io {:.1}% of path)\n",
            pct(self.compute_frac()),
            pct(self.comm_frac()),
            pct(self.wait_frac()),
            pct(frac(self.io_us, self.total_us)),
        ));
        out.push_str("\noptimization targets (ranked by on-path time):\n");
        out.push_str(
            "  section            on-path      frac   wall(max)   verdict          ×0.5 gain\n",
        );
        for s in self.sections.iter().take(12) {
            out.push_str(&format!(
                "  {:<18} {:>9.1} ms {:>5.1}%  {:>7.1} ms  {:<15}  {:>+6.1}%\n",
                s.name,
                ms(s.on_path_us()),
                pct(frac(s.on_path_us(), self.total_us)),
                s.wall_max_s * 1e3,
                s.verdict,
                s.what_if_half_gain_pct,
            ));
        }
        if !self.wait_classes.is_empty() {
            out.push_str("\nwait states (all ranks):\n");
            for c in &self.wait_classes {
                let top = self
                    .blame
                    .iter()
                    .find(|b| b.class == c.class)
                    .map(|b| format!("  top blame: rank {} ({:.1} ms)", b.rank, ms(b.total_us)))
                    .unwrap_or_default();
                out.push_str(&format!(
                    "  {:<14} {:>5}×  {:>9.1} ms{top}\n",
                    c.class.label(),
                    c.count,
                    ms(c.total_us),
                ));
            }
        }
        if self.intervals.len() > 1 {
            out.push_str(&format!(
                "\ncoupling intervals: {} (mean on-path wait {:.1} ms/interval)\n",
                self.intervals.len(),
                ms(self.wait_us) / self.intervals.len() as f64,
            ));
        }
        if let Some(w) = &self.what_if_half_top {
            out.push_str(&format!(
                "\nwhat-if: halve {} → {:+.1}% speed",
                w.section, w.gain_pct
            ));
            if w.projected_sypd > 0.0 {
                out.push_str(&format!(
                    " ({:.3} → {:.3} SYPD)",
                    self.sypd, w.projected_sypd
                ));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            ph: TracePhase::Complete,
            ts_us: ts,
            dur_us: dur,
            tid: 1,
        }
    }

    fn send(ts: u64, peer: usize, tag: u64, bytes: u64) -> CommEvent {
        CommEvent {
            kind: CommEventKind::Send,
            ts_us: ts,
            dur_us: 0,
            peer,
            tag,
            bytes,
        }
    }

    fn recv(ts: u64, dur: u64, peer: usize, tag: u64, bytes: u64) -> CommEvent {
        CommEvent {
            kind: CommEventKind::Recv,
            ts_us: ts,
            dur_us: dur,
            peer,
            tag,
            bytes,
        }
    }

    /// rank 1 computes 5 ms then sends; rank 0 blocks from 1 ms — the
    /// canonical late-sender shape.
    fn late_sender_world() -> Vec<RankTimeline> {
        vec![
            RankTimeline {
                rank: 0,
                spans: vec![span("atm_run", 0, 1_000), span("cpl_rearrange", 5_100, 900)],
                comms: vec![recv(1_000, 4_100, 1, 7, 64)],
            },
            RankTimeline {
                rank: 1,
                spans: vec![span("ocn_run", 0, 5_000), span("cpl_rearrange", 5_000, 1_000)],
                comms: vec![send(5_000, 0, 7, 64)],
            },
        ]
    }

    /// Ring eviction can shift the FIFO match so a wait "pairs" with a
    /// send posted after the wait already ended. The walk must not ride
    /// that edge (it points forward in time) — the wait stays on-path and
    /// the analysis still closes without panicking.
    #[test]
    fn eviction_skewed_pair_stays_on_path() {
        let worlds = vec![
            RankTimeline {
                rank: 0,
                spans: vec![span("atm_run", 0, 1_000), span("cpl_rearrange", 3_100, 900)],
                // The recv ends at 3000; the only surviving send on the
                // channel was posted at 9000 (the real partner evicted).
                comms: vec![recv(1_000, 2_000, 1, 7, 64)],
            },
            RankTimeline {
                rank: 1,
                spans: vec![span("ocn_run", 0, 9_000)],
                comms: vec![send(9_000, 0, 7, 64)],
            },
        ];
        let a = Analyzer::new(&worlds).analyze();
        // Classified late-sender (send after recv start), but on-path as a
        // wait step, not a comm edge.
        assert_eq!(a.waits.len(), 1);
        assert_eq!(a.waits[0].class, WaitClass::LateSender);
        assert!(!a.steps.iter().any(|s| matches!(s.kind, StepKind::Comm)));
        let sum = a.compute_frac() + a.comm_frac() + a.wait_frac();
        assert!((sum - 1.0).abs() < 1e-9, "fractions sum to {sum}");
    }

    #[test]
    fn late_sender_is_classified_and_blamed_on_the_source() {
        let a = Analyzer::new(&late_sender_world()).analyze();
        assert_eq!(a.waits.len(), 1);
        let w = &a.waits[0];
        assert_eq!(w.class, WaitClass::LateSender);
        assert_eq!(w.blamed, 1, "the delayed sender takes the blame");
        assert_eq!(w.rank, 0);
        assert_eq!(w.section, "atm_run");
        assert_eq!(a.blame[0].rank, 1);
    }

    #[test]
    fn late_sender_path_jumps_to_the_sender() {
        let a = Analyzer::new(&late_sender_world()).analyze();
        // Path: rank1 ocn_run [0,5000] → comm edge [5000,5100] → rank0
        // busy [5100,6000]. End rank is rank 0 (ends at 6000).
        assert_eq!(a.end_rank, 0);
        assert_eq!(a.total_us, 6_000);
        assert_eq!(a.comm_us, 100);
        assert_eq!(a.wait_us, 0, "the wait was the sender's fault, not on-path");
        assert_eq!(a.compute_us, 5_900);
        // Fractions are a partition of the path.
        let sum = a.compute_frac() + a.comm_frac() + a.wait_frac();
        assert!((sum - 1.0).abs() < 1e-12, "sum = {sum}");
        // The sender's section dominates the target table.
        assert_eq!(a.top_section, "ocn_run");
        // Steps are chronological.
        let ts: Vec<u64> = a.steps.iter().map(|s| s.ts_us).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted);
    }

    #[test]
    fn late_receiver_wait_stays_on_path() {
        let world = vec![
            RankTimeline {
                rank: 0,
                spans: vec![span("atm_run", 0, 1_000)],
                // Send already posted at 500; the 600 µs wait is arrival
                // lag on the receiver.
                comms: vec![recv(1_000, 600, 1, 7, 64)],
            },
            RankTimeline {
                rank: 1,
                spans: vec![span("ocn_run", 0, 500)],
                comms: vec![send(500, 0, 7, 64)],
            },
        ];
        let a = Analyzer::new(&world).analyze();
        assert_eq!(a.waits[0].class, WaitClass::LateReceiver);
        assert_eq!(a.waits[0].blamed, 0, "lag is on the receiving side");
        assert_eq!(a.end_rank, 0);
        assert_eq!(a.wait_us, 600);
        assert_eq!(a.compute_us, 1_000);
        assert_eq!(a.total_us, 1_600);
    }

    #[test]
    fn collective_tag_waits_classify_as_collective() {
        let tag = 0xC0_0000_0000u64 + 0x7000 + 3; // sub-barrier block
        let world = vec![
            RankTimeline {
                rank: 0,
                spans: vec![span("atm_run", 0, 200)],
                comms: vec![recv(200, 900, 1, tag, 8)],
            },
            RankTimeline {
                rank: 1,
                spans: vec![span("ocn_run", 0, 1_100)],
                comms: vec![send(1_100, 0, tag, 8)],
            },
        ];
        let a = Analyzer::new(&world).analyze();
        assert_eq!(a.waits[0].class, WaitClass::Collective);
        assert_eq!(a.wait_classes.len(), 1);
        assert_eq!(a.wait_classes[0].class, WaitClass::Collective);
        assert_eq!(a.wait_classes[0].total_us, 900);
        // A late-sender collective still rides the edge on-path.
        assert_eq!(a.comm_us, 0); // send at 1100 = delivery → zero-length edge
    }

    #[test]
    fn orphan_and_timeout_waits_classify() {
        let world = vec![RankTimeline {
            rank: 0,
            spans: vec![span("atm_run", 0, 100)],
            comms: vec![
                recv(100, 50, 1, 9, 0), // no matching send anywhere
                CommEvent {
                    kind: CommEventKind::Timeout,
                    ts_us: 200,
                    dur_us: 300,
                    peer: 1,
                    tag: 9,
                    bytes: 0,
                },
            ],
        }];
        let a = Analyzer::new(&world).analyze();
        let classes: Vec<WaitClass> = a.waits.iter().map(|w| w.class).collect();
        assert_eq!(classes, vec![WaitClass::Orphan, WaitClass::Timeout]);
        assert_eq!(a.waits[0].blamed, 1);
        assert_eq!(a.waits[1].blamed, 1);
    }

    #[test]
    fn analysis_is_byte_deterministic() {
        let a = Analyzer::new(&late_sender_world()).with_sypd(1.5).analyze();
        let b = Analyzer::new(&late_sender_world()).with_sypd(1.5).analyze();
        assert_eq!(a, b);
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
        assert_eq!(a.render_table(), b.render_table());
    }

    /// Build a two-rank world where rank 0's atm_run dominates, with the
    /// given atm_run length, so the what-if projection can be checked
    /// against an *actually shrunk* rerun.
    fn scalable_world(atm_us: u64) -> Vec<RankTimeline> {
        let recv_start = atm_us; // rank 0 receives right after atm_run
        vec![
            RankTimeline {
                rank: 0,
                spans: vec![
                    span("atm_run", 0, atm_us),
                    span("cpl_rearrange", recv_start, 100),
                ],
                comms: vec![recv(recv_start, 50, 1, 21, 1_024)],
            },
            RankTimeline {
                rank: 1,
                spans: vec![span("ocn_run", 0, 4_000)],
                comms: vec![send(4_000, 0, 21, 1_024)],
            },
        ]
    }

    #[test]
    fn what_if_projection_matches_an_actually_halved_run() {
        let analyzer = Analyzer::new(&scalable_world(10_000)).with_sypd(2.0);
        let projected = analyzer.what_if("atm_run", 0.5);
        assert!(projected.gain_pct > 0.0, "gain = {}", projected.gain_pct);
        assert!(projected.projected_sypd > 2.0);

        // Ground truth: a run whose atm_run really is half as long.
        let halved = Analyzer::new(&scalable_world(5_000));
        let truth = halved.what_if("", 1.0); // baseline solve of the halved run
        let rel_err =
            (projected.projected_us - truth.baseline_us).abs() / truth.baseline_us;
        assert!(
            rel_err < 0.05,
            "projected {} vs actual {} ({}% off)",
            projected.projected_us,
            truth.baseline_us,
            rel_err * 100.0
        );
    }

    #[test]
    fn what_if_of_off_path_section_gains_little() {
        let analyzer = Analyzer::new(&scalable_world(10_000));
        let on = analyzer.what_if("atm_run", 0.5).gain_pct;
        let off = analyzer.what_if("ocn_run", 0.5).gain_pct;
        assert!(on > 30.0, "on-path gain {on}");
        // ocn_run (4 ms) is fully hidden behind atm_run (10 ms).
        assert!(off.abs() < 1.0, "off-path gain {off}");
        let missing = analyzer.what_if("no_such_section", 0.5).gain_pct;
        assert!(missing.abs() < 1e-9);
    }

    #[test]
    fn intervals_slice_the_path() {
        let world = vec![
            RankTimeline {
                rank: 0,
                spans: vec![
                    span("atm_run", 0, 900),
                    span("cpl_rearrange", 900, 100),
                    span("atm_run", 1_000, 900),
                    span("cpl_rearrange", 1_900, 100),
                ],
                comms: vec![],
            },
            RankTimeline {
                rank: 1,
                spans: vec![span("ocn_run", 0, 1_500)],
                comms: vec![],
            },
        ];
        let a = Analyzer::new(&world).analyze();
        assert!(a.intervals.len() >= 2, "intervals: {:?}", a.intervals);
        let sum: u64 = a
            .intervals
            .iter()
            .map(|iv| iv.compute_us + iv.comm_us + iv.wait_us)
            .sum();
        assert_eq!(sum, a.total_us);
    }

    #[test]
    fn roundtrips_through_a_chrome_trace() {
        use crate::trace::ChromeTrace;
        let world = late_sender_world();
        let direct = Analyzer::new(&world).analyze();

        let mut ct = ChromeTrace::new();
        for t in &world {
            ct.add_process(t.rank, &format!("rank {}", t.rank));
            ct.add_span_events(t.rank, &t.spans);
            ct.add_comm_events(t.rank, &t.comms);
        }
        let doc = Json::parse(&ct.to_json()).unwrap();
        let offline = Analyzer::from_chrome_trace(&doc).unwrap().analyze();

        assert_eq!(offline.total_us, direct.total_us);
        assert_eq!(offline.compute_us, direct.compute_us);
        assert_eq!(offline.comm_us, direct.comm_us);
        assert_eq!(offline.wait_us, direct.wait_us);
        assert_eq!(offline.waits.len(), direct.waits.len());
        assert_eq!(offline.waits[0].class, direct.waits[0].class);
        assert_eq!(offline.top_section, direct.top_section);
    }

    #[test]
    fn json_has_schema_and_consistent_fractions() {
        let a = Analyzer::new(&late_sender_world()).with_sypd(1.0).analyze();
        let doc = Json::parse(&a.to_json().to_string()).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let fr = doc.get("fractions").unwrap();
        let sum = fr.get("compute").and_then(Json::as_f64).unwrap()
            + fr.get("comm").and_then(Json::as_f64).unwrap()
            + fr.get("wait").and_then(Json::as_f64).unwrap();
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
        assert!(doc.get("what_if_half_top").unwrap().get("gain_pct").is_some());
    }

    #[test]
    fn empty_world_yields_an_empty_analysis() {
        let a = Analyzer::new(&[]).analyze();
        assert_eq!(a.total_us, 0);
        assert_eq!(a.compute_frac(), 0.0);
        assert!(a.steps.is_empty());
        assert!(a.what_if_half_top.is_none());
    }
}
