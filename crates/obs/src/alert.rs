//! Declarative SLO / anomaly rules over sampled time series.
//!
//! An [`AlertEngine`] holds a set of [`Rule`]s and is evaluated after every
//! sampler tick (or offline, over a saved snapshot — see [`replay`]). Each
//! rule watches one series in a [`SeriesStore`] and breaches on one of
//! three conditions:
//!
//! * **threshold** — `above X` / `below X`: the sampled value crosses a
//!   fixed bound (serve p95 budget, shed-rate SLO);
//! * **rolling-mean deviation** — `deviates_below F over N` /
//!   `deviates_above F over N`: the value drops below (rises above)
//!   `F ×` the rolling mean of up to the last `N` points (SYPD collapse,
//!   imbalance drift). Needs at least `max(2, N/2)` points of history
//!   before it arms, so run startup does not self-trigger;
//! * **rate of change** — `roc_above X` / `roc_below X`: the per-second
//!   derivative between consecutive samples crosses `X` (climbing
//!   `resilience.guard_degraded` counters).
//!
//! A rule fires only after `for M` *consecutive* breaching samples
//! (default 1) — one noisy tick never pages — and it re-arms once a sample
//! passes again, so each sustained episode emits exactly one
//! [`AlertEvent`]. Firing emits to three places at once: stderr
//! (`[alert] ...`), the chrome trace as an `alert.<rule>` instant event
//! (when tracing is on), and the engine's bounded event log, which the
//! coupled driver copies into the run report (`"alerts"` array).
//!
//! ## Rule grammar
//!
//! One rule per line, `#` comments and blank lines ignored:
//!
//! ```text
//! <name>: <series> above|below <value> [for <M>]
//! <name>: <series> deviates_below|deviates_above <frac> over <N> [for <M>]
//! <name>: <series> roc_above|roc_below <per_second> [for <M>]
//! ```
//!
//! e.g. the built-in simulation rules ([`sim_rules`]):
//!
//! ```text
//! sypd-collapse: sim.sypd deviates_below 0.5 over 8 for 2
//! imbalance-drift: sim.imbalance deviates_above 1.4 over 16 for 3
//! degraded-streak: resilience.guard_degraded.rate above 0 for 3
//! ```

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::tsdb::{SeriesSnapshot, SeriesStore, DOWNSAMPLE_FACTOR};
use crate::Obs;

/// Maximum events kept in the engine log (oldest dropped beyond this).
pub const MAX_EVENTS: usize = 256;

/// Breach condition of a [`Rule`].
#[derive(Debug, Clone, PartialEq)]
pub enum RuleKind {
    /// Value strictly above the bound.
    Above(f64),
    /// Value strictly below the bound.
    Below(f64),
    /// Value below `frac ×` rolling mean of up to the last `window` points.
    DeviatesBelow { window: usize, frac: f64 },
    /// Value above `frac ×` rolling mean of up to the last `window` points.
    DeviatesAbove { window: usize, frac: f64 },
    /// Per-second derivative strictly above the bound.
    RocAbove(f64),
    /// Per-second derivative strictly below the bound.
    RocBelow(f64),
}

/// One declarative SLO/anomaly rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    pub name: String,
    /// Series watched (e.g. `sim.sypd`, `serve.latency_us.p95`).
    pub series: String,
    pub kind: RuleKind,
    /// Consecutive breaching samples required before firing (≥ 1).
    pub for_n: usize,
}

impl Rule {
    /// Render back into the one-line grammar (inverse of [`parse_rule`]).
    pub fn to_line(&self) -> String {
        let body = match &self.kind {
            RuleKind::Above(x) => format!("above {x}"),
            RuleKind::Below(x) => format!("below {x}"),
            RuleKind::DeviatesBelow { window, frac } => {
                format!("deviates_below {frac} over {window}")
            }
            RuleKind::DeviatesAbove { window, frac } => {
                format!("deviates_above {frac} over {window}")
            }
            RuleKind::RocAbove(x) => format!("roc_above {x}"),
            RuleKind::RocBelow(x) => format!("roc_below {x}"),
        };
        format!("{}: {} {} for {}", self.name, self.series, body, self.for_n)
    }
}

/// Parse one rule line; see the module docs for the grammar.
pub fn parse_rule(line: &str) -> Result<Rule, String> {
    let err = |msg: &str| format!("rule {line:?}: {msg}");
    let (name, rest) = line
        .split_once(':')
        .ok_or_else(|| err("missing `name:` prefix"))?;
    let name = name.trim();
    if name.is_empty() {
        return Err(err("empty rule name"));
    }
    let tok: Vec<&str> = rest.split_whitespace().collect();
    let mut pos = 0usize;
    fn take<'a>(tok: &[&'a str], pos: &mut usize) -> Option<&'a str> {
        let t = tok.get(*pos).copied();
        *pos += t.is_some() as usize;
        t
    }
    fn num(t: Option<&str>, what: &str, err: impl Fn(&str) -> String) -> Result<f64, String> {
        t.ok_or_else(|| err(&format!("missing {what}")))?
            .parse::<f64>()
            .map_err(|_| err(&format!("bad {what}")))
    }
    let series = take(&tok, &mut pos).ok_or_else(|| err("missing series"))?.to_string();
    let op = take(&tok, &mut pos).ok_or_else(|| err("missing operator"))?;
    let kind = match op {
        "above" => RuleKind::Above(num(take(&tok, &mut pos), "threshold", err)?),
        "below" => RuleKind::Below(num(take(&tok, &mut pos), "threshold", err)?),
        "roc_above" => RuleKind::RocAbove(num(take(&tok, &mut pos), "rate bound", err)?),
        "roc_below" => RuleKind::RocBelow(num(take(&tok, &mut pos), "rate bound", err)?),
        "deviates_below" | "deviates_above" => {
            let frac = num(take(&tok, &mut pos), "fraction", err)?;
            if frac.is_nan() || frac <= 0.0 {
                return Err(err("fraction must be > 0"));
            }
            match take(&tok, &mut pos) {
                Some("over") => {}
                _ => return Err(err("deviation rules need `over <window>`")),
            }
            let window = num(take(&tok, &mut pos), "window", err)? as usize;
            if window < 2 {
                return Err(err("window must be >= 2"));
            }
            if op == "deviates_below" {
                RuleKind::DeviatesBelow { window, frac }
            } else {
                RuleKind::DeviatesAbove { window, frac }
            }
        }
        other => return Err(err(&format!("unknown operator {other:?}"))),
    };
    let for_n = match take(&tok, &mut pos) {
        None => 1,
        Some("for") => {
            let n = num(take(&tok, &mut pos), "streak length", err)? as usize;
            if n == 0 {
                return Err(err("`for` streak must be >= 1"));
            }
            n
        }
        Some(other) => return Err(err(&format!("unexpected token {other:?}"))),
    };
    if let Some(extra) = take(&tok, &mut pos) {
        return Err(err(&format!("unexpected trailing token {extra:?}")));
    }
    Ok(Rule {
        name: name.to_string(),
        series,
        kind,
        for_n,
    })
}

/// Parse a whole rules document (one rule per line, `#` comments).
pub fn parse_rules(text: &str) -> Result<Vec<Rule>, String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(parse_rule)
        .collect()
}

/// Built-in simulation SLO rules (SYPD collapse, imbalance drift,
/// health-guard Degraded streak, degraded-mode entry after permanent rank
/// loss — `sim.degraded_ranks` goes positive the moment the world shrinks,
/// so one sample is enough to page on).
pub fn sim_rules() -> Vec<Rule> {
    parse_rules(
        "sypd-collapse: sim.sypd deviates_below 0.5 over 8 for 2\n\
         imbalance-drift: sim.imbalance deviates_above 1.4 over 16 for 3\n\
         degraded-streak: resilience.guard_degraded.rate above 0 for 3\n\
         degraded-mode: sim.degraded_ranks above 0 for 1\n",
    )
    .expect("built-in sim rules")
}

/// Built-in serving SLO rules for a p95 latency budget (µs) and a shed-rate
/// ceiling (fraction of submissions).
pub fn serve_rules(p95_budget_us: f64, shed_rate_max: f64) -> Vec<Rule> {
    parse_rules(&format!(
        "serve-p95: serve.latency_us.p95 above {p95_budget_us} for 2\n\
         serve-shed: serve.shed_rate above {shed_rate_max} for 2\n",
    ))
    .expect("built-in serve rules")
}

/// One firing of a rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    pub rule: String,
    pub series: String,
    /// Store-relative time of the breaching sample that completed the streak.
    pub t_s: f64,
    /// The breaching sample's value.
    pub value: f64,
    pub message: String,
}

/// Per-rule evaluation summary (for the end-of-run SLO table).
#[derive(Debug, Clone, PartialEq)]
pub struct RuleStatus {
    pub rule: String,
    pub series: String,
    /// Completed firings (sustained breach episodes).
    pub fired: u64,
    /// Still in breach at the last evaluated sample.
    pub firing: bool,
    /// Samples evaluated so far.
    pub evaluated: u64,
}

struct RuleState {
    cursor: u64,
    /// Recent values, newest last (bounded by the deviation window, or 1
    /// for rate-of-change rules).
    history: VecDeque<(f64, f64)>,
    streak: usize,
    firing: bool,
    fired: u64,
    evaluated: u64,
}

impl RuleState {
    fn new() -> RuleState {
        RuleState {
            cursor: 0,
            history: VecDeque::new(),
            streak: 0,
            firing: false,
            fired: 0,
            evaluated: 0,
        }
    }
}

/// Evaluates a rule set against a [`SeriesStore`]; safe to share between
/// the sampler thread and scrape/report readers.
pub struct AlertEngine {
    rules: Vec<Rule>,
    states: Vec<Mutex<RuleState>>,
    events: Mutex<VecDeque<AlertEvent>>,
    /// Echo firings to stderr (off in replay/unit tests).
    stderr: bool,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl AlertEngine {
    pub fn new(rules: Vec<Rule>) -> AlertEngine {
        let states = rules.iter().map(|_| Mutex::new(RuleState::new())).collect();
        AlertEngine {
            rules,
            states,
            events: Mutex::new(VecDeque::new()),
            stderr: true,
        }
    }

    /// Disable the stderr echo (used by offline replay and tests).
    pub fn quiet(mut self) -> AlertEngine {
        self.stderr = false;
        self
    }

    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Evaluate every rule over the samples that arrived since the last
    /// call. Firings land on `obs`'s trace sink as `alert.<rule>` instants
    /// and bump the `alert.fired` counter when `obs` is given.
    pub fn evaluate(&self, store: &SeriesStore, obs: Option<&Obs>) {
        for (rule, state) in self.rules.iter().zip(&self.states) {
            let mut st = lock(state);
            let (points, cursor) = store.tail(&rule.series, st.cursor);
            st.cursor = cursor;
            for (t, v) in points {
                if let Some(event) = step_rule(rule, &mut st, t, v) {
                    self.emit(event, obs);
                }
            }
        }
    }

    fn emit(&self, event: AlertEvent, obs: Option<&Obs>) {
        if self.stderr {
            eprintln!("[alert] {}", event.message);
        }
        if let Some(obs) = obs {
            obs.profiler.record_instant(&format!("alert.{}", event.rule));
            obs.metrics.counter("alert.fired").add(1);
        }
        let mut events = lock(&self.events);
        if events.len() >= MAX_EVENTS {
            events.pop_front();
        }
        events.push_back(event);
    }

    /// All events emitted so far, oldest first.
    pub fn events(&self) -> Vec<AlertEvent> {
        lock(&self.events).iter().cloned().collect()
    }

    /// Per-rule met/violated summary.
    pub fn status(&self) -> Vec<RuleStatus> {
        self.rules
            .iter()
            .zip(&self.states)
            .map(|(rule, state)| {
                let st = lock(state);
                RuleStatus {
                    rule: rule.name.clone(),
                    series: rule.series.clone(),
                    fired: st.fired,
                    firing: st.firing,
                    evaluated: st.evaluated,
                }
            })
            .collect()
    }
}

/// Advance one rule by one sample; returns the event when the streak
/// completes (exactly once per sustained episode).
fn step_rule(rule: &Rule, st: &mut RuleState, t: f64, v: f64) -> Option<AlertEvent> {
    st.evaluated += 1;
    let breach = match &rule.kind {
        RuleKind::Above(x) => Some(v > *x),
        RuleKind::Below(x) => Some(v < *x),
        RuleKind::DeviatesBelow { window, frac } | RuleKind::DeviatesAbove { window, frac } => {
            // Arm only once enough history exists; baseline excludes the
            // sample under test so a slow collapse cannot drag its own mean.
            let armed = st.history.len() >= (window / 2).max(2);
            let verdict = if armed {
                let mean = st.history.iter().map(|&(_, hv)| hv).sum::<f64>()
                    / st.history.len() as f64;
                match rule.kind {
                    RuleKind::DeviatesBelow { .. } => Some(v < mean * frac),
                    _ => Some(v > mean * frac),
                }
            } else {
                None
            };
            // Breaching samples are kept out of the baseline so a sustained
            // incident keeps breaching instead of becoming the new normal.
            if verdict != Some(true) {
                st.history.push_back((t, v));
                while st.history.len() > *window {
                    st.history.pop_front();
                }
            }
            verdict
        }
        RuleKind::RocAbove(x) | RuleKind::RocBelow(x) => {
            let verdict = st.history.back().and_then(|&(t0, v0)| {
                (t > t0).then(|| {
                    let roc = (v - v0) / (t - t0);
                    match rule.kind {
                        RuleKind::RocAbove(_) => roc > *x,
                        _ => roc < *x,
                    }
                })
            });
            st.history.clear();
            st.history.push_back((t, v));
            verdict
        }
    };
    match breach {
        Some(true) => {
            st.streak += 1;
            if st.streak >= rule.for_n && !st.firing {
                st.firing = true;
                st.fired += 1;
                return Some(AlertEvent {
                    rule: rule.name.clone(),
                    series: rule.series.clone(),
                    t_s: t,
                    value: v,
                    message: format!(
                        "{}: {} breached ({}) at t={:.1}s value={:.6}",
                        rule.name,
                        rule.series,
                        rule.to_line(),
                        t,
                        v
                    ),
                });
            }
            None
        }
        Some(false) => {
            st.streak = 0;
            st.firing = false;
            None
        }
        None => None, // not armed yet
    }
}

/// Replay saved snapshots (raw tier) through a fresh engine offline;
/// returns the engine so callers can read both events and status.
pub fn replay(rules: Vec<Rule>, snapshots: &[SeriesSnapshot]) -> AlertEngine {
    let capacity = snapshots
        .iter()
        .map(|s| s.tiers[0].len())
        .max()
        .unwrap_or(0)
        .max(DOWNSAMPLE_FACTOR);
    let store = SeriesStore::new(capacity);
    // Interleave all series by timestamp so cross-series evaluation order
    // matches the live sampler (one evaluate pass per unique tick works
    // because tails are consumed per rule).
    for snap in snapshots {
        for b in &snap.tiers[0] {
            store.record_at(&snap.name, b.t_s, b.sum);
        }
    }
    let engine = AlertEngine::new(rules).quiet();
    engine.evaluate(&store, None);
    engine
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_rule(line: &str, points: &[(f64, f64)]) -> (AlertEngine, Vec<AlertEvent>) {
        let store = SeriesStore::new(1024);
        let rule = parse_rule(line).unwrap();
        for &(t, v) in points {
            store.record_at(&rule.series, t, v);
        }
        let engine = AlertEngine::new(vec![rule]).quiet();
        engine.evaluate(&store, None);
        let events = engine.events();
        (engine, events)
    }

    #[test]
    fn grammar_round_trips() {
        for line in [
            "sypd-collapse: sim.sypd deviates_below 0.5 over 8 for 2",
            "serve-p95: serve.latency_us.p95 above 2000000 for 2",
            "cold: ocean.temp below -1.8 for 1",
            "drift: sim.imbalance deviates_above 1.4 over 16 for 3",
            "climb: resilience.guard_degraded.rate roc_above 0 for 1",
        ] {
            let rule = parse_rule(line).unwrap();
            assert_eq!(parse_rule(&rule.to_line()).unwrap(), rule, "via {line}");
        }
        // Default streak is 1.
        assert_eq!(parse_rule("r: s above 3").unwrap().for_n, 1);
    }

    #[test]
    fn grammar_rejects_malformed_rules() {
        for bad in [
            "no-colon sim.sypd above 1",
            ": sim.sypd above 1",
            "r: sim.sypd",
            "r: sim.sypd sideways 1",
            "r: sim.sypd above",
            "r: sim.sypd above x",
            "r: sim.sypd deviates_below 0.5",
            "r: sim.sypd deviates_below 0.5 over 1",
            "r: sim.sypd deviates_below 0 over 8",
            "r: sim.sypd above 1 for 0",
            "r: sim.sypd above 1 for 2 extra",
        ] {
            assert!(parse_rule(bad).is_err(), "accepted {bad:?}");
        }
        assert_eq!(
            parse_rules("# comment\n\nr: s above 1\n").unwrap().len(),
            1
        );
    }

    #[test]
    fn threshold_rule_fires_once_per_episode_and_rearms() {
        let points: Vec<(f64, f64)> = [1.0, 5.0, 5.0, 5.0, 1.0, 5.0, 5.0]
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64, v))
            .collect();
        let (engine, events) = run_rule("hot: temp above 3 for 2", &points);
        // Two sustained episodes: samples 1-3 (fires at 2) and 5-6 (at 6).
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].t_s, 2.0);
        assert_eq!(events[1].t_s, 6.0);
        let status = &engine.status()[0];
        assert_eq!(status.fired, 2);
        assert!(status.firing);
        assert_eq!(status.evaluated, 7);
    }

    #[test]
    fn short_blips_below_the_streak_do_not_fire() {
        let points: Vec<(f64, f64)> = [1.0, 5.0, 1.0, 5.0, 1.0]
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64, v))
            .collect();
        let (_, events) = run_rule("hot: temp above 3 for 2", &points);
        assert!(events.is_empty());
    }

    #[test]
    fn deviation_rule_arms_after_history_and_catches_collapse() {
        // Healthy SYPD ~2.0 for 4 samples, then collapse to 0.5 for two —
        // the shape of the coupled-run slowdown-injection test.
        let mut points: Vec<(f64, f64)> = (0..4).map(|i| (i as f64, 2.0)).collect();
        points.push((4.0, 0.5));
        points.push((5.0, 0.5));
        points.extend((6..12).map(|i| (i as f64, 2.0)));
        let (engine, events) =
            run_rule("sypd-collapse: sim.sypd deviates_below 0.5 over 8 for 2", &points);
        assert_eq!(events.len(), 1, "{events:?}");
        assert_eq!(events[0].t_s, 5.0);
        assert_eq!(events[0].value, 0.5);
        // Recovered afterwards: no longer firing.
        assert!(!engine.status()[0].firing);
    }

    #[test]
    fn deviation_baseline_excludes_breaching_samples() {
        // A long incident must not become the new normal: stay at 2.0 for
        // 4 samples then 0.5 forever; every later sample still breaches, so
        // only one event (streak never resets).
        let mut points: Vec<(f64, f64)> = (0..4).map(|i| (i as f64, 2.0)).collect();
        points.extend((4..20).map(|i| (i as f64, 0.5)));
        let (engine, events) =
            run_rule("sypd-collapse: sim.sypd deviates_below 0.5 over 8 for 2", &points);
        assert_eq!(events.len(), 1);
        assert!(engine.status()[0].firing);
    }

    #[test]
    fn roc_rule_watches_the_derivative() {
        let points = [
            (0.0, 10.0),
            (1.0, 10.0),
            (2.0, 15.0), // +5/s
            (3.0, 21.0), // +6/s
            (4.0, 21.0),
        ];
        let (_, events) = run_rule("climb: degraded roc_above 4 for 2", &points);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].t_s, 3.0);
    }

    #[test]
    fn incremental_evaluation_matches_one_shot() {
        let rule = "hot: temp above 3 for 2";
        let points: Vec<(f64, f64)> =
            (0..10).map(|i| (i as f64, if i >= 4 { 9.0 } else { 0.0 })).collect();
        let (_, oneshot) = run_rule(rule, &points);
        // Same points fed tick by tick through repeated evaluate() calls.
        let store = SeriesStore::new(1024);
        let engine = AlertEngine::new(vec![parse_rule(rule).unwrap()]).quiet();
        for &(t, v) in &points {
            store.record_at("temp", t, v);
            engine.evaluate(&store, None);
        }
        assert_eq!(engine.events(), oneshot);
    }

    #[test]
    fn replay_reproduces_live_alerts_from_a_snapshot() {
        let store = SeriesStore::new(1024);
        for i in 0..4 {
            store.record_at("sim.sypd", i as f64, 2.0);
        }
        store.record_at("sim.sypd", 4.0, 0.2);
        store.record_at("sim.sypd", 5.0, 0.2);
        let snaps = store.snapshot();
        let engine = replay(
            vec![parse_rule("sypd-collapse: sim.sypd deviates_below 0.5 over 8 for 2").unwrap()],
            &snaps,
        );
        let events = engine.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].rule, "sypd-collapse");
    }

    #[test]
    fn builtin_rule_sets_parse() {
        let sim = sim_rules();
        assert_eq!(sim.len(), 4);
        assert_eq!(sim[3].series, "sim.degraded_ranks");
        let serve = serve_rules(2.0e6, 0.05);
        assert_eq!(serve.len(), 2);
        assert_eq!(serve[0].series, "serve.latency_us.p95");
        assert_eq!(serve[1].kind, RuleKind::Above(0.05));
    }

    #[test]
    fn replay_blames_degraded_mode_from_snapshots() {
        // The shape a shrink leaves behind in the telemetry store — and in
        // a diagnostics bundle's series.json: sim.degraded_ranks sits at 0
        // until the loss, then steps to 1 for the rest of the run.
        let store = SeriesStore::new(256);
        for i in 0..6 {
            store.record_at("sim.degraded_ranks", i as f64, 0.0);
        }
        for i in 6..12 {
            store.record_at("sim.degraded_ranks", i as f64, 1.0);
        }
        let engine = replay(sim_rules(), &store.snapshot());
        let events = engine.events();
        let fired: Vec<_> = events.iter().filter(|e| e.rule == "degraded-mode").collect();
        assert!(
            !fired.is_empty(),
            "degraded-mode rule must fire on a post-shrink snapshot"
        );
        assert_eq!(fired[0].series, "sim.degraded_ranks");
        assert!(fired[0].value > 0.0);
        assert!(
            fired[0].t_s >= 6.0,
            "must fire at the step, not before: t_s={}",
            fired[0].t_s
        );
        // No other sim rule has cause to fire on this store.
        assert!(events.iter().all(|e| e.rule == "degraded-mode"));
    }

    #[test]
    fn replay_of_healthy_run_fires_nothing() {
        // A healthy run's snapshot — steady throughput, mild imbalance,
        // zero degraded ranks — must replay to an empty firing list.
        let store = SeriesStore::new(256);
        for i in 0..16 {
            let t = i as f64;
            store.record_at("sim.degraded_ranks", t, 0.0);
            store.record_at("sim.sypd", t, 5.0 + 0.02 * (i % 3) as f64);
            store.record_at("sim.imbalance", t, 1.05);
        }
        let engine = replay(sim_rules(), &store.snapshot());
        assert!(
            engine.events().is_empty(),
            "healthy replay fired: {:?}",
            engine.events()
        );
    }

    #[test]
    fn firing_reaches_trace_sink_and_counter() {
        let obs = Obs::new();
        let sink = std::sync::Arc::new(crate::trace::TraceSink::new(64));
        obs.profiler.set_trace_sink(Some(std::sync::Arc::clone(&sink)));
        let store = SeriesStore::new(64);
        store.record_at("temp", 0.0, 9.0);
        let engine = AlertEngine::new(vec![parse_rule("hot: temp above 3").unwrap()]).quiet();
        engine.evaluate(&store, Some(&obs));
        assert_eq!(obs.metrics.counter("alert.fired").get(), 1);
        let (events, _) = sink.take();
        assert_eq!(events[0].name, "alert.hot");
    }
}
