//! Shared FIFO message pairing: the one implementation of the
//! k-th-send-matches-k-th-recv rule.
//!
//! The mailbox in `ap3esm-comm` is FIFO per `(src, dst, tag)` channel, so
//! arrival order *is* pairing order. Three consumers rely on that fact and
//! used to re-derive it independently: the chrome-trace flow arrows
//! ([`crate::trace::ChromeTrace`]), the flight-recorder postmortem
//! ([`crate::flightrec::analyze`]), and the critical-path analyzer
//! ([`crate::critpath`]). They now all call [`pair_fifo`], so a pairing
//! bug (or a pairing improvement) lands everywhere at once — and a
//! regression test can assert the exporters agree event-for-event.
//!
//! Channels are walked in `BTreeMap` key order `(src, dst, tag)` and pairs
//! within a channel in arrival order, so the output is deterministic for a
//! given event multiset regardless of the interleaving the ranks recorded.

use std::collections::BTreeMap;

use ap3esm_comm::events::{CommEvent, CommEventKind};

/// Which side of a channel a [`FlowEvent`] sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    Send,
    Recv,
}

/// One send or blocking-receive record, normalised to the *recording*
/// rank's point of view (`peer` is the other end, as in [`CommEvent`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEvent {
    /// The rank that recorded the event.
    pub rank: usize,
    pub kind: FlowKind,
    /// Microseconds since the trace epoch at event start (for receives:
    /// the start of the blocking window).
    pub ts_us: u64,
    /// Blocking-window length for receives; 0 for sends.
    pub dur_us: u64,
    /// Destination for sends, source for receives.
    pub peer: usize,
    pub tag: u64,
    pub bytes: u64,
}

impl FlowEvent {
    /// Adapt a comm-ring event. Timed-out waits never consumed a message
    /// and stale discards never delivered one, so neither participates in
    /// pairing — both map to `None`.
    pub fn from_comm(rank: usize, e: &CommEvent) -> Option<FlowEvent> {
        let kind = match e.kind {
            CommEventKind::Send => FlowKind::Send,
            CommEventKind::Recv => FlowKind::Recv,
            CommEventKind::Timeout | CommEventKind::Stale => return None,
        };
        Some(FlowEvent {
            rank,
            kind,
            ts_us: e.ts_us,
            dur_us: e.dur_us,
            peer: e.peer,
            tag: e.tag,
            bytes: e.bytes,
        })
    }
}

/// A send matched with the receive that consumed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairedMessage {
    pub src: usize,
    pub dst: usize,
    pub tag: u64,
    /// When the sender posted the message.
    pub send_ts_us: u64,
    /// When the receiver started blocking.
    pub recv_ts_us: u64,
    /// How long the receiver blocked; delivery is at
    /// `recv_ts_us + recv_dur_us`.
    pub recv_dur_us: u64,
    /// Payload size as the sender recorded it.
    pub bytes: u64,
}

impl PairedMessage {
    /// Delivery instant: the end of the receiver's blocking window.
    pub fn delivered_us(&self) -> u64 {
        self.recv_ts_us + self.recv_dur_us
    }

    /// True when the send was posted after the receiver already blocked —
    /// the Scalasca *late sender* pattern (the wait is the sender's fault).
    pub fn late_sender(&self) -> bool {
        self.send_ts_us > self.recv_ts_us
    }
}

/// A send whose FIFO channel ran out of receives — the message was posted
/// but (within the recorded window) never consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnpairedSend {
    pub src: usize,
    pub dst: usize,
    pub tag: u64,
    pub ts_us: u64,
}

/// The result of pairing one run's flow events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowPairing {
    /// Matched messages, in `(src, dst, tag)` channel order and arrival
    /// order within each channel.
    pub pairs: Vec<PairedMessage>,
    /// The excess tail of sends per channel, same ordering.
    pub unpaired_sends: Vec<UnpairedSend>,
}

/// Pair the k-th send on `(src, dst, tag)` with the k-th recv on the same
/// channel. Events may arrive in any order and from any rank's ring; each
/// channel's sends and recvs are taken in the order given, which for ring
/// drains is arrival order (the rings are append-only per rank and a
/// channel's events all come from one rank's ring on each side).
pub fn pair_fifo(events: &[FlowEvent]) -> FlowPairing {
    let mut sends: BTreeMap<(usize, usize, u64), Vec<&FlowEvent>> = BTreeMap::new();
    let mut recvs: BTreeMap<(usize, usize, u64), Vec<&FlowEvent>> = BTreeMap::new();
    for e in events {
        match e.kind {
            // Channel key: (sender rank, receiver rank, tag).
            FlowKind::Send => sends.entry((e.rank, e.peer, e.tag)).or_default().push(e),
            FlowKind::Recv => recvs.entry((e.peer, e.rank, e.tag)).or_default().push(e),
        }
    }
    let mut out = FlowPairing::default();
    for (key, ss) in &sends {
        let (src, dst, tag) = *key;
        let rr = recvs.get(key).map(Vec::as_slice).unwrap_or(&[]);
        for (i, s) in ss.iter().enumerate() {
            match rr.get(i) {
                Some(r) => out.pairs.push(PairedMessage {
                    src,
                    dst,
                    tag,
                    send_ts_us: s.ts_us,
                    recv_ts_us: r.ts_us,
                    recv_dur_us: r.dur_us,
                    bytes: s.bytes,
                }),
                None => out.unpaired_sends.push(UnpairedSend {
                    src,
                    dst,
                    tag,
                    ts_us: s.ts_us,
                }),
            }
        }
    }
    out
}

/// Convenience wrapper: pair the drained comm rings of a whole world,
/// `rings[rank]` being rank `rank`'s events (timeouts and stale discards
/// are skipped, as in [`FlowEvent::from_comm`]).
pub fn pair_rings(rings: &[Vec<CommEvent>]) -> FlowPairing {
    let events: Vec<FlowEvent> = rings
        .iter()
        .enumerate()
        .flat_map(|(rank, ring)| ring.iter().filter_map(move |e| FlowEvent::from_comm(rank, e)))
        .collect();
    pair_fifo(&events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(rank: usize, ts: u64, peer: usize, tag: u64) -> FlowEvent {
        FlowEvent {
            rank,
            kind: FlowKind::Send,
            ts_us: ts,
            dur_us: 0,
            peer,
            tag,
            bytes: 64,
        }
    }

    fn recv(rank: usize, ts: u64, dur: u64, peer: usize, tag: u64) -> FlowEvent {
        FlowEvent {
            rank,
            kind: FlowKind::Recv,
            ts_us: ts,
            dur_us: dur,
            peer,
            tag,
            bytes: 64,
        }
    }

    #[test]
    fn kth_send_matches_kth_recv_per_channel() {
        let events = vec![
            send(0, 10, 1, 7),
            send(0, 20, 1, 7),
            recv(1, 5, 8, 0, 7),
            recv(1, 25, 4, 0, 7),
            // A different tag is a different channel.
            send(0, 12, 1, 9),
            recv(1, 11, 3, 0, 9),
        ];
        let p = pair_fifo(&events);
        assert_eq!(p.pairs.len(), 3);
        assert!(p.unpaired_sends.is_empty());
        // Channel order (0,1,7) then (0,1,9); arrival order within.
        assert_eq!(p.pairs[0].send_ts_us, 10);
        assert_eq!(p.pairs[0].recv_ts_us, 5);
        assert_eq!(p.pairs[1].send_ts_us, 20);
        assert_eq!(p.pairs[1].recv_ts_us, 25);
        assert_eq!(p.pairs[2].tag, 9);
        // 10 > 5: the first message is a late send.
        assert!(p.pairs[0].late_sender());
        assert!(!p.pairs[1].late_sender());
    }

    #[test]
    fn excess_sends_are_unpaired_in_order() {
        let events = vec![send(2, 1, 3, 5), send(2, 2, 3, 5), recv(3, 0, 4, 2, 5)];
        let p = pair_fifo(&events);
        assert_eq!(p.pairs.len(), 1);
        assert_eq!(
            p.unpaired_sends,
            vec![UnpairedSend {
                src: 2,
                dst: 3,
                tag: 5,
                ts_us: 2
            }]
        );
    }

    #[test]
    fn timeouts_and_stale_events_never_pair() {
        use ap3esm_comm::events::{CommEvent, CommEventKind};
        let t = CommEvent {
            kind: CommEventKind::Timeout,
            ts_us: 0,
            dur_us: 9,
            peer: 1,
            tag: 2,
            bytes: 0,
        };
        let s = CommEvent {
            kind: CommEventKind::Stale,
            ts_us: 0,
            dur_us: 0,
            peer: 1,
            tag: 2,
            bytes: 3,
        };
        assert!(FlowEvent::from_comm(0, &t).is_none());
        assert!(FlowEvent::from_comm(0, &s).is_none());
    }

    #[test]
    fn pairing_is_order_insensitive_across_ranks() {
        let a = vec![send(0, 10, 1, 7), recv(1, 5, 8, 0, 7)];
        let b = vec![recv(1, 5, 8, 0, 7), send(0, 10, 1, 7)];
        assert_eq!(pair_fifo(&a), pair_fifo(&b));
    }
}
