//! Minimal JSON value + writer/parser for the run-report sink.
//!
//! The workspace has no serde_json (offline build — see `vendor/README.md`),
//! so this module provides an insertion-ordered value tree, a deterministic
//! compact writer, and a small recursive-descent parser (used by the trace
//! schema tests to read emitted reports back). Object keys keep insertion
//! order, making report output byte-stable for the golden-schema test.

/// An insertion-ordered JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends `key: value` (object variant only; panics otherwise).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        match self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value)),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Parse a JSON document. Numbers come back as `Num(f64)` (ample for
    /// report/trace introspection); errors carry the byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Member lookup on an object (first match; `None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) => u64::try_from(*i).ok(),
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{}` prints the shortest round-trip form, which is
                    // valid JSON for finite values.
                    out.push_str(&x.to_string());
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Compact serialisation (no whitespace), deterministic field order.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("expected {lit} at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy up to the next quote or escape. The input
                    // is a &str, so the bytes are valid UTF-8, and UTF-8
                    // continuation bytes never equal '"' or '\\', so both
                    // stop positions are char boundaries.
                    let start = self.pos;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::UInt(x)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::UInt(x as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact_deterministic_objects() {
        let mut o = Json::obj();
        o.set("name", "coupled".into())
            .set("sypd", Json::Num(0.5))
            .set("ranks", Json::UInt(3))
            .set("list", Json::Arr(vec![Json::Int(-1), Json::Bool(true), Json::Null]));
        assert_eq!(
            o.to_string(),
            r#"{"name":"coupled","sypd":0.5,"ranks":3,"list":[-1,true,null]}"#
        );
    }

    #[test]
    fn escapes_strings_and_maps_nonfinite_to_null() {
        let mut o = Json::obj();
        o.set("s", "a\"b\\c\nd".into()).set("nan", Json::Num(f64::NAN));
        assert_eq!(o.to_string(), r#"{"s":"a\"b\\c\nd","nan":null}"#);
    }

    #[test]
    fn parses_what_the_writer_emits() {
        let mut o = Json::obj();
        o.set("name", "coupled".into())
            .set("sypd", Json::Num(0.5))
            .set("ranks", Json::UInt(3))
            .set("note", "a\"b\nc".into())
            .set("list", Json::Arr(vec![Json::Int(-1), Json::Bool(true), Json::Null]))
            .set("empty", Json::obj());
        let parsed = Json::parse(&o.to_string()).unwrap();
        assert_eq!(parsed.get("name").and_then(Json::as_str), Some("coupled"));
        assert_eq!(parsed.get("sypd").and_then(Json::as_f64), Some(0.5));
        assert_eq!(parsed.get("ranks").and_then(Json::as_u64), Some(3));
        assert_eq!(parsed.get("note").and_then(Json::as_str), Some("a\"b\nc"));
        assert_eq!(parsed.get("list").and_then(Json::as_arr).unwrap().len(), 3);
        assert_eq!(parsed.get("empty"), Some(&Json::Obj(Vec::new())));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse(r#"{"a":1,}"#).is_err());
        assert!(Json::parse(r#"{"a":1} extra"#).is_err());
        assert!(Json::parse(r#""unterminated"#).is_err());
        assert!(Json::parse("[1,2").is_err());
    }

    #[test]
    fn parse_accepts_whitespace_and_nested_structures() {
        let doc = "\n{ \"a\" : [ 1 , { \"b\" : -2.5e1 } ] ,\t\"c\": false }\n";
        let parsed = Json::parse(doc).unwrap();
        let arr = parsed.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").and_then(Json::as_f64), Some(-25.0));
        assert_eq!(parsed.get("c"), Some(&Json::Bool(false)));
    }

    #[test]
    fn float_formatting_is_round_trip_safe() {
        for x in [0.1, 1.0, 1e-9, 12345.678901, 1e300] {
            let s = Json::Num(x).to_string();
            assert_eq!(s.parse::<f64>().unwrap(), x, "via {s}");
        }
    }
}
