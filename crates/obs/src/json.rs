//! Minimal JSON value + writer for the run-report sink.
//!
//! The workspace has no serde_json (offline build — see `vendor/README.md`),
//! and the report only needs *emission*, so this module provides an
//! insertion-ordered value tree and a deterministic compact writer. Object
//! keys keep insertion order, making report output byte-stable for the
//! golden-schema test.

/// An insertion-ordered JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends `key: value` (object variant only; panics otherwise).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        match self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value)),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{}` prints the shortest round-trip form, which is
                    // valid JSON for finite values.
                    out.push_str(&x.to_string());
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Compact serialisation (no whitespace), deterministic field order.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::UInt(x)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::UInt(x as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact_deterministic_objects() {
        let mut o = Json::obj();
        o.set("name", "coupled".into())
            .set("sypd", Json::Num(0.5))
            .set("ranks", Json::UInt(3))
            .set("list", Json::Arr(vec![Json::Int(-1), Json::Bool(true), Json::Null]));
        assert_eq!(
            o.to_string(),
            r#"{"name":"coupled","sypd":0.5,"ranks":3,"list":[-1,true,null]}"#
        );
    }

    #[test]
    fn escapes_strings_and_maps_nonfinite_to_null() {
        let mut o = Json::obj();
        o.set("s", "a\"b\\c\nd".into()).set("nan", Json::Num(f64::NAN));
        assert_eq!(o.to_string(), r#"{"s":"a\"b\\c\nd","nan":null}"#);
    }

    #[test]
    fn float_formatting_is_round_trip_safe() {
        for x in [0.1, 1.0, 1e-9, 12345.678901, 1e300] {
            let s = Json::Num(x).to_string();
            assert_eq!(s.parse::<f64>().unwrap(), x, "via {s}");
        }
    }
}
