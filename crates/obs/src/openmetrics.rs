//! OpenMetrics text exposition of the live registry and sampled series.
//!
//! [`render`] turns a [`Metrics`] registry (plus, optionally, the latest
//! state of a [`SeriesStore`]) into the OpenMetrics text format: one
//! `# TYPE` line per family, `_total`-suffixed counters, histograms as
//! summaries with `quantile` labels, and a terminating `# EOF`. Metric
//! names are sanitised into the `ap3esm_` namespace (`serve.latency_us` →
//! `ap3esm_serve_latency_us`); the original dotted name is preserved as a
//! `name` label on series samples.
//!
//! [`MetricsServer`] serves that text over a deliberately tiny blocking
//! HTTP/1.0 endpoint built on `std::net` only (the workspace has no async
//! runtime — see `vendor/README.md`): a non-blocking accept loop polls a
//! stop flag every ~25 ms, reads one request line, answers
//! `/metrics` (OpenMetrics), `/series` (the `ap3esm-tsdb/1` JSON
//! snapshot), `/alerts` (alert events as JSON), or `/healthz`, then closes
//! the connection. It is an opt-in debugging/scrape surface
//! (`--metrics-addr`), not a production web server.
//!
//! [`parse`] is the strict validator used by the CI `telemetry-smoke` job
//! and the offline replay tool: it checks `# TYPE` declarations, name
//! syntax, label syntax, numeric sample values and the `# EOF` trailer.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::alert::AlertEngine;
use crate::json::Json;
use crate::metrics::{Metrics, MetricSnapshot};
use crate::tsdb::SeriesStore;
use crate::Obs;

/// Sanitise a dotted metric name into an OpenMetrics name in the
/// `ap3esm_` namespace.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("ap3esm_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).into()
    } else {
        // Shortest round-trip form; integral values print without a dot,
        // which OpenMetrics permits.
        format!("{v}")
    }
}

/// Render the registry (and the latest bucket of every series tier, when a
/// store is given) as OpenMetrics text.
pub fn render(metrics: &Metrics, store: Option<&SeriesStore>) -> String {
    let mut out = String::new();
    for (name, snap) in metrics.snapshot() {
        let om = sanitize(&name);
        match snap {
            MetricSnapshot::Counter(v) => {
                out.push_str(&format!("# TYPE {om} counter\n"));
                out.push_str(&format!("{om}_total {v}\n"));
            }
            MetricSnapshot::Gauge(v) => {
                out.push_str(&format!("# TYPE {om} gauge\n"));
                out.push_str(&format!("{om} {}\n", fmt_value(v)));
            }
            MetricSnapshot::Histogram(h) => {
                out.push_str(&format!("# TYPE {om} summary\n"));
                out.push_str(&format!("{om}{{quantile=\"0.5\"}} {}\n", h.p50));
                out.push_str(&format!("{om}{{quantile=\"0.95\"}} {}\n", h.p95));
                out.push_str(&format!("{om}_count {}\n", h.count));
                // The summary digest carries no exact sum; mean × count is
                // the closest reconstruction and keeps the report schema
                // unchanged.
                out.push_str(&format!(
                    "{om}_sum {}\n",
                    fmt_value(h.mean * h.count as f64)
                ));
            }
        }
    }
    if let Some(store) = store {
        let snaps = store.snapshot();
        if !snaps.is_empty() {
            out.push_str("# TYPE ap3esm_series gauge\n");
            for s in &snaps {
                for (tier, buckets) in s.tiers.iter().enumerate() {
                    let Some(b) = buckets.last() else { continue };
                    let factor = crate::tsdb::DOWNSAMPLE_FACTOR.pow(tier as u32);
                    for (agg, v) in [
                        ("last", b.sum / b.count.max(1) as f64),
                        ("min", b.min),
                        ("max", b.max),
                        ("mean", b.mean()),
                    ] {
                        // Raw-tier buckets hold one sample, so last == min
                        // == max == mean; emit only "last" there.
                        if tier == 0 && agg != "last" {
                            continue;
                        }
                        out.push_str(&format!(
                            "ap3esm_series{{name=\"{}\",tier=\"{}\",agg=\"{}\"}} {}\n",
                            s.name,
                            factor,
                            agg,
                            fmt_value(v)
                        ));
                    }
                }
            }
        }
    }
    out.push_str("# EOF\n");
    out
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub name: String,
    /// `(label, value)` pairs in declaration order.
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

/// One parsed metric family.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    pub name: String,
    /// `counter`, `gauge`, `summary`, …
    pub kind: String,
    pub samples: Vec<Sample>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// A sample name must be its family name, optionally extended by a
/// recognised suffix (`_total`, `_count`, `_sum`, `_bucket`, `_created`).
fn belongs_to(sample: &str, family: &str) -> bool {
    match sample.strip_prefix(family) {
        Some("") => true,
        Some(suffix) => matches!(suffix, "_total" | "_count" | "_sum" | "_bucket" | "_created"),
        None => false,
    }
}

/// Strictly parse an OpenMetrics text document; used to validate scrapes
/// in CI and snapshots in the offline replay tool.
pub fn parse(text: &str) -> Result<Vec<Family>, String> {
    let mut families: Vec<Family> = Vec::new();
    let mut saw_eof = false;
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if saw_eof {
            return Err(format!("line {ln}: content after # EOF"));
        }
        if line.is_empty() {
            return Err(format!("line {ln}: blank line"));
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if rest == "EOF" {
                saw_eof = true;
            } else if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut it = decl.split_whitespace();
                let (name, kind) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
                if !valid_name(name) {
                    return Err(format!("line {ln}: bad family name {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "summary" | "histogram" | "info" | "unknown"
                ) || it.next().is_some()
                {
                    return Err(format!("line {ln}: bad TYPE declaration"));
                }
                if families.iter().any(|f| f.name == name) {
                    return Err(format!("line {ln}: duplicate family {name:?}"));
                }
                families.push(Family {
                    name: name.to_string(),
                    kind: kind.to_string(),
                    samples: Vec::new(),
                });
            } else if !rest.starts_with("HELP ") && !rest.starts_with("UNIT ") {
                return Err(format!("line {ln}: unknown comment directive"));
            }
            continue;
        }
        let sample = parse_sample(line).map_err(|e| format!("line {ln}: {e}"))?;
        let family = families
            .iter_mut()
            .rev()
            .find(|f| belongs_to(&sample.name, &f.name))
            .ok_or(format!(
                "line {ln}: sample {:?} outside any declared family",
                sample.name
            ))?;
        family.samples.push(sample);
    }
    if !saw_eof {
        return Err("missing # EOF trailer".into());
    }
    Ok(families)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (head, rest) = match line.find('{') {
        Some(brace) => {
            let close = line.rfind('}').ok_or("unterminated label set")?;
            if close < brace {
                return Err("mismatched braces".into());
            }
            (
                (&line[..brace], parse_labels(&line[brace + 1..close])?),
                line[close + 1..].trim(),
            )
        }
        None => {
            let mut it = line.splitn(2, ' ');
            let name = it.next().unwrap_or("");
            ((name, Vec::new()), it.next().unwrap_or("").trim())
        }
    };
    let ((name, labels), value_text) = (head, rest);
    if !valid_name(name) {
        return Err(format!("bad sample name {name:?}"));
    }
    // A timestamp after the value is permitted by the spec; accept the
    // first token as the value and require it to be numeric.
    let value_tok = value_text
        .split_whitespace()
        .next()
        .ok_or("missing sample value")?;
    let value = match value_tok {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        tok => tok
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {tok:?}"))?,
    };
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without '='")?;
        let key = rest[..eq].trim();
        if !valid_name(key) {
            return Err(format!("bad label name {key:?}"));
        }
        rest = rest[eq + 1..].trim_start();
        if !rest.starts_with('"') {
            return Err("label value must be quoted".into());
        }
        // Scan the quoted value honouring backslash escapes.
        let mut value = String::new();
        let mut chars = rest[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    end = Some(i);
                    break;
                }
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e @ ('"' | '\\'))) => value.push(e),
                    _ => return Err("bad escape in label value".into()),
                },
                c => value.push(c),
            }
        }
        let end = end.ok_or("unterminated label value")?;
        out.push((key.to_string(), value));
        rest = rest[1 + end + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(out)
}

// --- the scrape endpoint ------------------------------------------------

/// Everything the endpoint can serve, bundled for the handler thread.
struct ServerState {
    obs: Arc<Obs>,
    store: Arc<SeriesStore>,
    engine: Option<Arc<AlertEngine>>,
}

/// A tiny blocking HTTP scrape endpoint over `std::net` (opt-in via
/// `--metrics-addr`); see the module docs for the routes.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9464`, port 0 for ephemeral) and start
    /// the accept loop on its own thread.
    pub fn start(
        addr: &str,
        obs: Arc<Obs>,
        store: Arc<SeriesStore>,
        engine: Option<Arc<AlertEngine>>,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let state = ServerState { obs, store, engine };
        let handle = std::thread::Builder::new()
            .name("obs-metrics-http".into())
            .spawn(move || {
                while !thread_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => handle_connection(stream, &state),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(25));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(25)),
                    }
                }
            })
            .expect("spawn obs-metrics-http");
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the thread.
    pub fn stop(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn handle_connection(mut stream: TcpStream, state: &ServerState) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    // One request per connection: read until the header terminator (or the
    // buffer/timeout gives out), answer, close.
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 8192 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let path = request
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = match path {
        "/" | "/metrics" => (
            "200 OK",
            "application/openmetrics-text; version=1.0.0; charset=utf-8",
            render(&state.obs.metrics, Some(&state.store)),
        ),
        "/series" => (
            "200 OK",
            "application/json",
            state.store.snapshot_json() + "\n",
        ),
        "/alerts" => ("200 OK", "application/json", alerts_json(state) + "\n"),
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let _ = stream.write_all(
        format!(
            "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    );
}

fn alerts_json(state: &ServerState) -> String {
    let mut root = Json::obj();
    let events = state
        .engine
        .as_ref()
        .map(|e| e.events())
        .unwrap_or_default();
    root.set(
        "alerts",
        Json::Arr(events.iter().map(crate::alert_event_json).collect()),
    );
    root.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics() -> Metrics {
        let m = Metrics::default();
        m.counter("serve.submitted").add(42);
        m.gauge("sim.sypd").set(0.54);
        let h = m.histogram("serve.latency_us");
        for v in [100, 200, 300, 400, 1000] {
            h.record(v);
        }
        m
    }

    #[test]
    fn renders_counters_gauges_summaries_and_eof() {
        let text = render(&sample_metrics(), None);
        assert!(text.contains("# TYPE ap3esm_serve_submitted counter\n"));
        assert!(text.contains("ap3esm_serve_submitted_total 42\n"));
        assert!(text.contains("# TYPE ap3esm_sim_sypd gauge\n"));
        assert!(text.contains("ap3esm_sim_sypd 0.54\n"));
        assert!(text.contains("# TYPE ap3esm_serve_latency_us summary\n"));
        assert!(text.contains("ap3esm_serve_latency_us{quantile=\"0.5\"}"));
        assert!(text.contains("ap3esm_serve_latency_us_count 5\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn renders_series_tiers_with_labels() {
        let store = SeriesStore::new(64);
        for i in 0..25 {
            store.record_at("sim.sypd", i as f64, 2.0 + (i % 3) as f64);
        }
        let text = render(&Metrics::default(), Some(&store));
        assert!(text.contains("# TYPE ap3esm_series gauge\n"));
        assert!(text.contains("ap3esm_series{name=\"sim.sypd\",tier=\"1\",agg=\"last\"}"));
        assert!(text.contains("ap3esm_series{name=\"sim.sypd\",tier=\"10\",agg=\"mean\"}"));
        // Raw tier emits only the last sample, not min/max/mean.
        assert!(!text.contains("tier=\"1\",agg=\"min\""));
    }

    #[test]
    fn parser_accepts_what_render_emits() {
        let store = SeriesStore::new(64);
        store.record("sim.sypd", 0.5);
        let text = render(&sample_metrics(), Some(&store));
        let families = parse(&text).unwrap();
        let names: Vec<&str> = families.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"ap3esm_serve_submitted"));
        assert!(names.contains(&"ap3esm_series"));
        let series = families.iter().find(|f| f.name == "ap3esm_series").unwrap();
        assert_eq!(
            series.samples[0].labels[0],
            ("name".to_string(), "sim.sypd".to_string())
        );
        let summary = families
            .iter()
            .find(|f| f.name == "ap3esm_serve_latency_us")
            .unwrap();
        assert_eq!(summary.kind, "summary");
        assert_eq!(summary.samples.len(), 4); // q0.5, q0.95, _count, _sum
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for (bad, why) in [
            ("ap3esm_x 1\n# EOF\n", "sample outside a family"),
            ("# TYPE ap3esm_x gauge\nap3esm_x 1\n", "missing EOF"),
            ("# TYPE ap3esm_x gauge\nap3esm_x one\n# EOF\n", "bad value"),
            ("# TYPE ap3esm_x wat\n# EOF\n", "bad kind"),
            ("# TYPE 9x gauge\n# EOF\n", "bad name"),
            (
                "# TYPE ap3esm_x gauge\n# TYPE ap3esm_x gauge\n# EOF\n",
                "duplicate family",
            ),
            (
                "# TYPE ap3esm_x gauge\nap3esm_x{a=b} 1\n# EOF\n",
                "unquoted label",
            ),
            ("# EOF\nap3esm_x 1\n", "content after EOF"),
            (
                "# TYPE ap3esm_x gauge\nap3esm_y 1\n# EOF\n",
                "sample from another family",
            ),
        ] {
            assert!(parse(bad).is_err(), "accepted: {why}");
        }
    }

    #[test]
    fn parser_handles_escapes_timestamps_and_specials() {
        let doc = "# TYPE ap3esm_x gauge\n\
                   ap3esm_x{a=\"q\\\"uo\\\\te\\n\",b=\"2\"} 1.5 1700000000\n\
                   ap3esm_x{a=\"inf\"} +Inf\n\
                   # EOF\n";
        let families = parse(doc).unwrap();
        let s = &families[0].samples[0];
        assert_eq!(s.labels[0].1, "q\"uo\\te\n");
        assert_eq!(s.labels[1].1, "2");
        assert_eq!(s.value, 1.5);
        assert!(families[0].samples[1].value.is_infinite());
    }

    #[test]
    fn server_serves_all_routes_and_stops() {
        let obs = Arc::new(Obs::new());
        obs.metrics.counter("hits").add(7);
        let store = Arc::new(SeriesStore::new(64));
        store.record("sim.sypd", 0.5);
        let engine = Arc::new(AlertEngine::new(vec![
            crate::alert::parse_rule("hot: sim.sypd above 0.1").unwrap(),
        ]).quiet());
        engine.evaluate(&store, None);
        let server = MetricsServer::start(
            "127.0.0.1:0",
            Arc::clone(&obs),
            Arc::clone(&store),
            Some(Arc::clone(&engine)),
        )
        .unwrap();
        let addr = server.local_addr();

        let metrics = http_get(addr, "/metrics");
        assert!(metrics.contains("ap3esm_hits_total 7"));
        assert!(parse(body_of(&metrics)).is_ok(), "scrape must validate");

        let series = http_get(addr, "/series");
        assert!(body_of(&series).starts_with(r#"{"schema":"ap3esm-tsdb/1""#));

        let alerts = http_get(addr, "/alerts");
        assert!(body_of(&alerts).contains("\"rule\":\"hot\""));

        assert!(http_get(addr, "/healthz").contains("ok"));
        assert!(http_get(addr, "/nope").starts_with("HTTP/1.0 404"));

        server.stop();
        // The port is released once the thread joins: a fresh bind works.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "port still held after stop");
    }

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    fn body_of(response: &str) -> &str {
        response.split("\r\n\r\n").nth(1).unwrap_or("")
    }
}
