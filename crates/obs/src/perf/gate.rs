//! Regression gate over the BENCH trajectory.
//!
//! Given the historical `BENCH_*.json` points and a freshly measured one,
//! classify every metric as improved / regressed / within-noise. The
//! noise band around the historical mean is built from *both* dispersion
//! sources we have: the spread of the metric across history (run-to-run
//! variance on this machine) and the within-run sample stddev the suite
//! recorded (warm-up-trimmed iteration spread), widened by a relative
//! floor so a single quiet historical point cannot produce a zero-width
//! band. Only metrics whose [`Direction`](super::Direction) is not
//! `Informational` can fail the gate.

use super::{BenchFile, Direction, Stat};

/// Gate tuning. Defaults are deliberately conservative: the quick suite
/// runs on shared, noisy machines and a false "regressed" verdict that
/// blocks a PR is worse than a missed 10% drift (which the trajectory
/// still shows, and the next PR's wider history will catch).
#[derive(Debug, Clone)]
pub struct GateOptions {
    /// Multiplier on the combined stddev term of the band half-width.
    pub sigma: f64,
    /// Relative floor: the band half-width is at least this fraction of
    /// the historical mean's magnitude.
    pub rel_floor: f64,
    /// Absolute floor on the band half-width (same unit as the metric).
    pub abs_floor: f64,
    /// How many most-recent history points to use (0 = all).
    pub window: usize,
}

impl Default for GateOptions {
    fn default() -> Self {
        GateOptions {
            sigma: 4.0,
            rel_floor: 0.35,
            abs_floor: 0.0,
            window: 8,
        }
    }
}

/// Per-metric classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Outside the band, in the good direction.
    Improved,
    /// Outside the band, in the bad direction — fails the gate.
    Regressed,
    WithinNoise,
    /// No history for this metric (first run, or a newly added metric).
    New,
    /// Present in history but missing from the current point — fails the
    /// gate (a silently dropped measurement hides regressions).
    Missing,
    /// `Informational` direction: trajectory context, never gated.
    Informational,
}

impl Verdict {
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::WithinNoise => "within-noise",
            Verdict::New => "new",
            Verdict::Missing => "MISSING",
            Verdict::Informational => "info",
        }
    }
}

/// One metric's gate outcome.
#[derive(Debug, Clone)]
pub struct MetricVerdict {
    pub name: String,
    pub verdict: Verdict,
    pub unit: String,
    /// Current value (NaN for [`Verdict::Missing`]).
    pub value: f64,
    /// Historical mean (NaN for [`Verdict::New`]).
    pub baseline: f64,
    /// Band half-width around the baseline (NaN for [`Verdict::New`]).
    pub half_band: f64,
    /// (value - baseline) / |baseline| (NaN when undefined).
    pub delta_frac: f64,
    /// History points behind the baseline.
    pub history_n: usize,
}

/// The whole gate outcome.
#[derive(Debug, Clone)]
pub struct GateReport {
    pub verdicts: Vec<MetricVerdict>,
    /// History points considered (after windowing).
    pub history_len: usize,
}

impl GateReport {
    pub fn count(&self, v: Verdict) -> usize {
        self.verdicts.iter().filter(|m| m.verdict == v).count()
    }

    /// The gate passes unless a gated metric regressed or went missing.
    pub fn passed(&self) -> bool {
        self.count(Verdict::Regressed) == 0 && self.count(Verdict::Missing) == 0
    }

    /// Fixed-width table for stdout/CI logs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "perf gate vs {} history point(s):\n",
            self.history_len
        ));
        out.push_str(&format!(
            "  {:<44} {:>14} {:>14} {:>12} {:>9}  verdict\n",
            "metric", "value", "baseline", "band", "delta"
        ));
        for m in &self.verdicts {
            let fmt = |x: f64| {
                if x.is_nan() {
                    "-".to_string()
                } else if x != 0.0 && (x.abs() >= 1e6 || x.abs() < 1e-3) {
                    format!("{x:.3e}")
                } else {
                    format!("{x:.4}")
                }
            };
            let delta = if m.delta_frac.is_nan() {
                "-".to_string()
            } else {
                format!("{:+.1}%", 100.0 * m.delta_frac)
            };
            out.push_str(&format!(
                "  {:<44} {:>14} {:>14} {:>12} {:>9}  {}\n",
                m.name,
                fmt(m.value),
                fmt(m.baseline),
                if m.half_band.is_nan() {
                    "-".to_string()
                } else {
                    format!("±{}", fmt(m.half_band))
                },
                delta,
                m.verdict.label()
            ));
        }
        out.push_str(&format!(
            "  => {} improved, {} regressed, {} within-noise, {} new, {} missing, {} info — {}\n",
            self.count(Verdict::Improved),
            self.count(Verdict::Regressed),
            self.count(Verdict::WithinNoise),
            self.count(Verdict::New),
            self.count(Verdict::Missing),
            self.count(Verdict::Informational),
            if self.passed() { "PASS" } else { "FAIL" }
        ));
        out
    }

    /// JSON form (for the run report's `perf_gate` block and CI artifacts).
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let mut o = Json::obj();
        o.set("history_len", self.history_len.into())
            .set("passed", Json::Bool(self.passed()));
        let verdicts = self
            .verdicts
            .iter()
            .map(|m| {
                let mut v = Json::obj();
                v.set("name", m.name.as_str().into())
                    .set("verdict", m.verdict.label().into())
                    .set("unit", m.unit.as_str().into())
                    .set("value", m.value.into())
                    .set("baseline", m.baseline.into())
                    .set("half_band", m.half_band.into())
                    .set("delta_frac", m.delta_frac.into())
                    .set("history_n", m.history_n.into());
                v
            })
            .collect();
        o.set("verdicts", Json::Arr(verdicts));
        o
    }
}

/// Sample mean and (n-1) stddev of a slice.
fn mean_stddev(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (f64::NAN, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// Classify every metric of `current` against `history`.
///
/// Metric membership is the union: metrics new in `current` are `New`
/// (bootstrap-friendly — the first run of the suite has no history at
/// all), metrics that disappeared are `Missing`.
pub fn evaluate(history: &[BenchFile], current: &BenchFile, opts: &GateOptions) -> GateReport {
    let window: Vec<&BenchFile> = if opts.window == 0 || history.len() <= opts.window {
        history.iter().collect()
    } else {
        history[history.len() - opts.window..].iter().collect()
    };

    let mut verdicts = Vec::new();
    for (name, stat) in &current.metrics {
        verdicts.push(classify(name, stat, &window, opts));
    }
    // Metrics every history point agreed on but the current run dropped.
    let mut seen_missing: Vec<&str> = Vec::new();
    for h in &window {
        for (name, stat) in &h.metrics {
            if current.get(name).is_none() && !seen_missing.contains(&name.as_str()) {
                seen_missing.push(name);
                verdicts.push(MetricVerdict {
                    name: name.clone(),
                    verdict: if stat.better == Direction::Informational {
                        Verdict::Informational
                    } else {
                        Verdict::Missing
                    },
                    unit: stat.unit.clone(),
                    value: f64::NAN,
                    baseline: f64::NAN,
                    half_band: f64::NAN,
                    delta_frac: f64::NAN,
                    history_n: window.iter().filter(|h| h.get(name).is_some()).count(),
                });
            }
        }
    }
    GateReport {
        verdicts,
        history_len: window.len(),
    }
}

fn classify(
    name: &str,
    stat: &Stat,
    window: &[&BenchFile],
    opts: &GateOptions,
) -> MetricVerdict {
    let past: Vec<&Stat> = window.iter().filter_map(|h| h.get(name)).collect();
    if past.is_empty() {
        return MetricVerdict {
            name: name.to_string(),
            verdict: if stat.better == Direction::Informational {
                Verdict::Informational
            } else {
                Verdict::New
            },
            unit: stat.unit.clone(),
            value: stat.value,
            baseline: f64::NAN,
            half_band: f64::NAN,
            delta_frac: f64::NAN,
            history_n: 0,
        };
    }

    let values: Vec<f64> = past.iter().map(|s| s.value).collect();
    let (baseline, run_to_run) = mean_stddev(&values);
    // Within-run dispersion: the worst of the history points' and the
    // current point's recorded sample stddev.
    let within = past
        .iter()
        .map(|s| s.stddev)
        .chain(std::iter::once(stat.stddev))
        .fold(0.0f64, f64::max);
    let combined = run_to_run.max(within);
    let half_band = (opts.sigma * combined)
        .max(opts.rel_floor * baseline.abs())
        .max(opts.abs_floor);
    let delta = stat.value - baseline;
    let delta_frac = if baseline != 0.0 {
        delta / baseline.abs()
    } else {
        f64::NAN
    };

    let verdict = if stat.better == Direction::Informational {
        Verdict::Informational
    } else if delta.abs() <= half_band {
        Verdict::WithinNoise
    } else {
        let good = match stat.better {
            Direction::LowerIsBetter => delta < 0.0,
            Direction::HigherIsBetter => delta > 0.0,
            Direction::Informational => unreachable!(),
        };
        if good {
            Verdict::Improved
        } else {
            Verdict::Regressed
        }
    };
    MetricVerdict {
        name: name.to_string(),
        verdict,
        unit: stat.unit.clone(),
        value: stat.value,
        baseline,
        half_band,
        delta_frac,
        history_n: past.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::BuildInfo;

    fn point(kernel_ns: f64, sypd: f64, bytes: f64) -> BenchFile {
        let mut f = BenchFile::new("perf_trajectory", BuildInfo::fixed_for_tests());
        f.push(
            "perf.kernel.saxpy.serial.ns_per_gp",
            Stat::sampled(kernel_ns, "ns/gp", 12, kernel_ns * 0.02, Direction::LowerIsBetter),
        );
        f.push("perf.sim.sypd", Stat::single(sypd, "sypd", Direction::HigherIsBetter));
        f.push(
            "perf.sim.comm_bytes",
            Stat::single(bytes, "bytes", Direction::Informational),
        );
        f
    }

    fn history() -> Vec<BenchFile> {
        vec![
            point(1.00, 40.0, 1e6),
            point(1.04, 41.0, 1e6),
            point(0.98, 39.5, 1e6),
        ]
    }

    #[test]
    fn within_noise_passes() {
        let report = evaluate(&history(), &point(1.02, 40.2, 1e6), &GateOptions::default());
        assert!(report.passed());
        assert_eq!(report.count(Verdict::WithinNoise), 2);
        assert_eq!(report.count(Verdict::Informational), 1);
        assert_eq!(report.count(Verdict::Regressed), 0);
    }

    #[test]
    fn clear_regression_fails_in_each_direction() {
        // Cost metric doubling (lower-is-better) regresses.
        let report = evaluate(&history(), &point(2.2, 40.0, 1e6), &GateOptions::default());
        assert!(!report.passed());
        let m = report
            .verdicts
            .iter()
            .find(|m| m.name.contains("saxpy"))
            .unwrap();
        assert_eq!(m.verdict, Verdict::Regressed);
        assert!(m.delta_frac > 1.0);

        // SYPD halving (higher-is-better) regresses.
        let report = evaluate(&history(), &point(1.0, 18.0, 1e6), &GateOptions::default());
        assert!(!report.passed());
        assert_eq!(
            report
                .verdicts
                .iter()
                .find(|m| m.name == "perf.sim.sypd")
                .unwrap()
                .verdict,
            Verdict::Regressed
        );
    }

    #[test]
    fn clear_improvement_is_labelled_and_passes() {
        let report = evaluate(&history(), &point(0.4, 90.0, 1e6), &GateOptions::default());
        assert!(report.passed());
        assert_eq!(report.count(Verdict::Improved), 2);
    }

    #[test]
    fn informational_metrics_never_fail() {
        // Byte traffic exploding 100× is recorded but does not gate.
        let report = evaluate(&history(), &point(1.0, 40.0, 1e8), &GateOptions::default());
        assert!(report.passed());
        assert_eq!(
            report
                .verdicts
                .iter()
                .find(|m| m.name.ends_with("comm_bytes"))
                .unwrap()
                .verdict,
            Verdict::Informational
        );
    }

    #[test]
    fn bootstrap_with_no_history_passes_as_new() {
        let report = evaluate(&[], &point(1.0, 40.0, 1e6), &GateOptions::default());
        assert!(report.passed());
        assert_eq!(report.count(Verdict::New), 2);
        assert_eq!(report.count(Verdict::Informational), 1);
        assert_eq!(report.history_len, 0);
    }

    #[test]
    fn single_history_point_gates_on_the_relative_floor() {
        // n=1 history: run-to-run stddev is 0, the rel floor must keep a
        // usable band. 20% drift is within the default 35% floor; 60% is
        // not.
        let h = vec![point(1.0, 40.0, 1e6)];
        assert!(evaluate(&h, &point(1.2, 40.0, 1e6), &GateOptions::default()).passed());
        let r = evaluate(&h, &point(1.6, 40.0, 1e6), &GateOptions::default());
        assert!(!r.passed());
    }

    #[test]
    fn missing_gated_metric_fails_missing_info_metric_does_not() {
        let mut current = BenchFile::new("perf_trajectory", BuildInfo::fixed_for_tests());
        current.push("perf.sim.sypd", Stat::single(40.0, "sypd", Direction::HigherIsBetter));
        let report = evaluate(&history(), &current, &GateOptions::default());
        assert!(!report.passed());
        let missing = report
            .verdicts
            .iter()
            .find(|m| m.name.contains("saxpy"))
            .unwrap();
        assert_eq!(missing.verdict, Verdict::Missing);
        // The informational bytes metric dropping out is not a failure.
        assert_eq!(
            report
                .verdicts
                .iter()
                .find(|m| m.name.ends_with("comm_bytes"))
                .unwrap()
                .verdict,
            Verdict::Informational
        );
    }

    #[test]
    fn windowing_uses_recent_history_only() {
        // Old slow era + recent fast era: with a window of 2 the baseline
        // is the fast era, so returning to the slow value regresses.
        let mut h = vec![point(4.0, 40.0, 1e6), point(4.1, 40.0, 1e6)];
        h.push(point(1.0, 40.0, 1e6));
        h.push(point(1.02, 40.0, 1e6));
        let opts = GateOptions {
            window: 2,
            ..GateOptions::default()
        };
        let report = evaluate(&h, &point(4.0, 40.0, 1e6), &opts);
        assert_eq!(report.history_len, 2);
        assert!(!report.passed());
        // With the full history the old points widen run-to-run stddev so
        // much that 4.0 is tolerated — exactly why the gate windows.
        let all = GateOptions {
            window: 0,
            ..GateOptions::default()
        };
        assert!(evaluate(&h, &point(4.0, 40.0, 1e6), &all).passed());
    }

    #[test]
    fn report_renders_and_serialises() {
        let report = evaluate(&history(), &point(2.5, 40.0, 1e6), &GateOptions::default());
        let text = report.render();
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("FAIL"));
        let json = report.to_json().to_string();
        assert!(json.contains(r#""passed":false"#));
        assert!(json.contains(r#""verdict":"REGRESSED""#));
        let parsed = crate::json::Json::parse(&json).unwrap();
        assert_eq!(parsed.get("history_len").and_then(|v| v.as_u64()), Some(3));
    }
}
