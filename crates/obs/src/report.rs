//! Run-report sink: human-readable span tree + machine-readable JSON.
//!
//! A [`ReportBuilder`] collects whatever the run produced — metadata, the
//! local span tree, cross-rank section stats, metric snapshots, and the
//! communication summary — and builds a [`RunReport`] whose JSON form is a
//! single deterministic object written to `target/obs/run-<name>.json`, so
//! benchmark trajectory tooling can diff runs field by field.

use std::path::{Path, PathBuf};

use crate::alert::AlertEvent;
use crate::json::Json;
use crate::metrics::MetricSnapshot;
use crate::perf::BuildInfo;
use crate::rankagg::{RankTree, SectionStats};
use crate::span::SpanSnapshot;

/// Schema tag stamped into every report (bump on breaking layout changes).
/// `/2`: per-rank span trees (`rank_trees`) and world-relative section
/// imbalance (`world` field on each `rank_sections` entry).
/// `/3`: SLO/anomaly alert events (`alerts` array between `metrics` and
/// `comm`).
/// `/4`: build/machine metadata (`build` object after `name`, shared with
/// `ap3esm-bench/1` BENCH files so reports and trajectory points are
/// cross-referencable by git SHA and host).
/// `/5`: critical-path analysis (`critpath` object between `alerts` and
/// `comm`, schema `ap3esm-critpath/1`), and comm `X` rows in the chrome
/// trace carry `args` (`kind`/`peer`/`tag`/`bytes`) so traces round-trip
/// through the offline analyzer.
pub const SCHEMA: &str = "ap3esm-obs/5";

/// Communication traffic digest (fed from `ap3esm_comm::CommStats`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommSummary {
    pub total_messages: u64,
    pub total_bytes: u64,
    /// Hottest (src, dst) pairs by bytes, descending.
    pub top_pairs: Vec<(usize, usize, u64)>,
    /// Labelled traffic streams (e.g. per coupling phase): (label, messages,
    /// bytes).
    pub streams: Vec<(String, u64, u64)>,
}

/// Accumulates report content; finish with [`ReportBuilder::build`].
#[derive(Default)]
pub struct ReportBuilder {
    name: String,
    build: Option<BuildInfo>,
    meta: Vec<(String, Json)>,
    spans: Vec<SpanSnapshot>,
    sections: Vec<SectionStats>,
    rank_trees: Vec<RankTree>,
    metrics: Vec<(String, MetricSnapshot)>,
    alerts: Vec<AlertEvent>,
    critpath: Option<Json>,
    comm: Option<CommSummary>,
}

impl ReportBuilder {
    pub fn new(name: &str) -> Self {
        ReportBuilder {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Override the build/machine stamp (defaults to
    /// [`BuildInfo::current`]; golden tests pin a fixed one).
    pub fn build_info(mut self, build: BuildInfo) -> Self {
        self.build = Some(build);
        self
    }

    /// Attach a metadata field (world size, SYPD, config label, …).
    pub fn meta(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.meta.push((key.to_string(), value.into()));
        self
    }

    /// Attach the reporting rank's local span tree (preorder).
    pub fn spans(mut self, spans: Vec<SpanSnapshot>) -> Self {
        self.spans = spans;
        self
    }

    /// Attach cross-rank section statistics.
    pub fn sections(mut self, sections: Vec<SectionStats>) -> Self {
        self.sections = sections;
        self
    }

    /// Attach every rank's (bounded) span tree, in rank order.
    pub fn rank_trees(mut self, trees: Vec<RankTree>) -> Self {
        self.rank_trees = trees;
        self
    }

    /// Attach a metrics snapshot.
    pub fn metrics(mut self, metrics: Vec<(String, MetricSnapshot)>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Attach SLO/anomaly alert events fired during the run.
    pub fn alerts(mut self, alerts: Vec<AlertEvent>) -> Self {
        self.alerts = alerts;
        self
    }

    /// Attach the critical-path analysis (the `ap3esm-critpath/1` object
    /// produced by [`crate::critpath::Analysis::to_json`]).
    pub fn critpath(mut self, critpath: Json) -> Self {
        self.critpath = Some(critpath);
        self
    }

    /// Attach the communication summary.
    pub fn comm(mut self, comm: CommSummary) -> Self {
        self.comm = Some(comm);
        self
    }

    pub fn build(self) -> RunReport {
        RunReport {
            name: self.name,
            build: self.build.unwrap_or_else(|| BuildInfo::current().clone()),
            meta: self.meta,
            spans: self.spans,
            sections: self.sections,
            rank_trees: self.rank_trees,
            metrics: self.metrics,
            alerts: self.alerts,
            critpath: self.critpath,
            comm: self.comm,
        }
    }
}

/// A finished run report.
pub struct RunReport {
    name: String,
    build: BuildInfo,
    meta: Vec<(String, Json)>,
    spans: Vec<SpanSnapshot>,
    sections: Vec<SectionStats>,
    rank_trees: Vec<RankTree>,
    metrics: Vec<(String, MetricSnapshot)>,
    alerts: Vec<AlertEvent>,
    critpath: Option<Json>,
    comm: Option<CommSummary>,
}

impl RunReport {
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The JSON object, compact and field-order deterministic.
    pub fn to_json(&self) -> String {
        let mut root = Json::obj();
        root.set("schema", SCHEMA.into());
        root.set("name", self.name.as_str().into());
        root.set("build", self.build.to_json());

        let mut meta = Json::obj();
        for (k, v) in &self.meta {
            meta.set(k, v.clone());
        }
        root.set("meta", meta);

        root.set("spans", Json::Arr(span_array(&self.spans)));

        let sections = self
            .sections
            .iter()
            .map(|s| {
                let mut o = Json::obj();
                o.set("path", s.path.as_str().into())
                    .set("max_s", s.max_s.into())
                    .set("min_s", s.min_s.into())
                    .set("mean_s", s.mean_s.into())
                    .set("imbalance", s.imbalance.into())
                    .set("ranks", s.ranks.into())
                    .set("world", s.world.into())
                    .set("count", s.count.into());
                o
            })
            .collect();
        root.set("rank_sections", Json::Arr(sections));

        let trees = self
            .rank_trees
            .iter()
            .map(|t| {
                let mut o = Json::obj();
                o.set("rank", t.rank.into())
                    .set("dropped", t.dropped.into())
                    .set("spans", Json::Arr(span_array(&t.spans)));
                o
            })
            .collect();
        root.set("rank_trees", Json::Arr(trees));

        let mut metrics = Json::obj();
        for (name, snap) in &self.metrics {
            let value = match snap {
                MetricSnapshot::Counter(v) => Json::UInt(*v),
                MetricSnapshot::Gauge(v) => Json::Num(*v),
                MetricSnapshot::Histogram(h) => {
                    let mut o = Json::obj();
                    o.set("count", h.count.into())
                        .set("min", h.min.into())
                        .set("max", h.max.into())
                        .set("mean", h.mean.into())
                        .set("p50", h.p50.into())
                        .set("p95", h.p95.into());
                    o
                }
            };
            metrics.set(name, value);
        }
        root.set("metrics", metrics);

        root.set(
            "alerts",
            Json::Arr(self.alerts.iter().map(alert_event_json).collect()),
        );

        root.set(
            "critpath",
            self.critpath.clone().unwrap_or(Json::Null),
        );

        if let Some(comm) = &self.comm {
            let mut o = Json::obj();
            o.set("total_messages", comm.total_messages.into())
                .set("total_bytes", comm.total_bytes.into());
            let pairs = comm
                .top_pairs
                .iter()
                .map(|&(src, dst, bytes)| {
                    let mut p = Json::obj();
                    p.set("src", src.into())
                        .set("dst", dst.into())
                        .set("bytes", bytes.into());
                    p
                })
                .collect();
            o.set("top_pairs", Json::Arr(pairs));
            let streams = comm
                .streams
                .iter()
                .map(|(label, messages, bytes)| {
                    let mut s = Json::obj();
                    s.set("label", label.as_str().into())
                        .set("messages", (*messages).into())
                        .set("bytes", (*bytes).into());
                    s
                })
                .collect();
            o.set("streams", Json::Arr(streams));
            root.set("comm", o);
        } else {
            root.set("comm", Json::Null);
        }
        root.to_string()
    }

    /// Human-readable rendering: span tree, then cross-rank sections, then
    /// the communication digest.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("run report: {}\n", self.name));
        out.push_str(&format!(
            "  build: {} on {} ({} threads, {})\n",
            self.build.git_sha, self.build.host, self.build.threads, self.build.os
        ));
        for (k, v) in &self.meta {
            out.push_str(&format!("  {k} = {v}\n"));
        }
        if !self.spans.is_empty() {
            out.push_str("  spans (total / self / calls):\n");
            for s in &self.spans {
                out.push_str(&format!(
                    "    {:indent$}{:<28} {:>10.4}s {:>10.4}s {:>8}\n",
                    "",
                    s.name,
                    s.total_s,
                    s.self_s,
                    s.count,
                    indent = 2 * s.depth
                ));
            }
        }
        if !self.sections.is_empty() {
            out.push_str("  sections across ranks (max / mean / imbalance):\n");
            for s in &self.sections {
                out.push_str(&format!(
                    "    {:<34} {:>10.4}s {:>10.4}s {:>6.2}x  on {} rank(s)\n",
                    s.path, s.max_s, s.mean_s, s.imbalance, s.ranks
                ));
            }
        }
        if !self.alerts.is_empty() {
            out.push_str("  alerts:\n");
            for a in &self.alerts {
                out.push_str(&format!("    {}\n", a.message));
            }
        }
        if let Some(c) = &self.comm {
            out.push_str(&format!(
                "  comm: {} messages, {} bytes\n",
                c.total_messages, c.total_bytes
            ));
            for (label, messages, bytes) in &c.streams {
                out.push_str(&format!("    {label:<32} {messages:>8} msgs {bytes:>12} B\n"));
            }
            for &(src, dst, bytes) in &c.top_pairs {
                out.push_str(&format!("    {src:>3} -> {dst:<3} {bytes:>12} B\n"));
            }
        }
        out
    }

    /// Write the JSON report as `<dir>/run-<name>.json`; returns the path.
    pub fn write_to(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("run-{}.json", self.name));
        std::fs::write(&path, self.to_json() + "\n")?;
        Ok(path)
    }

    /// Write to the workspace's default sink, `target/obs/`.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        self.write_to(default_dir())
    }
}

/// JSON form of one alert event (shared by the report's `alerts` array and
/// the scrape endpoint's `/alerts` route).
pub fn alert_event_json(e: &AlertEvent) -> Json {
    let mut o = Json::obj();
    o.set("rule", e.rule.as_str().into())
        .set("series", e.series.as_str().into())
        .set("t_s", e.t_s.into())
        .set("value", e.value.into())
        .set("message", e.message.as_str().into());
    o
}

fn span_array(spans: &[SpanSnapshot]) -> Vec<Json> {
    spans
        .iter()
        .map(|s| {
            let mut o = Json::obj();
            o.set("path", s.path.as_str().into())
                .set("depth", s.depth.into())
                .set("total_s", s.total_s.into())
                .set("self_s", s.self_s.into())
                .set("count", s.count.into());
            o
        })
        .collect()
}

/// The workspace report directory (`target/obs` at the repository root).
pub fn default_dir() -> PathBuf {
    // CARGO_TARGET_DIR is honoured when set; otherwise resolve the
    // workspace target/ relative to this crate's manifest so the sink does
    // not depend on the caller's working directory.
    match std::env::var_os("CARGO_TARGET_DIR") {
        Some(dir) => PathBuf::from(dir).join("obs"),
        None => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/obs"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSummary;

    fn fixed_report() -> RunReport {
        ReportBuilder::new("golden")
            .build_info(BuildInfo::fixed_for_tests())
            .meta("world_size", 3usize)
            .meta("sypd", 0.54)
            .spans(vec![
                SpanSnapshot {
                    path: "step".into(),
                    name: "step".into(),
                    depth: 0,
                    total_s: 2.5,
                    self_s: 0.5,
                    count: 4,
                },
                SpanSnapshot {
                    path: "step/atm".into(),
                    name: "atm".into(),
                    depth: 1,
                    total_s: 2.0,
                    self_s: 2.0,
                    count: 8,
                },
            ])
            .sections(vec![SectionStats {
                path: "step".into(),
                max_s: 2.5,
                min_s: 2.0,
                mean_s: 2.25,
                imbalance: 2.5 / 2.25,
                ranks: 2,
                world: 3,
                count: 4,
            }])
            .rank_trees(vec![crate::rankagg::RankTree {
                rank: 1,
                dropped: 2,
                spans: vec![SpanSnapshot {
                    path: "ocn_run".into(),
                    name: "ocn_run".into(),
                    depth: 0,
                    total_s: 2.0,
                    self_s: 2.0,
                    count: 4,
                }],
            }])
            .metrics(vec![
                ("io.bytes".into(), MetricSnapshot::Counter(4096)),
                (
                    "rearrange.ns".into(),
                    MetricSnapshot::Histogram(HistogramSummary {
                        count: 10,
                        min: 100,
                        max: 900,
                        mean: 500.0,
                        p50: 496,
                        p95: 880,
                    }),
                ),
            ])
            .alerts(vec![AlertEvent {
                rule: "sypd-collapse".into(),
                series: "sim.sypd".into(),
                t_s: 12.5,
                value: 0.2,
                message: "sypd-collapse: sim.sypd breached".into(),
            }])
            .comm(CommSummary {
                total_messages: 42,
                total_bytes: 1_000_000,
                top_pairs: vec![(0, 1, 700_000), (1, 0, 300_000)],
                streams: vec![("cpl_scatter".into(), 30, 700_000)],
            })
            .build()
    }

    /// Golden-file style schema check: the exact serialised form of a fixed
    /// report. Update deliberately when the schema version is bumped.
    #[test]
    fn json_matches_golden_schema() {
        let got = fixed_report().to_json();
        let want = concat!(
            r#"{"schema":"ap3esm-obs/5","name":"golden","#,
            r#""build":{"git_sha":"0123456789ab","rustc":"rustc 1.0.0-test","#,
            r#""host":"testhost","threads":8,"os":"linux/x86_64"},"#,
            r#""meta":{"world_size":3,"sypd":0.54},"#,
            r#""spans":[{"path":"step","depth":0,"total_s":2.5,"self_s":0.5,"count":4},"#,
            r#"{"path":"step/atm","depth":1,"total_s":2,"self_s":2,"count":8}],"#,
            r#""rank_sections":[{"path":"step","max_s":2.5,"min_s":2,"mean_s":2.25,"#,
            r#""imbalance":1.1111111111111112,"ranks":2,"world":3,"count":4}],"#,
            r#""rank_trees":[{"rank":1,"dropped":2,"#,
            r#""spans":[{"path":"ocn_run","depth":0,"total_s":2,"self_s":2,"count":4}]}],"#,
            r#""metrics":{"io.bytes":4096,"#,
            r#""rearrange.ns":{"count":10,"min":100,"max":900,"mean":500,"p50":496,"p95":880}},"#,
            r#""alerts":[{"rule":"sypd-collapse","series":"sim.sypd","t_s":12.5,"#,
            r#""value":0.2,"message":"sypd-collapse: sim.sypd breached"}],"#,
            r#""critpath":null,"#,
            r#""comm":{"total_messages":42,"total_bytes":1000000,"#,
            r#""top_pairs":[{"src":0,"dst":1,"bytes":700000},{"src":1,"dst":0,"bytes":300000}],"#,
            r#""streams":[{"label":"cpl_scatter","messages":30,"bytes":700000}]}}"#,
        );
        assert_eq!(got, want);
    }

    #[test]
    fn report_round_trips_through_the_sink() {
        let dir = std::env::temp_dir().join(format!("ap3esm-obs-{}", std::process::id()));
        let path = fixed_report().write_to(&dir).unwrap();
        assert_eq!(path.file_name().unwrap(), "run-golden.json");
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.trim_end(), fixed_report().to_json());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tree_rendering_mentions_every_layer() {
        let text = fixed_report().render_tree();
        assert!(text.contains("run report: golden"));
        assert!(text.contains("atm"));
        assert!(text.contains("imbalance") || text.contains("sections across ranks"));
        assert!(text.contains("42 messages"));
        assert!(text.contains("cpl_scatter"));
    }
}
