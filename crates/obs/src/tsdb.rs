//! In-process time-series store: bounded history for every metric.
//!
//! The run reports (`obs::report`) are end-of-run artefacts; long coupled
//! runs and the serving fleet need *in-flight* history — what was SYPD ten
//! minutes ago, is the imbalance drifting, did the p95 move after the
//! hot-swap. [`SeriesStore`] keeps that history in memory with a hard
//! bound:
//!
//! * **Lock-sharded**: series are hashed across [`N_SHARDS`] mutexes, so a
//!   sampler thread, the coupled driver, and a scrape handler never contend
//!   on one lock.
//! * **Fixed-capacity ring buffers**: each series holds three tiers — raw
//!   samples, a 10× downsampled tier, and a 100× tier. Every tier is a ring
//!   of at most `capacity` buckets; when a tier wraps, the oldest bucket is
//!   evicted. A closed window of `DOWNSAMPLE_FACTOR` buckets in one tier
//!   cascades one aggregated bucket (min/max/sum/count) into the next, so
//!   the 100× tier summarises `capacity × 100` raw samples. Retention math:
//!   with a 1 s cadence and the default capacity of 1024 buckets per tier,
//!   raw covers ~17 min, the 10× tier ~2.8 h, and the 100× tier ~28 h —
//!   week-long runs stay bounded at three rings per series regardless of
//!   duration.
//! * **Seq-numbered tails**: every raw append increments a per-series
//!   sequence number, so the alert engine can consume exactly the points it
//!   has not yet evaluated ([`SeriesStore::tail`]) even after the ring
//!   evicted older ones.
//!
//! [`Sampler`] runs on its own thread: every `cadence` it snapshots a
//! [`Metrics`] registry into the store (counters as cumulative value plus a
//! `<name>.rate` per-second series, gauges as-is, histograms as
//! `<name>.p50` / `<name>.p95` / `<name>.count` sub-series), records any
//! registered [`Derived`] series (e.g. the serve shed ratio), and gives the
//! alert engine one evaluation pass. Shutdown is a condvar handshake —
//! [`Sampler::shutdown`] flags the thread, wakes it, takes one final sample
//! so short runs are never empty, and joins. With no sampler started,
//! nothing runs and the metric hot paths are untouched.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::alert::AlertEngine;
use crate::json::Json;
use crate::metrics::{Metrics, MetricSnapshot};
use crate::Obs;

/// Shards of the series map; power of two so the hash folds cheaply.
pub const N_SHARDS: usize = 16;

/// Buckets per closed downsampling window (raw → 10× → 100×).
pub const DOWNSAMPLE_FACTOR: usize = 10;

/// Tiers per series: raw, ×10, ×100.
pub const N_TIERS: usize = 3;

/// Default ring capacity per tier, in buckets.
pub const DEFAULT_CAPACITY: usize = 1024;

/// One aggregated bucket of a tier (a raw sample has `count == 1` and
/// `min == max == sum == value`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Seconds since the store's epoch of the first covered sample.
    pub t_s: f64,
    pub min: f64,
    pub max: f64,
    pub sum: f64,
    pub count: u64,
}

impl Bucket {
    fn raw(t_s: f64, value: f64) -> Bucket {
        Bucket {
            t_s,
            min: value,
            max: value,
            sum: value,
            count: 1,
        }
    }

    /// Fold another bucket into this one (keeps the earliest timestamp).
    fn absorb(&mut self, other: &Bucket) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count += other.count;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One ring-buffered tier plus the open window cascading into the next.
struct Tier {
    buckets: VecDeque<Bucket>,
    pending: Option<Bucket>,
    pending_n: usize,
}

impl Tier {
    fn new() -> Tier {
        Tier {
            buckets: VecDeque::new(),
            pending: None,
            pending_n: 0,
        }
    }

    /// Ring-push a closed bucket; returns the cascaded bucket when this
    /// push closes a full downsampling window.
    fn push(&mut self, bucket: Bucket, capacity: usize) -> Option<Bucket> {
        if self.buckets.len() >= capacity {
            self.buckets.pop_front();
        }
        self.buckets.push_back(bucket);
        match self.pending.as_mut() {
            Some(p) => p.absorb(&bucket),
            None => self.pending = Some(bucket),
        }
        self.pending_n += 1;
        if self.pending_n >= DOWNSAMPLE_FACTOR {
            self.pending_n = 0;
            self.pending.take()
        } else {
            None
        }
    }
}

struct Series {
    tiers: [Tier; N_TIERS],
    /// Raw samples ever pushed (monotone; the ring keeps the newest).
    total: u64,
}

impl Series {
    fn new() -> Series {
        Series {
            tiers: [Tier::new(), Tier::new(), Tier::new()],
            total: 0,
        }
    }

    fn record(&mut self, t_s: f64, value: f64, capacity: usize) {
        self.total += 1;
        let mut cascade = self.tiers[0].push(Bucket::raw(t_s, value), capacity);
        for tier in self.tiers.iter_mut().skip(1) {
            match cascade {
                Some(b) => cascade = tier.push(b, capacity),
                None => break,
            }
        }
    }
}

/// Point-in-time copy of one series (all tiers, oldest bucket first).
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    pub name: String,
    /// Raw samples ever recorded (≥ the raw ring length).
    pub total: u64,
    /// `tiers[k]` covers `DOWNSAMPLE_FACTOR^k` raw samples per bucket.
    pub tiers: [Vec<Bucket>; N_TIERS],
}

/// Lock-sharded store of named time series with bounded ring tiers.
pub struct SeriesStore {
    shards: Vec<Mutex<BTreeMap<String, Series>>>,
    capacity: usize,
    epoch: Instant,
}

impl Default for SeriesStore {
    fn default() -> Self {
        SeriesStore::new(DEFAULT_CAPACITY)
    }
}

fn shard_of(name: &str) -> usize {
    // FNV-1a, folded into the shard count.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h as usize) & (N_SHARDS - 1)
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl SeriesStore {
    pub fn new(capacity: usize) -> SeriesStore {
        SeriesStore {
            shards: (0..N_SHARDS).map(|_| Mutex::new(BTreeMap::new())).collect(),
            capacity: capacity.max(DOWNSAMPLE_FACTOR),
            epoch: Instant::now(),
        }
    }

    /// Seconds since this store was created (the series time base).
    pub fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Append one raw sample at an explicit time offset.
    pub fn record_at(&self, name: &str, t_s: f64, value: f64) {
        let mut shard = lock(&self.shards[shard_of(name)]);
        shard
            .entry(name.to_string())
            .or_insert_with(Series::new)
            .record(t_s, value, self.capacity);
    }

    /// Append one raw sample timestamped now.
    pub fn record(&self, name: &str, value: f64) {
        self.record_at(name, self.now_s(), value);
    }

    /// Raw samples newer than `since` (a sequence number as returned by a
    /// previous call), oldest first, plus the new cursor. Points evicted by
    /// the ring before being read are silently skipped.
    pub fn tail(&self, name: &str, since: u64) -> (Vec<(f64, f64)>, u64) {
        let shard = lock(&self.shards[shard_of(name)]);
        let Some(series) = shard.get(name) else {
            return (Vec::new(), since);
        };
        let ring = &series.tiers[0].buckets;
        let first_seq = series.total - ring.len() as u64;
        let skip = since.saturating_sub(first_seq) as usize;
        let points = ring
            .iter()
            .skip(skip)
            .map(|b| (b.t_s, b.sum))
            .collect();
        (points, series.total)
    }

    /// All series, sorted by name.
    pub fn snapshot(&self) -> Vec<SeriesSnapshot> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = lock(shard);
            for (name, series) in shard.iter() {
                out.push(SeriesSnapshot {
                    name: name.clone(),
                    total: series.total,
                    tiers: [
                        series.tiers[0].buckets.iter().copied().collect(),
                        series.tiers[1].buckets.iter().copied().collect(),
                        series.tiers[2].buckets.iter().copied().collect(),
                    ],
                });
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Registered series names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.snapshot().into_iter().map(|s| s.name).collect()
    }

    /// Serialise every series (all tiers) as one JSON document, schema
    /// `ap3esm-tsdb/1`. Buckets are `[t_s, min, max, sum, count]` arrays.
    pub fn snapshot_json(&self) -> String {
        snapshot_to_json(&self.snapshot())
    }

    /// Write the snapshot as `<target/obs>/series-<name>.json`.
    pub fn write_snapshot(&self, name: &str) -> std::io::Result<std::path::PathBuf> {
        let dir = crate::report::default_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("series-{name}.json"));
        std::fs::write(&path, self.snapshot_json() + "\n")?;
        Ok(path)
    }
}

/// Snapshot-file schema tag.
pub const SNAPSHOT_SCHEMA: &str = "ap3esm-tsdb/1";

/// Render a snapshot list as the `ap3esm-tsdb/1` JSON document.
pub fn snapshot_to_json(snaps: &[SeriesSnapshot]) -> String {
    let mut root = Json::obj();
    root.set("schema", Json::Str(SNAPSHOT_SCHEMA.into()));
    let series = snaps
        .iter()
        .map(|s| {
            let mut o = Json::obj();
            o.set("name", Json::Str(s.name.clone()))
                .set("total", Json::UInt(s.total));
            let tiers = s
                .tiers
                .iter()
                .enumerate()
                .map(|(k, buckets)| {
                    let mut t = Json::obj();
                    t.set(
                        "factor",
                        Json::UInt(DOWNSAMPLE_FACTOR.pow(k as u32) as u64),
                    );
                    let rows = buckets
                        .iter()
                        .map(|b| {
                            Json::Arr(vec![
                                Json::Num(b.t_s),
                                Json::Num(b.min),
                                Json::Num(b.max),
                                Json::Num(b.sum),
                                Json::UInt(b.count),
                            ])
                        })
                        .collect();
                    t.set("buckets", Json::Arr(rows));
                    t
                })
                .collect();
            o.set("tiers", Json::Arr(tiers));
            o
        })
        .collect();
    root.set("series", Json::Arr(series));
    root.to_string()
}

/// Parse an `ap3esm-tsdb/1` snapshot document back into memory (used by
/// the offline SLO replay in `scripts/slo_check.sh`).
pub fn snapshot_from_json(text: &str) -> Result<Vec<SeriesSnapshot>, String> {
    let root = Json::parse(text)?;
    match root.get("schema").and_then(Json::as_str) {
        Some(SNAPSHOT_SCHEMA) => {}
        other => return Err(format!("unsupported snapshot schema {other:?}")),
    }
    let mut out = Vec::new();
    for s in root
        .get("series")
        .and_then(Json::as_arr)
        .ok_or("missing series array")?
    {
        let name = s
            .get("name")
            .and_then(Json::as_str)
            .ok_or("series without a name")?
            .to_string();
        let total = s.get("total").and_then(Json::as_u64).unwrap_or(0);
        let mut tiers: [Vec<Bucket>; N_TIERS] = Default::default();
        let tier_arr = s.get("tiers").and_then(Json::as_arr).unwrap_or(&[]);
        for (k, tier) in tier_arr.iter().take(N_TIERS).enumerate() {
            for row in tier.get("buckets").and_then(Json::as_arr).unwrap_or(&[]) {
                let cols = row.as_arr().ok_or("bucket is not an array")?;
                if cols.len() != 5 {
                    return Err(format!("bucket with {} columns", cols.len()));
                }
                let f = |i: usize| cols[i].as_f64().ok_or("non-numeric bucket column");
                tiers[k].push(Bucket {
                    t_s: f(0)?,
                    min: f(1)?,
                    max: f(2)?,
                    sum: f(3)?,
                    count: cols[4].as_u64().ok_or("non-integer bucket count")?,
                });
            }
        }
        out.push(SeriesSnapshot { name, total, tiers });
    }
    Ok(out)
}

// --- the sampler thread -------------------------------------------------

/// Closure type of a [`Derived`] series.
pub type DerivedFn = Arc<dyn Fn(&Metrics) -> Option<f64> + Send + Sync>;

/// A derived series: a closure evaluated against the metrics registry at
/// every sampling tick (e.g. `serve.shed_rate` = shed / submitted).
/// Returning `None` skips the tick.
#[derive(Clone)]
pub struct Derived {
    pub name: String,
    pub eval: DerivedFn,
}

impl Derived {
    pub fn new(
        name: &str,
        eval: impl Fn(&Metrics) -> Option<f64> + Send + Sync + 'static,
    ) -> Derived {
        Derived {
            name: name.to_string(),
            eval: Arc::new(eval),
        }
    }
}

struct SamplerShared {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// Samples a [`Metrics`] registry into a [`SeriesStore`] on its own thread
/// and drives the alert engine; see the module docs for the mapping.
pub struct Sampler {
    shared: Arc<SamplerShared>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Spawn the sampling thread. `engine`, when given, is evaluated after
    /// every tick (alert instants land on `obs`'s trace sink).
    pub fn start(
        obs: Arc<Obs>,
        store: Arc<SeriesStore>,
        engine: Option<Arc<AlertEngine>>,
        cadence: Duration,
        derived: Vec<Derived>,
    ) -> Sampler {
        let shared = Arc::new(SamplerShared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("obs-sampler".into())
            .spawn(move || {
                let mut prev: BTreeMap<String, (f64, f64)> = BTreeMap::new();
                loop {
                    let stopped = {
                        let guard = lock(&thread_shared.stop);
                        if *guard {
                            true
                        } else {
                            let (guard, _) = thread_shared
                                .wake
                                .wait_timeout(guard, cadence)
                                .unwrap_or_else(|p| p.into_inner());
                            *guard
                        }
                    };
                    // One final sample on shutdown, so short runs and the
                    // end-of-run report always see the last state.
                    sample_once(&obs.metrics, &store, &derived, &mut prev);
                    if let Some(engine) = &engine {
                        engine.evaluate(&store, Some(&obs));
                    }
                    if stopped {
                        return;
                    }
                }
            })
            .expect("spawn obs-sampler");
        Sampler {
            shared,
            handle: Some(handle),
        }
    }

    /// Stop the thread (handshake: flag, wake, final sample, join).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Some(handle) = self.handle.take() {
            *lock(&self.shared.stop) = true;
            self.shared.wake.notify_all();
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// One sampling pass: registry → store (+ derived series).
fn sample_once(
    metrics: &Metrics,
    store: &SeriesStore,
    derived: &[Derived],
    prev: &mut BTreeMap<String, (f64, f64)>,
) {
    let t = store.now_s();
    for (name, snap) in metrics.snapshot() {
        match snap {
            MetricSnapshot::Counter(v) => {
                let v = v as f64;
                store.record_at(&name, t, v);
                // Per-second rate since the previous tick (0 on the first).
                let rate = match prev.get(&name) {
                    Some(&(t0, v0)) if t > t0 => (v - v0).max(0.0) / (t - t0),
                    _ => 0.0,
                };
                store.record_at(&format!("{name}.rate"), t, rate);
                prev.insert(name, (t, v));
            }
            MetricSnapshot::Gauge(v) => {
                if v.is_finite() {
                    store.record_at(&name, t, v);
                }
            }
            MetricSnapshot::Histogram(h) => {
                store.record_at(&format!("{name}.p50"), t, h.p50 as f64);
                store.record_at(&format!("{name}.p95"), t, h.p95 as f64);
                store.record_at(&format!("{name}.count"), t, h.count as f64);
            }
        }
    }
    for d in derived {
        if let Some(v) = (d.eval)(metrics) {
            if v.is_finite() {
                store.record_at(&d.name, t, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_tier_is_a_bounded_ring_with_seq_tails() {
        let store = SeriesStore::new(16);
        for i in 0..40 {
            store.record_at("x", i as f64, i as f64);
        }
        let snap = &store.snapshot()[0];
        assert_eq!(snap.name, "x");
        assert_eq!(snap.total, 40);
        assert_eq!(snap.tiers[0].len(), 16); // ring capacity
        assert_eq!(snap.tiers[0][0].sum, 24.0); // oldest kept = 40 - 16
        // Tail from a cursor inside the ring.
        let (points, next) = store.tail("x", 38);
        assert_eq!(next, 40);
        assert_eq!(points, vec![(38.0, 38.0), (39.0, 39.0)]);
        // Tail from a cursor already evicted: returns what the ring has.
        let (points, _) = store.tail("x", 0);
        assert_eq!(points.len(), 16);
        // Unknown series: empty, cursor unchanged.
        assert_eq!(store.tail("y", 7), (Vec::new(), 7));
    }

    #[test]
    fn downsampling_cascades_10x_then_100x() {
        let store = SeriesStore::new(512);
        for i in 0..200 {
            store.record_at("v", i as f64, (i % 7) as f64);
        }
        let snap = &store.snapshot()[0];
        assert_eq!(snap.tiers[0].len(), 200);
        assert_eq!(snap.tiers[1].len(), 20); // 200 / 10
        assert_eq!(snap.tiers[2].len(), 2); // 200 / 100
        // First 10× bucket covers raw samples 0..10 of the i%7 pattern.
        let b = snap.tiers[1][0];
        assert_eq!(b.count, 10);
        assert_eq!(b.t_s, 0.0);
        assert_eq!(b.min, 0.0);
        assert_eq!(b.max, 6.0);
        assert_eq!(b.sum, (0..10).map(|i| (i % 7) as f64).sum::<f64>());
        // 100× bucket covers exactly 100 raw samples.
        assert_eq!(snap.tiers[2][0].count, 100);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let store = SeriesStore::new(64);
        for i in 0..25 {
            store.record_at("sim.sypd", 0.5 * i as f64, 2.0 + i as f64);
        }
        store.record_at("sim.imbalance", 1.0, 1.25);
        let json = store.snapshot_json();
        assert!(json.starts_with(r#"{"schema":"ap3esm-tsdb/1""#));
        let parsed = snapshot_from_json(&json).unwrap();
        assert_eq!(parsed, store.snapshot());
        assert_eq!(parsed[1].tiers[1].len(), 2); // 25 raw → two 10× buckets
    }

    #[test]
    fn sampler_samples_metrics_and_shuts_down_cleanly() {
        let obs = Arc::new(Obs::new());
        obs.metrics.counter("msgs").add(10);
        obs.metrics.gauge("sypd").set(0.5);
        obs.metrics.histogram("lat").record(100);
        let store = Arc::new(SeriesStore::new(64));
        let derived = vec![Derived::new("ratio", |m: &Metrics| {
            Some(m.counter("msgs").get() as f64 / 2.0)
        })];
        let sampler = Sampler::start(
            Arc::clone(&obs),
            Arc::clone(&store),
            None,
            Duration::from_millis(5),
            derived,
        );
        let t0 = Instant::now();
        while store.tail("msgs", 0).0.len() < 2 && t0.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(2));
        }
        sampler.shutdown();
        let names = store.names();
        for want in ["msgs", "msgs.rate", "sypd", "lat.p50", "lat.p95", "lat.count", "ratio"] {
            assert!(names.iter().any(|n| n == want), "missing series {want}: {names:?}");
        }
        let (points, _) = store.tail("msgs", 0);
        assert!(points.iter().all(|&(_, v)| v == 10.0));
        let (ratio, _) = store.tail("ratio", 0);
        assert_eq!(ratio[0].1, 5.0);
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for name in ["sim.sypd", "serve.latency_us.p95", "", "x"] {
            let s = shard_of(name);
            assert!(s < N_SHARDS);
            assert_eq!(s, shard_of(name));
        }
    }
}
