//! Trace export: Chrome Trace Event Format + collapsed-stack flamegraphs.
//!
//! The per-rank span trees and comm-event timelines become a single
//! timeline file a human can open in Perfetto (`ui.perfetto.dev`) or
//! `chrome://tracing`: one `pid` per rank, one `tid` per OS thread,
//! complete (`X`) events for spans and blocking receives, instant (`i`)
//! events for resilience markers (fault injections, health verdicts,
//! rollbacks, checkpoint begin/commit), and flow (`s`/`f`) arrows pairing
//! each send with the receive that consumed it — coupler rearrangement
//! waits are visible *between* rank tracks, which is exactly the §6.2
//! imbalance diagnosis the paper does with per-process timers.
//!
//! The same span data also exports as collapsed stacks
//! (`rank0;atm_run;dycore 1234` — weight is self time in µs), the input
//! format of `inferno-flamegraph` and Brendan Gregg's `flamegraph.pl`.
//!
//! All timestamps are microseconds since the shared
//! [`trace_epoch`](ap3esm_comm::events::trace_epoch), so every rank (each
//! an OS thread of one process) lands on one aligned timeline.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ap3esm_comm::events::{trace_now_us, CommEvent, CommEventKind};

use crate::json::Json;
use crate::msgflow::{pair_fifo, FlowEvent};
use crate::rankagg::RankTree;

/// Chrome-trace phase of a recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// `ph:"X"` — a span with a start and a duration.
    Complete,
    /// `ph:"i"` — a point event (thread scope).
    Instant,
}

/// One event recorded by a [`TraceSink`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub name: String,
    pub ph: TracePhase,
    /// Microseconds since the shared trace epoch.
    pub ts_us: u64,
    /// Duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// Track id within the rank (stable small integer per OS thread).
    pub tid: u64,
}

/// Small stable per-thread track id. Comm events use track 0; span tracks
/// start at 1.
pub fn current_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Default per-rank sink capacity (span events; instants are bounded
/// separately so a span flood cannot evict the rare resilience markers).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;
const INSTANT_CAPACITY: usize = 4_096;

/// A bounded per-rank buffer of trace events, fed by the span profiler.
///
/// Spans and instants are stored separately: span events stop being
/// recorded once `capacity` is reached (the drop count is reported by
/// [`TraceSink::take`]), while instant events — fault injections, health
/// verdicts, rollbacks — have their own small bound and survive even when
/// the span buffer is full.
pub struct TraceSink {
    capacity: usize,
    spans: Mutex<Vec<TraceEvent>>,
    instants: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new(DEFAULT_TRACE_CAPACITY)
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl TraceSink {
    pub fn new(capacity: usize) -> Self {
        TraceSink {
            capacity,
            spans: Mutex::new(Vec::new()),
            instants: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Record a completed span (called from the profiler's guard drop).
    pub fn record_complete(&self, name: &str, ts_us: u64, dur_us: u64) {
        let mut spans = lock(&self.spans);
        if spans.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        spans.push(TraceEvent {
            name: name.to_string(),
            ph: TracePhase::Complete,
            ts_us,
            dur_us,
            tid: current_tid(),
        });
    }

    /// Record a point event at the current trace time.
    pub fn record_instant(&self, name: &str) {
        let mut instants = lock(&self.instants);
        if instants.len() >= INSTANT_CAPACITY {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        instants.push(TraceEvent {
            name: name.to_string(),
            ph: TracePhase::Instant,
            ts_us: trace_now_us(),
            dur_us: 0,
            tid: current_tid(),
        });
    }

    /// Drain every recorded event (spans then instants) plus the number of
    /// events lost to the capacity bounds.
    pub fn take(&self) -> (Vec<TraceEvent>, u64) {
        let mut events = std::mem::take(&mut *lock(&self.spans));
        events.append(&mut lock(&self.instants));
        (events, self.dropped.swap(0, Ordering::Relaxed))
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        lock(&self.spans).len() + lock(&self.instants).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// --- wire encoding (ship one rank's events to the reporting rank) -------

/// Encode events for a byte-vector `gather` to the reporting rank:
/// `[u8 ph][u32 name len][name][u64 ts][u64 dur][u64 tid]` per event.
pub fn encode_events(events: &[TraceEvent]) -> Vec<u8> {
    let mut out = Vec::new();
    for e in events {
        out.push(match e.ph {
            TracePhase::Complete => 0u8,
            TracePhase::Instant => 1,
        });
        out.extend_from_slice(&(e.name.len() as u32).to_le_bytes());
        out.extend_from_slice(e.name.as_bytes());
        out.extend_from_slice(&e.ts_us.to_le_bytes());
        out.extend_from_slice(&e.dur_us.to_le_bytes());
        out.extend_from_slice(&e.tid.to_le_bytes());
    }
    out
}

/// Inverse of [`encode_events`]; stops cleanly at a truncated record.
pub fn decode_events(mut buf: &[u8]) -> Vec<TraceEvent> {
    let mut out = Vec::new();
    while buf.len() >= 5 {
        let ph = match buf[0] {
            0 => TracePhase::Complete,
            _ => TracePhase::Instant,
        };
        let len = u32::from_le_bytes(buf[1..5].try_into().unwrap()) as usize;
        if buf.len() < 5 + len + 24 {
            break;
        }
        buf = &buf[5..];
        let name = String::from_utf8_lossy(&buf[..len]).into_owned();
        buf = &buf[len..];
        let ts_us = u64::from_le_bytes(buf[..8].try_into().unwrap());
        let dur_us = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        let tid = u64::from_le_bytes(buf[16..24].try_into().unwrap());
        buf = &buf[24..];
        out.push(TraceEvent {
            name,
            ph,
            ts_us,
            dur_us,
            tid,
        });
    }
    out
}

// --- chrome-trace building ---------------------------------------------

/// The comm-event track within each rank's process group.
const COMM_TID: u64 = 0;

struct Row {
    pid: u64,
    tid: u64,
    ts: u64,
    dur: u64,
    ph: char,
    name: String,
    /// Flow-binding id for `s`/`f` rows.
    flow: Option<u64>,
    /// For comm-track `X` rows: `(kind label, peer, tag, bytes)`, emitted
    /// as an `args` object so offline analyzers (the critical-path CLI on
    /// a bare trace file) can rebuild the event without parsing the
    /// human-facing row name.
    comm: Option<(&'static str, usize, u64, u64)>,
}

/// Builds one Chrome Trace Event Format file from per-rank span events and
/// comm events; `pid` = rank, `tid` = thread track within the rank.
#[derive(Default)]
pub struct ChromeTrace {
    procs: Vec<(u64, String)>,
    rows: Vec<Row>,
    comms: Vec<(u64, CommEvent)>,
}

impl ChromeTrace {
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Label rank `pid`'s process group (a `process_name` metadata event).
    pub fn add_process(&mut self, pid: usize, name: &str) {
        self.procs.push((pid as u64, name.to_string()));
    }

    /// Add one rank's recorded span/instant events.
    pub fn add_span_events(&mut self, pid: usize, events: &[TraceEvent]) {
        for e in events {
            self.rows.push(Row {
                pid: pid as u64,
                tid: e.tid,
                ts: e.ts_us,
                dur: e.dur_us,
                ph: match e.ph {
                    TracePhase::Complete => 'X',
                    TracePhase::Instant => 'i',
                },
                name: e.name.clone(),
                flow: None,
                comm: None,
            });
        }
    }

    /// Add one rank's comm-event timeline. Each event becomes a complete
    /// event on the rank's comm track; matching send/recv pairs are joined
    /// later by flow arrows (see [`ChromeTrace::to_json`]).
    pub fn add_comm_events(&mut self, pid: usize, events: &[CommEvent]) {
        for e in events {
            let name = match e.kind {
                CommEventKind::Send => format!("send→{} tag {:#x}", e.peer, e.tag),
                CommEventKind::Recv => format!("recv←{} tag {:#x}", e.peer, e.tag),
                CommEventKind::Timeout => {
                    format!("timeout←{} tag {:#x}", e.peer, e.tag)
                }
                CommEventKind::Stale => format!("stale⊘{} ×{}", e.peer, e.bytes),
            };
            self.rows.push(Row {
                pid: pid as u64,
                tid: COMM_TID,
                ts: e.ts_us,
                // Render sends with a sliver of width so they are visible.
                dur: e.dur_us.max(1),
                ph: 'X',
                name,
                flow: None,
                comm: Some((e.kind.label(), e.peer, e.tag, e.bytes)),
            });
            self.comms.push((pid as u64, e.clone()));
        }
    }

    /// Pair the k-th send on `(src, dst, tag)` with the k-th recv on the
    /// same channel (the mailbox is FIFO per channel, so arrival order is
    /// pairing order — see [`crate::msgflow::pair_fifo`], the shared
    /// implementation) and emit `s`/`f` flow rows joining the two tracks.
    fn build_flows(&mut self) {
        let events: Vec<FlowEvent> = self
            .comms
            .iter()
            .filter_map(|(pid, e)| FlowEvent::from_comm(*pid as usize, e))
            .collect();
        let pairing = pair_fifo(&events);
        for (i, p) in pairing.pairs.iter().enumerate() {
            let flow_id = i as u64 + 1;
            let name = format!("msg tag {:#x}", p.tag);
            self.rows.push(Row {
                pid: p.src as u64,
                tid: COMM_TID,
                ts: p.send_ts_us,
                dur: 0,
                ph: 's',
                name: name.clone(),
                flow: Some(flow_id),
                comm: None,
            });
            self.rows.push(Row {
                pid: p.dst as u64,
                tid: COMM_TID,
                // Bind the arrow to the end of the blocking window, the
                // moment the message was consumed.
                ts: p.delivered_us(),
                dur: 0,
                ph: 'f',
                name,
                flow: Some(flow_id),
                comm: None,
            });
        }
        self.comms.clear();
    }

    /// Serialise as `{"traceEvents":[...]}`. Events are ordered by
    /// `(pid, tid, ts)` with longer events first on ties, so timestamps are
    /// monotone per track and parents precede children.
    pub fn to_json(&mut self) -> String {
        self.build_flows();
        self.rows
            .sort_by(|a, b| (a.pid, a.tid, a.ts, b.dur).cmp(&(b.pid, b.tid, b.ts, a.dur)));
        let mut events: Vec<Json> = Vec::with_capacity(self.procs.len() + self.rows.len());
        for (pid, name) in &self.procs {
            let mut args = Json::obj();
            args.set("name", name.as_str().into());
            let mut o = Json::obj();
            o.set("name", "process_name".into())
                .set("ph", "M".into())
                .set("ts", 0u64.into())
                .set("pid", (*pid).into())
                .set("tid", COMM_TID.into())
                .set("args", args);
            events.push(o);
        }
        for row in &self.rows {
            let mut o = Json::obj();
            o.set("name", row.name.as_str().into())
                .set("ph", row.ph.to_string().as_str().into())
                .set("ts", row.ts.into())
                .set("pid", row.pid.into())
                .set("tid", row.tid.into());
            match row.ph {
                'X' => {
                    o.set("dur", row.dur.into());
                    if let Some((kind, peer, tag, bytes)) = row.comm {
                        let mut args = Json::obj();
                        args.set("kind", kind.into())
                            .set("peer", peer.into())
                            .set("tag", tag.into())
                            .set("bytes", bytes.into());
                        o.set("args", args);
                    }
                }
                'i' => {
                    o.set("s", "t".into()); // thread-scoped instant
                }
                's' | 'f' => {
                    o.set("id", row.flow.unwrap_or(0).into());
                    o.set("cat", "comm".into());
                    if row.ph == 'f' {
                        o.set("bp", "e".into()); // bind to enclosing slice
                    }
                }
                _ => {}
            }
            events.push(o);
        }
        let mut root = Json::obj();
        root.set("traceEvents", Json::Arr(events));
        root.set("displayTimeUnit", "ms".into());
        // Build/run stamp (`ap3esm-obs/5` reports carry the same object),
        // so a Perfetto timeline can be traced back to its exact build.
        root.set("metadata", crate::perf::BuildInfo::current().to_json());
        root.to_string()
    }

    /// Write `<dir>/trace-<name>.json`; returns the path.
    pub fn write_to(&mut self, dir: impl AsRef<Path>, name: &str) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("trace-{name}.json"));
        std::fs::write(&path, self.to_json() + "\n")?;
        Ok(path)
    }

    /// Write to the workspace default sink, `target/obs/`.
    pub fn write(&mut self, name: &str) -> std::io::Result<PathBuf> {
        self.write_to(crate::report::default_dir(), name)
    }
}

// --- collapsed-stack flamegraph export ---------------------------------

/// Render per-rank span trees as collapsed stacks: one line per tree node,
/// `rank0;atm_run;dycore 1234`, weighted by self time in µs — the input of
/// `inferno-flamegraph` / `flamegraph.pl`.
pub fn folded_stacks(trees: &[RankTree]) -> String {
    let mut out = String::new();
    for tree in trees {
        for s in &tree.spans {
            out.push_str(&format!(
                "rank{};{} {}\n",
                tree.rank,
                s.path.replace('/', ";"),
                (s.self_s * 1e6).round().max(0.0) as u64
            ));
        }
    }
    out
}

/// Write `<dir>/trace-<name>.folded`; returns the path.
pub fn write_folded_to(
    dir: impl AsRef<Path>,
    name: &str,
    folded: &str,
) -> std::io::Result<PathBuf> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("trace-{name}.folded"));
    std::fs::write(&path, folded)?;
    Ok(path)
}

/// Write the folded stacks to the workspace default sink, `target/obs/`.
pub fn write_folded(name: &str, folded: &str) -> std::io::Result<PathBuf> {
    write_folded_to(crate::report::default_dir(), name, folded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanSnapshot;

    fn span_ev(name: &str, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            ph: TracePhase::Complete,
            ts_us: ts,
            dur_us: dur,
            tid: 1,
        }
    }

    fn comm_ev(kind: CommEventKind, ts: u64, dur: u64, peer: usize, tag: u64) -> CommEvent {
        CommEvent {
            kind,
            ts_us: ts,
            dur_us: dur,
            peer,
            tag,
            bytes: 8,
        }
    }

    #[test]
    fn sink_bounds_spans_but_keeps_instants() {
        let sink = TraceSink::new(2);
        sink.record_complete("a", 0, 1);
        sink.record_complete("b", 1, 1);
        sink.record_complete("c", 2, 1); // over capacity: dropped
        sink.record_instant("fault.kill"); // separate bound: kept
        let (events, dropped) = sink.take();
        assert_eq!(dropped, 1);
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "fault.kill"]);
        assert!(sink.is_empty());
    }

    #[test]
    fn events_roundtrip_through_the_wire_encoding() {
        let events = vec![
            span_ev("atm_run/dycore", 10, 500),
            TraceEvent {
                name: "rollback".into(),
                ph: TracePhase::Instant,
                ts_us: 999,
                dur_us: 0,
                tid: 3,
            },
        ];
        assert_eq!(decode_events(&encode_events(&events)), events);
        // Truncated buffers decode the complete prefix, never panic.
        let bytes = encode_events(&events);
        assert_eq!(decode_events(&bytes[..bytes.len() - 3]).len(), 1);
    }

    #[test]
    fn chrome_trace_orders_tracks_and_pairs_flows() {
        let mut ct = ChromeTrace::new();
        ct.add_process(0, "rank 0");
        ct.add_process(1, "rank 1");
        ct.add_span_events(0, &[span_ev("outer", 5, 100), span_ev("inner", 10, 20)]);
        ct.add_comm_events(0, &[comm_ev(CommEventKind::Send, 12, 0, 1, 7)]);
        ct.add_comm_events(1, &[comm_ev(CommEventKind::Recv, 13, 6, 0, 7)]);
        let json = ct.to_json();
        // Both pids, metadata, a flow start and a bound flow finish.
        assert!(json.starts_with(r#"{"traceEvents":["#));
        assert!(json.contains(r#""ph":"M""#));
        assert!(json.contains(r#""ph":"s""#));
        assert!(json.contains(r#""ph":"f""#));
        assert!(json.contains(r#""bp":"e""#));
        assert!(json.contains(r#""send→1 tag 0x7""#));
        assert!(json.contains(r#""recv←0 tag 0x7""#));
        // Parent (same ts would tie-break by dur) precedes the child.
        let outer = json.find(r#""outer""#).unwrap();
        let inner = json.find(r#""inner""#).unwrap();
        assert!(outer < inner);
    }

    #[test]
    fn folded_stacks_weight_by_self_time() {
        let trees = vec![RankTree {
            rank: 2,
            dropped: 0,
            spans: vec![
                SpanSnapshot {
                    path: "a".into(),
                    name: "a".into(),
                    depth: 0,
                    total_s: 0.003,
                    self_s: 0.001,
                    count: 1,
                },
                SpanSnapshot {
                    path: "a/b".into(),
                    name: "b".into(),
                    depth: 1,
                    total_s: 0.002,
                    self_s: 0.002,
                    count: 2,
                },
            ],
        }];
        let folded = folded_stacks(&trees);
        assert_eq!(folded, "rank2;a 1000\nrank2;a;b 2000\n");
    }

    #[test]
    fn trace_files_land_in_the_sink_directory() {
        let dir = std::env::temp_dir().join(format!("ap3esm-trace-{}", std::process::id()));
        let mut ct = ChromeTrace::new();
        ct.add_process(0, "rank 0");
        ct.add_span_events(0, &[span_ev("x", 0, 10)]);
        let path = ct.write_to(&dir, "unit").unwrap();
        assert_eq!(path.file_name().unwrap(), "trace-unit.json");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains(r#""traceEvents""#));
        let fpath = write_folded_to(&dir, "unit", "rank0;x 10\n").unwrap();
        assert_eq!(fpath.file_name().unwrap(), "trace-unit.folded");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
