//! # AP3ESM unified observability layer (`ap3esm-obs`)
//!
//! The paper's §6.2 measurement methodology in library form, shared by the
//! coupled driver, the component dycores, the coupler and the I/O layer:
//!
//! * [`span`] — a hierarchical wall-clock profiler: nestable named spans
//!   form a call tree (GPTL-analogue), with per-node total time, self time
//!   and call counts. Entering a span when profiling is disabled costs one
//!   relaxed atomic load.
//! * [`metrics`] — a registry of named counters, gauges and log-bucketed
//!   histograms (p50/p95/max), all atomic on the hot path.
//! * [`rankagg`] — per-section max/min/mean across the ranks of a
//!   [`World`](ap3esm_comm::World) plus the load-imbalance ratio, following
//!   the paper's rule of recording "the maximum value across all MPI ranks".
//! * [`report`] — a run-report sink that renders the span tree for humans
//!   and writes one machine-readable JSON object per run to
//!   `target/obs/run-<name>.json`.
//! * [`trace`] — per-rank timeline export: Chrome Trace Event Format
//!   (`target/obs/trace-<name>.json`, openable in Perfetto) with one `pid`
//!   per rank, span `X` events, resilience instant events and send/recv
//!   flow arrows, plus collapsed-stack flamegraph output
//!   (`trace-<name>.folded` for `inferno`/`flamegraph.pl`).
//! * [`tsdb`] — continuous telemetry: a lock-sharded in-process time-series
//!   store with ring-buffered downsampling tiers (raw → 10× → 100×) and a
//!   [`Sampler`](tsdb::Sampler) thread that snapshots the registry on a
//!   configurable cadence, so week-long runs keep bounded in-flight history.
//! * [`openmetrics`] — OpenMetrics text exposition of the registry and
//!   series, a strict parser for CI validation, and a std-only blocking
//!   HTTP scrape endpoint (opt-in `--metrics-addr`).
//! * [`alert`] — declarative SLO/anomaly rules (threshold, rolling-mean
//!   deviation, rate-of-change) evaluated on the sampled series; firings
//!   land on stderr, in the chrome trace as instants, and in the run
//!   report's `"alerts"` array.
//! * [`msgflow`] — the shared FIFO send/recv pairing used by the trace
//!   exporter's flow arrows, the flight recorder's unpaired-send analysis
//!   and the critical-path analyzer: the k-th send on a `(src, dst, tag)`
//!   channel matches the k-th recv, deterministically.
//! * [`critpath`] — the "where is my SYPD going?" analyzer: replays
//!   per-rank span timelines and comm-event rings into a cross-rank
//!   activity graph, extracts the critical path, classifies off-path waits
//!   Scalasca-style (late-sender, late-receiver, collective, timeout),
//!   costs sections against the [`ap3esm_machine`] α–β model, and projects
//!   what-if SYPD gains from shrinking a named section.
//! * [`perf`] — the performance observatory: the schema-versioned
//!   `ap3esm-bench/1` BENCH-file format (`BENCH_<n>.json` at the repo
//!   root, one point per PR), shared build/machine stamping
//!   ([`perf::BuildInfo`], also embedded in run reports and traces), and
//!   the trajectory regression gate ([`perf::gate`]).
//!
//! Leaf crates instrument hot paths through the free functions below
//! ([`span()`], [`counter_add()`], …), which act on a **thread-local active
//! [`Obs`]** installed by the driver with [`install`]. A rank thread with no
//! active `Obs` (every unit test of the physics crates, and any production
//! run that did not opt in) pays only a thread-local read per call, so the
//! bitwise trajectory of the model is unchanged whether or not profiling is
//! on — timing is observed, never consulted.

pub mod alert;
pub mod critpath;
pub mod flightrec;
pub mod json;
pub mod leaderboard;
pub mod metrics;
pub mod msgflow;
pub mod openmetrics;
pub mod perf;
pub mod rankagg;
pub mod report;
pub mod span;
pub mod trace;
pub mod tsdb;

pub use alert::{
    parse_rules, serve_rules, sim_rules, AlertEngine, AlertEvent, Rule, RuleKind, RuleStatus,
};
pub use critpath::{Analysis, Analyzer, RankTimeline, WaitClass};
pub use flightrec::{
    analyze, dump_bundle, dump_bundle_to, BundleSpec, FlightRecorder, FrEvent, FrKind,
    Postmortem, DEFAULT_FLIGHT_CAPACITY,
};
pub use leaderboard::{Leaderboard, LeaderboardRow, LEADERBOARD_SCHEMA};
pub use metrics::{Counter, Gauge, Histogram, Metrics, MetricSnapshot};
pub use msgflow::{
    pair_fifo, pair_rings, FlowEvent, FlowKind, FlowPairing, PairedMessage, UnpairedSend,
};
pub use openmetrics::MetricsServer;
pub use perf::{BenchFile, BuildInfo, Direction, Stat};
pub use rankagg::{aggregate_sections, gather_span_trees, RankTree, SectionStats};
pub use report::{alert_event_json, CommSummary, ReportBuilder, RunReport};
pub use span::{Profiler, SpanGuard, SpanSnapshot};
pub use trace::{ChromeTrace, TraceEvent, TracePhase, TraceSink};
pub use tsdb::{Derived, Sampler, SeriesSnapshot, SeriesStore};

use std::cell::RefCell;
use std::sync::Arc;

/// One rank's observability state: a span profiler plus a metrics registry.
#[derive(Default)]
pub struct Obs {
    pub profiler: Profiler,
    pub metrics: Metrics,
}

impl Obs {
    /// A fully enabled instance.
    pub fn new() -> Self {
        Obs::default()
    }

    /// An instance whose profiler ignores every span (for overhead tests).
    pub fn disabled() -> Self {
        Obs {
            profiler: Profiler::disabled(),
            metrics: Metrics::default(),
        }
    }
}

thread_local! {
    static ACTIVE: RefCell<Vec<Arc<Obs>>> = const { RefCell::new(Vec::new()) };
}

/// Makes `obs` the calling thread's active instance until the guard drops;
/// installs nest (the previous instance is restored).
pub fn install(obs: Arc<Obs>) -> InstallGuard {
    ACTIVE.with(|a| a.borrow_mut().push(obs));
    InstallGuard { _private: () }
}

/// RAII guard returned by [`install`].
pub struct InstallGuard {
    _private: (),
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| {
            a.borrow_mut().pop();
        });
    }
}

/// The calling thread's active instance, if one is installed.
pub fn active() -> Option<Arc<Obs>> {
    ACTIVE.with(|a| a.borrow().last().cloned())
}

/// Opens a span on the active profiler; a no-op guard when none is
/// installed or profiling is disabled.
pub fn span(name: &str) -> SpanGuard {
    match active() {
        Some(obs) => obs.profiler.enter(name),
        None => SpanGuard::inactive(),
    }
}

/// Adds to a named counter on the active metrics registry (no-op without
/// an active instance).
pub fn counter_add(name: &str, delta: u64) {
    if let Some(obs) = active() {
        obs.metrics.counter(name).add(delta);
    }
}

/// Sets a named gauge on the active metrics registry.
pub fn gauge_set(name: &str, value: f64) {
    if let Some(obs) = active() {
        obs.metrics.gauge(name).set(value);
    }
}

/// Records a value into a named histogram on the active metrics registry.
pub fn histogram_record(name: &str, value: u64) {
    if let Some(obs) = active() {
        obs.metrics.histogram(name).record(value);
    }
}

/// Records an instant trace event (fault injection, health verdict,
/// rollback, checkpoint begin/commit…) on the active profiler's trace
/// sink; a no-op without an active instance or with tracing off.
pub fn instant(name: &str) {
    if let Some(obs) = active() {
        obs.profiler.record_instant(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_functions_are_noops_without_install() {
        // Must not panic or allocate state anywhere observable.
        let _g = span("orphan");
        counter_add("orphan", 1);
        gauge_set("orphan", 1.0);
        histogram_record("orphan", 1);
        assert!(active().is_none());
    }

    #[test]
    fn install_scopes_nest_and_restore() {
        let a = Arc::new(Obs::new());
        let b = Arc::new(Obs::new());
        {
            let _ga = install(Arc::clone(&a));
            assert!(Arc::ptr_eq(&active().unwrap(), &a));
            {
                let _gb = install(Arc::clone(&b));
                assert!(Arc::ptr_eq(&active().unwrap(), &b));
                counter_add("hits", 2);
            }
            assert!(Arc::ptr_eq(&active().unwrap(), &a));
            counter_add("hits", 1);
        }
        assert!(active().is_none());
        assert_eq!(a.metrics.counter("hits").get(), 1);
        assert_eq!(b.metrics.counter("hits").get(), 2);
    }

    #[test]
    fn spans_route_to_the_installed_profiler() {
        let obs = Arc::new(Obs::new());
        {
            let _i = install(Arc::clone(&obs));
            let _outer = span("outer");
            let _inner = span("inner");
        }
        let snap = obs.profiler.snapshot();
        let paths: Vec<&str> = snap.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["outer", "outer/inner"]);
    }
}
