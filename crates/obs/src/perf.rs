//! Performance observatory: the `ap3esm-bench/1` schema and trajectory.
//!
//! The paper's headline artifact is a speed number (112–184× MPE on ATM,
//! §5.2/§6.2), and tracking that number across engineering iterations is
//! what makes a speed claim auditable. This module is the offline half of
//! the observatory: a schema-versioned benchmark point ([`BenchFile`],
//! written as `BENCH_<n>.json` at the repository root), the machine/build
//! metadata every point and run report is stamped with ([`BuildInfo`]),
//! and the historical trajectory loader the [`gate`] judges new points
//! against. The online half is the existing `obs` report/tsdb vocabulary:
//! every metric in a BENCH file is mirrored as a `perf.*` gauge, so live
//! runs and offline trajectories speak one language.

pub mod gate;

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::OnceLock;

use crate::json::Json;

/// Schema tag stamped into every BENCH file (bump on breaking changes).
pub const BENCH_SCHEMA: &str = "ap3esm-bench/1";

// --- build / machine metadata ------------------------------------------

/// Build and machine metadata shared by BENCH files, run reports
/// (`ap3esm-obs/5`) and chrome-trace exports, so any artifact can be
/// cross-referenced to the exact code and host that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildInfo {
    /// `git rev-parse --short=12 HEAD` of the workspace ("unknown" outside
    /// a checkout).
    pub git_sha: String,
    /// `rustc --version` one-liner ("unknown" if rustc is not on PATH).
    pub rustc: String,
    /// Hostname (HOSTNAME env, then /etc/hostname, then "unknown").
    pub host: String,
    /// `std::thread::available_parallelism()` of the measuring host.
    pub threads: u64,
    /// `std::env::consts::OS "/" ARCH`.
    pub os: String,
}

impl BuildInfo {
    /// Collect fresh metadata (spawns `git`/`rustc`; prefer
    /// [`BuildInfo::current`] which caches one collection per process).
    pub fn collect() -> BuildInfo {
        let run = |cmd: &str, args: &[&str], cwd: Option<&Path>| -> Option<String> {
            let mut c = Command::new(cmd);
            c.args(args);
            if let Some(d) = cwd {
                c.current_dir(d);
            }
            let out = c.output().ok()?;
            if !out.status.success() {
                return None;
            }
            let s = String::from_utf8_lossy(&out.stdout).trim().to_string();
            (!s.is_empty()).then_some(s)
        };
        let root = workspace_root();
        BuildInfo {
            git_sha: run("git", &["rev-parse", "--short=12", "HEAD"], Some(&root))
                .unwrap_or_else(|| "unknown".into()),
            rustc: run("rustc", &["--version"], None).unwrap_or_else(|| "unknown".into()),
            host: std::env::var("HOSTNAME")
                .ok()
                .filter(|h| !h.is_empty())
                .or_else(|| {
                    std::fs::read_to_string("/etc/hostname")
                        .ok()
                        .map(|h| h.trim().to_string())
                        .filter(|h| !h.is_empty())
                })
                .unwrap_or_else(|| "unknown".into()),
            threads: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
            os: format!("{}/{}", std::env::consts::OS, std::env::consts::ARCH),
        }
    }

    /// The process-wide cached instance (collected once, on first use).
    pub fn current() -> &'static BuildInfo {
        static CACHE: OnceLock<BuildInfo> = OnceLock::new();
        CACHE.get_or_init(BuildInfo::collect)
    }

    /// A fixed instance for golden/schema tests (deterministic bytes).
    pub fn fixed_for_tests() -> BuildInfo {
        BuildInfo {
            git_sha: "0123456789ab".into(),
            rustc: "rustc 1.0.0-test".into(),
            host: "testhost".into(),
            threads: 8,
            os: "linux/x86_64".into(),
        }
    }

    /// JSON object form (deterministic field order).
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("git_sha", self.git_sha.as_str().into())
            .set("rustc", self.rustc.as_str().into())
            .set("host", self.host.as_str().into())
            .set("threads", self.threads.into())
            .set("os", self.os.as_str().into());
        o
    }

    /// Parse the object written by [`BuildInfo::to_json`].
    pub fn from_json(v: &Json) -> Result<BuildInfo, String> {
        let s = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("build info missing string field {key:?}"))
        };
        Ok(BuildInfo {
            git_sha: s("git_sha")?,
            rustc: s("rustc")?,
            host: s("host")?,
            threads: v
                .get("threads")
                .and_then(Json::as_u64)
                .ok_or("build info missing threads")?,
            os: s("os")?,
        })
    }
}

// --- per-metric statistics ---------------------------------------------

/// Which direction of change is an improvement for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Costs: ns/gridpoint, latency, wall seconds.
    LowerIsBetter,
    /// Rates: SYPD, throughput.
    HigherIsBetter,
    /// Recorded for context, never gated (byte counts, shed rates whose
    /// "goodness" depends on the offered load).
    Informational,
}

impl Direction {
    pub fn label(&self) -> &'static str {
        match self {
            Direction::LowerIsBetter => "lower",
            Direction::HigherIsBetter => "higher",
            Direction::Informational => "info",
        }
    }

    pub fn from_label(s: &str) -> Result<Direction, String> {
        match s {
            "lower" => Ok(Direction::LowerIsBetter),
            "higher" => Ok(Direction::HigherIsBetter),
            "info" => Ok(Direction::Informational),
            other => Err(format!("unknown direction {other:?}")),
        }
    }
}

/// One measured metric: a central value plus enough dispersion context
/// (`n` samples, sample stddev) for the gate to build a noise band.
#[derive(Debug, Clone, PartialEq)]
pub struct Stat {
    pub value: f64,
    /// Unit string ("ns/gp", "sypd", "us", "s", "bytes", "ratio"…).
    pub unit: String,
    /// Samples behind `value` (1 for single-shot measurements).
    pub n: u64,
    /// Sample standard deviation of the underlying samples (0 when n = 1).
    pub stddev: f64,
    pub better: Direction,
}

impl Stat {
    /// Single-shot measurement (n = 1, no dispersion information).
    pub fn single(value: f64, unit: &str, better: Direction) -> Stat {
        Stat {
            value,
            unit: unit.to_string(),
            n: 1,
            stddev: 0.0,
            better,
        }
    }

    /// Measurement backed by `n` samples with known sample stddev.
    pub fn sampled(value: f64, unit: &str, n: u64, stddev: f64, better: Direction) -> Stat {
        Stat {
            value,
            unit: unit.to_string(),
            n,
            stddev,
            better,
        }
    }

    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("value", self.value.into())
            .set("unit", self.unit.as_str().into())
            .set("n", self.n.into())
            .set("stddev", self.stddev.into())
            .set("better", self.better.label().into());
        o
    }

    pub fn from_json(v: &Json) -> Result<Stat, String> {
        Ok(Stat {
            value: v
                .get("value")
                .and_then(Json::as_f64)
                .ok_or("stat missing value")?,
            unit: v
                .get("unit")
                .and_then(Json::as_str)
                .ok_or("stat missing unit")?
                .to_string(),
            n: v.get("n").and_then(Json::as_u64).ok_or("stat missing n")?,
            stddev: v
                .get("stddev")
                .and_then(Json::as_f64)
                .ok_or("stat missing stddev")?,
            better: Direction::from_label(
                v.get("better")
                    .and_then(Json::as_str)
                    .ok_or("stat missing better")?,
            )?,
        })
    }
}

// --- the BENCH file -----------------------------------------------------

/// One point of the performance trajectory: everything `perf_trajectory`
/// measured on one invocation, stamped with build metadata. Serialised as
/// `BENCH_<seq>.json`; each PR commits the point it measured, so the repo
/// root accumulates the project's speed history.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchFile {
    /// Suite name ("perf_trajectory" for the canonical quick suite;
    /// criterion benches reuse the schema with their own names under
    /// `target/experiments/`).
    pub name: String,
    /// Trajectory sequence number (the `<n>` in `BENCH_<n>.json`; 0 for
    /// non-trajectory points).
    pub seq: u64,
    /// Unix seconds at emission (0 in deterministic tests).
    pub created_unix: u64,
    pub build: BuildInfo,
    /// Insertion-ordered metric catalog.
    pub metrics: Vec<(String, Stat)>,
}

impl BenchFile {
    pub fn new(name: &str, build: BuildInfo) -> BenchFile {
        BenchFile {
            name: name.to_string(),
            seq: 0,
            created_unix: 0,
            build,
            metrics: Vec::new(),
        }
    }

    /// Append one metric (keeps insertion order; duplicate names are
    /// rejected — a suite must not measure the same thing twice).
    pub fn push(&mut self, name: &str, stat: Stat) {
        assert!(
            self.get(name).is_none(),
            "duplicate perf metric {name:?} in suite {:?}",
            self.name
        );
        self.metrics.push((name.to_string(), stat));
    }

    pub fn get(&self, name: &str) -> Option<&Stat> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("schema", BENCH_SCHEMA.into())
            .set("name", self.name.as_str().into())
            .set("seq", self.seq.into())
            .set("created_unix", self.created_unix.into())
            .set("build", self.build.to_json());
        let mut m = Json::obj();
        for (name, stat) in &self.metrics {
            m.set(name, stat.to_json());
        }
        o.set("metrics", m);
        o
    }

    /// Parse and validate one BENCH document (strict: schema tag, build
    /// block and every metric field must be present and well-typed).
    pub fn parse(text: &str) -> Result<BenchFile, String> {
        let v = Json::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema tag")?;
        if schema != BENCH_SCHEMA {
            return Err(format!(
                "schema mismatch: got {schema:?}, want {BENCH_SCHEMA:?}"
            ));
        }
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("missing name")?
            .to_string();
        let seq = v.get("seq").and_then(Json::as_u64).ok_or("missing seq")?;
        let created_unix = v
            .get("created_unix")
            .and_then(Json::as_u64)
            .ok_or("missing created_unix")?;
        let build = BuildInfo::from_json(v.get("build").ok_or("missing build")?)?;
        let metrics = match v.get("metrics") {
            Some(Json::Obj(pairs)) => {
                let mut out = Vec::with_capacity(pairs.len());
                for (k, s) in pairs {
                    out.push((
                        k.clone(),
                        Stat::from_json(s).map_err(|e| format!("metric {k:?}: {e}"))?,
                    ));
                }
                out
            }
            _ => return Err("missing metrics object".into()),
        };
        Ok(BenchFile {
            name,
            seq,
            created_unix,
            build,
            metrics,
        })
    }

    /// Write as `<dir>/BENCH_<seq>.json`, assigning the next free sequence
    /// number when `self.seq == 0`. Returns the path written.
    pub fn write_next(&mut self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        if self.seq == 0 {
            self.seq = next_seq(dir);
        }
        let path = dir.join(format!("BENCH_{}.json", self.seq));
        std::fs::write(&path, self.to_json().to_string() + "\n")?;
        Ok(path)
    }
}

/// Unix seconds now (0 if the clock is before the epoch, which only
/// happens on badly misconfigured hosts).
pub fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// The workspace root (where `BENCH_<n>.json` files live), resolved from
/// this crate's manifest so it does not depend on the caller's CWD.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Sequence numbers of the `BENCH_<n>.json` files in `dir`, ascending.
fn seqs_in(dir: &Path) -> Vec<u64> {
    let mut seqs = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("BENCH_")
                .and_then(|r| r.strip_suffix(".json"))
            {
                if let Ok(n) = num.parse::<u64>() {
                    seqs.push(n);
                }
            }
        }
    }
    seqs.sort_unstable();
    seqs
}

/// The next free trajectory sequence number in `dir` (1 when empty).
pub fn next_seq(dir: impl AsRef<Path>) -> u64 {
    seqs_in(dir.as_ref()).last().map_or(1, |last| last + 1)
}

/// Load the whole `BENCH_*.json` trajectory in `dir`, ascending by
/// sequence number. Unparseable files are errors — a corrupt trajectory
/// point must be noticed, not silently skipped.
pub fn load_trajectory(dir: impl AsRef<Path>) -> Result<Vec<BenchFile>, String> {
    let dir = dir.as_ref();
    let mut out = Vec::new();
    for seq in seqs_in(dir) {
        let path = dir.join(format!("BENCH_{seq}.json"));
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        let file =
            BenchFile::parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
        out.push(file);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file() -> BenchFile {
        let mut f = BenchFile::new("perf_trajectory", BuildInfo::fixed_for_tests());
        f.push(
            "perf.kernel.saxpy.serial.ns_per_gp",
            Stat::sampled(1.25, "ns/gp", 12, 0.05, Direction::LowerIsBetter),
        );
        f.push(
            "perf.sim.sypd",
            Stat::single(42.5, "sypd", Direction::HigherIsBetter),
        );
        f.push(
            "perf.sim.comm_bytes",
            Stat::single(1.0e6, "bytes", Direction::Informational),
        );
        f
    }

    #[test]
    fn bench_file_round_trips() {
        let mut f = sample_file();
        f.seq = 3;
        f.created_unix = 1_700_000_000;
        let text = f.to_json().to_string();
        let back = BenchFile::parse(&text).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn bench_json_is_schema_tagged_and_ordered() {
        let text = sample_file().to_json().to_string();
        assert!(text.starts_with(r#"{"schema":"ap3esm-bench/1","name":"perf_trajectory""#));
        assert!(text.contains(r#""git_sha":"0123456789ab""#));
        assert!(text.contains(r#""better":"lower""#));
        // Metric order is insertion order: saxpy before sypd before bytes.
        let a = text.find("saxpy").unwrap();
        let b = text.find("perf.sim.sypd").unwrap();
        let c = text.find("comm_bytes").unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn parse_rejects_wrong_schema_and_malformed_stats() {
        let text = sample_file()
            .to_json()
            .to_string()
            .replace("ap3esm-bench/1", "ap3esm-bench/9");
        assert!(BenchFile::parse(&text).unwrap_err().contains("schema"));
        assert!(BenchFile::parse("{}").is_err());
        assert!(BenchFile::parse("not json").is_err());
        let no_unit = sample_file().to_json().to_string().replace(
            r#""unit":"sypd","#,
            "",
        );
        assert!(BenchFile::parse(&no_unit).unwrap_err().contains("unit"));
    }

    #[test]
    #[should_panic(expected = "duplicate perf metric")]
    fn duplicate_metric_names_rejected() {
        let mut f = sample_file();
        f.push(
            "perf.sim.sypd",
            Stat::single(1.0, "sypd", Direction::HigherIsBetter),
        );
    }

    #[test]
    fn trajectory_write_load_assigns_sequence_numbers() {
        let dir = std::env::temp_dir().join(format!("ap3esm-perf-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let p1 = sample_file().write_next(&dir).unwrap();
        assert!(p1.ends_with("BENCH_1.json"));
        let mut second = sample_file();
        second.metrics[1].1.value = 44.0;
        let p2 = second.write_next(&dir).unwrap();
        assert!(p2.ends_with("BENCH_2.json"));
        assert_eq!(next_seq(&dir), 3);

        let traj = load_trajectory(&dir).unwrap();
        assert_eq!(traj.len(), 2);
        assert_eq!((traj[0].seq, traj[1].seq), (1, 2));
        assert_eq!(traj[1].get("perf.sim.sypd").unwrap().value, 44.0);

        // A corrupt point is a loud error, not a silent skip.
        std::fs::write(dir.join("BENCH_3.json"), "{broken").unwrap();
        assert!(load_trajectory(&dir).unwrap_err().contains("BENCH_3"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn build_info_collects_something_sane() {
        let b = BuildInfo::current();
        assert!(b.threads >= 1);
        assert!(!b.os.is_empty());
        assert!(!b.git_sha.is_empty());
        // Round-trips through JSON.
        let back = BuildInfo::from_json(&b.to_json()).unwrap();
        assert_eq!(&back, b);
    }
}
