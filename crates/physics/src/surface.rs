//! Bulk aerodynamic surface fluxes — the air–sea/air–land exchange the
//! coupler mediates (momentum stress, sensible and latent heat,
//! evaporation). These are also the flux formulas `ap3esm-cpl`'s flux
//! module applies on the exchange grid.

use crate::constants::{CP_DRY, L_VAP, RHO_AIR};
use crate::saturation_specific_humidity;

/// Bulk transfer coefficients (neutral, constant — LICOM/CESM defaults are
/// stability-dependent; neutral values capture the leading behaviour).
#[derive(Debug, Clone, Copy)]
pub struct BulkCoefficients {
    /// Drag coefficient (momentum).
    pub cd: f64,
    /// Sensible-heat coefficient.
    pub ch: f64,
    /// Latent-heat coefficient.
    pub ce: f64,
}

impl Default for BulkCoefficients {
    fn default() -> Self {
        BulkCoefficients {
            cd: 1.2e-3,
            ch: 1.1e-3,
            ce: 1.2e-3,
        }
    }
}

/// Surface fluxes, atmosphere-side sign convention (positive = atmosphere
/// gains, i.e. upward fluxes are positive for sensible/latent here).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfaceFluxes {
    /// Zonal wind stress on the surface (N/m²).
    pub taux: f64,
    /// Meridional wind stress (N/m²).
    pub tauy: f64,
    /// Sensible heat flux surface → atmosphere (W/m²).
    pub sensible: f64,
    /// Latent heat flux surface → atmosphere (W/m²).
    pub latent: f64,
    /// Evaporation rate (kg/m²/s).
    pub evaporation: f64,
}

/// Compute bulk fluxes from lowest-model-level state and surface state.
///
/// * `ua, va` — lowest-level winds (m/s)
/// * `ta, qa` — lowest-level temperature (K) and specific humidity (kg/kg)
/// * `ps` — surface pressure (Pa)
/// * `ts` — surface (skin/SST) temperature (K)
/// * `wet` — 1.0 over ocean, soil-moisture availability (0..1) over land
// The argument list mirrors the bulk formula's physical inputs; a struct
// would just re-name them at every call site.
#[allow(clippy::too_many_arguments)]
pub fn bulk_fluxes(
    coef: &BulkCoefficients,
    ua: f64,
    va: f64,
    ta: f64,
    qa: f64,
    ps: f64,
    ts: f64,
    wet: f64,
) -> SurfaceFluxes {
    let wind = (ua * ua + va * va).sqrt().max(0.5); // gustiness floor
    let taux = RHO_AIR * coef.cd * wind * ua;
    let tauy = RHO_AIR * coef.cd * wind * va;
    let sensible = RHO_AIR * CP_DRY * coef.ch * wind * (ts - ta);
    let qs = saturation_specific_humidity(ts, ps) * wet.clamp(0.0, 1.0);
    let evaporation = (RHO_AIR * coef.ce * wind * (qs - qa)).max(0.0);
    let latent = L_VAP * evaporation;
    SurfaceFluxes {
        taux,
        tauy,
        sensible,
        latent,
        evaporation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stress_opposes_nothing_but_scales_with_wind() {
        let c = BulkCoefficients::default();
        let calm = bulk_fluxes(&c, 1.0, 0.0, 300.0, 0.01, 1e5, 300.0, 1.0);
        let storm = bulk_fluxes(&c, 30.0, 0.0, 300.0, 0.01, 1e5, 300.0, 1.0);
        assert!(storm.taux > calm.taux * 100.0); // quadratic growth
        assert_eq!(calm.tauy, 0.0);
    }

    #[test]
    fn warm_ocean_heats_cold_air() {
        let c = BulkCoefficients::default();
        let f = bulk_fluxes(&c, 10.0, 0.0, 290.0, 0.008, 1e5, 300.0, 1.0);
        assert!(f.sensible > 0.0);
        assert!(f.latent > 0.0);
        assert!(f.evaporation > 0.0);
    }

    #[test]
    fn cold_ocean_cools_warm_air() {
        let c = BulkCoefficients::default();
        let f = bulk_fluxes(&c, 10.0, 0.0, 305.0, 0.010, 1e5, 295.0, 1.0);
        assert!(f.sensible < 0.0);
    }

    #[test]
    fn dry_land_suppresses_evaporation() {
        let c = BulkCoefficients::default();
        let wet = bulk_fluxes(&c, 10.0, 0.0, 295.0, 0.005, 1e5, 300.0, 1.0);
        let dry = bulk_fluxes(&c, 10.0, 0.0, 295.0, 0.005, 1e5, 300.0, 0.1);
        assert!(dry.latent < wet.latent);
        assert!(dry.latent >= 0.0);
    }

    #[test]
    fn typhoon_regime_magnitudes() {
        // 50 m/s winds over a warm ocean: stress of several N/m², latent
        // flux of order 1 kW/m² — the regime of Fig. 6.
        let c = BulkCoefficients::default();
        let f = bulk_fluxes(&c, 50.0, 0.0, 298.0, 0.017, 1e5, 302.0, 1.0);
        assert!(f.taux > 2.0 && f.taux < 10.0, "taux {}", f.taux);
        assert!(f.latent > 400.0 && f.latent < 3000.0, "latent {}", f.latent);
    }
}
