//! Gray two-stream radiation: the conventional scheme the AI radiation
//! diagnosis module learns to replace.
//!
//! Shortwave: top-of-atmosphere insolation `S₀·coszr` attenuated by a
//! water-vapor/cloud optical depth. Longwave: gray emissivity column with a
//! single effective emission temperature per layer; surface receives the
//! integrated downward flux. Heating rates come from flux divergence.

use crate::constants::{CP_DRY, GRAVITY, SOLAR_CONSTANT, STEFAN_BOLTZMANN};

/// Radiation result for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct RadiationResult {
    /// Surface downward shortwave flux (W/m²) — the paper's `gsw`.
    pub gsw: f64,
    /// Surface downward longwave flux (W/m²) — the paper's `glw`.
    pub glw: f64,
    /// Per-layer temperature tendency from radiative flux divergence (K/s).
    pub heating: Vec<f64>,
}

/// Gray-atmosphere radiation parameters.
#[derive(Debug, Clone, Copy)]
pub struct GrayRadiation {
    /// Shortwave mass absorption scaled by humidity (m²/kg per kg/kg).
    pub sw_k_vapor: f64,
    /// Baseline shortwave optical depth of the dry column.
    pub sw_tau_dry: f64,
    /// Longwave emissivity scale per unit column water (per kg/m²·factor).
    pub lw_k_vapor: f64,
    /// Baseline longwave emissivity per layer.
    pub lw_eps_dry: f64,
    /// Net radiative cooling baseline (K/day) applied through the column.
    pub cooling_k_per_day: f64,
}

impl Default for GrayRadiation {
    fn default() -> Self {
        GrayRadiation {
            sw_k_vapor: 90.0,
            sw_tau_dry: 0.12,
            lw_k_vapor: 0.12,
            lw_eps_dry: 0.05,
            cooling_k_per_day: 1.5,
        }
    }
}

impl GrayRadiation {
    /// Compute the column radiation. Inputs are per-level (surface first):
    /// temperature `t` (K), specific humidity `q` (kg/kg), pressure `p`
    /// (Pa), pressure thickness `dp` (Pa, positive), plus the cosine of the
    /// solar zenith angle.
    pub fn column(
        &self,
        t: &[f64],
        q: &[f64],
        p: &[f64],
        dp: &[f64],
        coszr: f64,
    ) -> RadiationResult {
        let nlev = t.len();
        assert!(q.len() == nlev && p.len() == nlev && dp.len() == nlev);
        let coszr = coszr.clamp(0.0, 1.0);

        // --- Shortwave: Beer-Lambert through the whole column ---
        let mut tau = self.sw_tau_dry;
        for k in 0..nlev {
            // Column water path of the layer: q·dp/g (kg/m²).
            tau += self.sw_k_vapor * q[k] * dp[k] / GRAVITY / 1.0e4;
        }
        let slant = if coszr > 0.0 { tau / coszr.max(0.05) } else { 0.0 };
        let gsw = if coszr > 0.0 {
            SOLAR_CONSTANT * coszr * (-slant).exp()
        } else {
            0.0
        };

        // --- Longwave: each layer emits ε·σT⁴ downward, screened by the
        // layers below it; sum at the surface. ---
        let mut glw = 0.0;
        let mut transmission = 1.0;
        for k in 0..nlev {
            let water_path = q[k] * dp[k] / GRAVITY;
            let eps = (self.lw_eps_dry + self.lw_k_vapor * water_path).min(0.9);
            glw += transmission * eps * STEFAN_BOLTZMANN * t[k].powi(4);
            transmission *= 1.0 - eps;
        }

        // --- Heating rates: SW absorption heats where it is absorbed;
        // LW gives a smooth clear-sky cooling profile. ---
        let mut heating = vec![0.0; nlev];
        let sw_absorbed = if coszr > 0.0 {
            SOLAR_CONSTANT * coszr * (1.0 - (-slant).exp())
        } else {
            0.0
        };
        let total_dp: f64 = dp.iter().sum();
        let cool = self.cooling_k_per_day / 86_400.0;
        for k in 0..nlev {
            // Distribute SW absorption by layer water-path share.
            let share = q[k] * dp[k] / (q.iter().zip(dp).map(|(a, b)| a * b).sum::<f64>() + 1e-12);
            let mass = dp[k] / GRAVITY;
            heating[k] = sw_absorbed * share * 0.3 / (CP_DRY * mass.max(1e-6))
                - cool * (dp[k] / (total_dp / nlev as f64)).min(2.0);
        }

        RadiationResult { gsw, glw, heating }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column() -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let nlev = 10;
        let t: Vec<f64> = (0..nlev).map(|k| 295.0 - 6.0 * k as f64).collect();
        let q: Vec<f64> = (0..nlev).map(|k| 0.015 * (-0.4 * k as f64).exp()).collect();
        let p: Vec<f64> = (0..nlev).map(|k| 1.0e5 - 9.0e3 * k as f64).collect();
        let dp = vec![9.0e3; nlev];
        (t, q, p, dp)
    }

    #[test]
    fn night_has_zero_shortwave() {
        let (t, q, p, dp) = column();
        let r = GrayRadiation::default().column(&t, &q, &p, &dp, 0.0);
        assert_eq!(r.gsw, 0.0);
        assert!(r.glw > 100.0, "glw = {}", r.glw);
    }

    #[test]
    fn noon_shortwave_reasonable() {
        let (t, q, p, dp) = column();
        let r = GrayRadiation::default().column(&t, &q, &p, &dp, 1.0);
        // Clear-ish tropical column: several hundred W/m² at the surface.
        assert!(r.gsw > 300.0 && r.gsw < SOLAR_CONSTANT, "gsw = {}", r.gsw);
    }

    #[test]
    fn gsw_monotone_in_coszr() {
        let (t, q, p, dp) = column();
        let rad = GrayRadiation::default();
        let mut prev = -1.0;
        for i in 0..=10 {
            let c = i as f64 / 10.0;
            let gsw = rad.column(&t, &q, &p, &dp, c).gsw;
            assert!(gsw >= prev, "gsw not monotone at coszr={c}");
            prev = gsw;
        }
    }

    #[test]
    fn moister_column_has_more_longwave_less_shortwave() {
        let (t, q, p, dp) = column();
        let rad = GrayRadiation::default();
        let dry = rad.column(&t, &q, &p, &dp, 0.8);
        let q_wet: Vec<f64> = q.iter().map(|&v| v * 2.0).collect();
        let wet = rad.column(&t, &q_wet, &p, &dp, 0.8);
        assert!(wet.glw > dry.glw);
        assert!(wet.gsw < dry.gsw);
    }

    #[test]
    fn glw_bounded_by_blackbody_surface_air() {
        let (t, q, p, dp) = column();
        let r = GrayRadiation::default().column(&t, &q, &p, &dp, 0.5);
        let bb = STEFAN_BOLTZMANN * t[0].powi(4);
        assert!(r.glw < bb, "glw {} exceeds blackbody {bb}", r.glw);
        assert!(r.glw > 0.2 * bb, "glw {} unrealistically small", r.glw);
    }

    #[test]
    fn heating_profile_finite_and_cooling_dominates_aloft() {
        let (t, q, p, dp) = column();
        let r = GrayRadiation::default().column(&t, &q, &p, &dp, 0.0);
        assert!(r.heating.iter().all(|h| h.is_finite()));
        // Pure night: all layers cool.
        assert!(r.heating.iter().all(|&h| h <= 0.0));
    }
}
