//! # AP3ESM conventional physics suite (`ap3esm-physics`)
//!
//! The "conventional physical parameterizations suite" the paper's AI
//! physics replaces (§5.2.1), plus the conventional diagnostic module that
//! remains in the AI suite. It is the supervision source for training the
//! AI modules (our stand-in for the paper's 5 km GRIST training fields) and
//! the baseline side of the F4 ablation benchmark.
//!
//! Components:
//! * [`constants`] — physical constants,
//! * [`radiation`] — gray two-stream radiative transfer (surface fluxes +
//!   layer heating rates),
//! * [`surface`] — bulk aerodynamic surface fluxes (stress, sensible,
//!   latent),
//! * [`pbl`] — K-profile boundary-layer vertical diffusion,
//! * [`convection`] — moist convective adjustment + large-scale
//!   condensation (Kessler-style precipitation),
//! * [`suite`] — the assembled column physics: one call per column per
//!   physics step, mirroring the AI suite's interface.

pub mod constants;
pub mod convection;
pub mod pbl;
pub mod radiation;
pub mod suite;
pub mod surface;

pub use suite::{Column, ColumnPhysicsOutput, ConventionalSuite, SurfaceProperties};

/// Saturation vapor pressure (Pa) over water, Tetens formula.
pub fn saturation_vapor_pressure(t_kelvin: f64) -> f64 {
    let tc = t_kelvin - 273.15;
    610.78 * (17.27 * tc / (tc + 237.3)).exp()
}

/// Saturation specific humidity (kg/kg) at temperature `t` (K) and pressure
/// `p` (Pa).
pub fn saturation_specific_humidity(t: f64, p: f64) -> f64 {
    let es = saturation_vapor_pressure(t);
    let es = es.min(0.5 * p); // guard for very low pressure
    0.622 * es / (p - 0.378 * es)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn es_at_freezing_is_611pa() {
        let es = saturation_vapor_pressure(273.15);
        assert!((es - 610.78).abs() < 1.0, "es = {es}");
    }

    #[test]
    fn es_roughly_doubles_per_10k() {
        let r = saturation_vapor_pressure(293.15) / saturation_vapor_pressure(283.15);
        assert!(r > 1.8 && r < 2.2, "ratio {r}");
    }

    #[test]
    fn qsat_sane_at_surface() {
        let q = saturation_specific_humidity(300.0, 101_325.0);
        // ~22 g/kg at 27 °C, 1 atm.
        assert!(q > 0.018 && q < 0.027, "qsat = {q}");
    }

    #[test]
    fn qsat_increases_with_temperature_decreases_with_pressure() {
        assert!(
            saturation_specific_humidity(300.0, 1e5)
                > saturation_specific_humidity(280.0, 1e5)
        );
        assert!(
            saturation_specific_humidity(300.0, 8e4)
                > saturation_specific_humidity(300.0, 1e5)
        );
    }
}
