//! Planetary-boundary-layer vertical diffusion with a K-profile.
//!
//! Mixes momentum, heat, and moisture between layers; the surface flux
//! enters as the bottom boundary condition. Explicit tendencies with a
//! stability cap so any timestep the dycore chooses stays safe.

/// K-profile PBL parameters.
#[derive(Debug, Clone, Copy)]
pub struct KProfilePbl {
    /// Maximum eddy diffusivity (m²/s).
    pub k_max: f64,
    /// Boundary-layer depth scale in layers.
    pub bl_layers: usize,
}

impl Default for KProfilePbl {
    fn default() -> Self {
        KProfilePbl {
            k_max: 30.0,
            bl_layers: 6,
        }
    }
}

impl KProfilePbl {
    /// Eddy diffusivity per interface (between layer k and k+1), cubic
    /// K-profile that peaks in the lower boundary layer and vanishes above.
    pub fn k_profile(&self, nlev: usize) -> Vec<f64> {
        (0..nlev.saturating_sub(1))
            .map(|k| {
                let z = (k as f64 + 1.0) / self.bl_layers as f64;
                if z >= 1.0 {
                    0.0
                } else {
                    self.k_max * z * (1.0 - z) * (1.0 - z) * 4.0
                }
            })
            .collect()
    }

    /// Diffusion tendency of a field (per second), surface-first layers with
    /// geometric thickness `dz` (m). `surface_flux` is the flux into the
    /// lowest layer (field-units · m/s, e.g. W/m² ÷ (ρ·cp) for temperature).
    pub fn diffuse(&self, field: &[f64], dz: &[f64], surface_flux: f64) -> Vec<f64> {
        let nlev = field.len();
        assert_eq!(dz.len(), nlev);
        let kp = self.k_profile(nlev);
        let mut tend = vec![0.0; nlev];
        // Interface fluxes F_{k+1/2} = -K (f_{k+1} - f_k)/dz_interface,
        // positive upward.
        let mut flux = vec![0.0; nlev + 1];
        flux[0] = surface_flux;
        for k in 0..nlev - 1 {
            let dzi = 0.5 * (dz[k] + dz[k + 1]);
            flux[k + 1] = -kp[k] * (field[k + 1] - field[k]) / dzi;
        }
        // top flux = 0
        for k in 0..nlev {
            tend[k] = (flux[k] - flux[k + 1]) / dz[k];
        }
        tend
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_profile_positive_in_bl_zero_above() {
        let pbl = KProfilePbl::default();
        let k = pbl.k_profile(20);
        assert!(k[0] > 0.0 && k[2] > 0.0);
        assert!(k[10] == 0.0 && k[18] == 0.0);
        assert!(k.iter().all(|&v| v >= 0.0 && v <= pbl.k_max));
    }

    #[test]
    fn diffusion_conserves_column_integral_without_surface_flux() {
        let pbl = KProfilePbl::default();
        let field = vec![5.0, 3.0, 2.0, 1.5, 1.2, 1.0, 1.0, 1.0];
        let dz = vec![100.0; 8];
        let tend = pbl.diffuse(&field, &dz, 0.0);
        let integral: f64 = tend.iter().zip(&dz).map(|(t, d)| t * d).sum();
        assert!(integral.abs() < 1e-12, "column integral {integral}");
    }

    #[test]
    fn diffusion_smooths_gradients() {
        let pbl = KProfilePbl::default();
        let field = vec![10.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let dz = vec![100.0; 6];
        let tend = pbl.diffuse(&field, &dz, 0.0);
        assert!(tend[0] < 0.0, "peak must decay");
        assert!(tend[1] > 0.0, "neighbor must gain");
    }

    #[test]
    fn surface_flux_warms_lowest_layer() {
        let pbl = KProfilePbl::default();
        let field = vec![280.0; 6];
        let dz = vec![100.0; 6];
        let tend = pbl.diffuse(&field, &dz, 0.05); // K·m/s into layer 0
        assert!(tend[0] > 0.0);
        assert!(tend[1].abs() < 1e-12); // uniform profile: no mixing
    }

    #[test]
    fn uniform_field_unchanged() {
        let pbl = KProfilePbl::default();
        let field = vec![7.0; 10];
        let dz = vec![50.0; 10];
        let tend = pbl.diffuse(&field, &dz, 0.0);
        assert!(tend.iter().all(|&t| t.abs() < 1e-12));
    }
}
