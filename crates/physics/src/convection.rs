//! Moist convective adjustment and large-scale condensation.
//!
//! The deep-convection + microphysics pair that km-scale resolution starts
//! to resolve explicitly (§3) but that coarse configurations — and the AI
//! training data generator — still need as a parameterization. Kessler-style:
//! supersaturation condenses instantly to precipitation; unstable saturated
//! columns are adjusted toward a moist-adiabatic profile.

use crate::constants::{CP_DRY, GRAVITY, L_VAP};
use crate::saturation_specific_humidity;

/// Result of the convection/condensation step for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvectionResult {
    /// Temperature tendency (K/s).
    pub dt: Vec<f64>,
    /// Moisture tendency (kg/kg/s).
    pub dq: Vec<f64>,
    /// Surface precipitation rate (kg/m²/s = mm/s water equivalent).
    pub precipitation: f64,
}

/// Scheme parameters.
#[derive(Debug, Clone, Copy)]
pub struct MoistConvection {
    /// Adjustment timescale (s).
    pub tau: f64,
    /// Critical relative humidity for large-scale condensation.
    pub rh_crit: f64,
    /// Dry-adiabatic lapse threshold for instability (K per layer, scaled).
    pub lapse_crit: f64,
}

impl Default for MoistConvection {
    fn default() -> Self {
        MoistConvection {
            tau: 3600.0,
            rh_crit: 1.0,
            lapse_crit: 9.8e-3,
        }
    }
}

impl MoistConvection {
    /// Compute tendencies for one column (surface first). `dp` are pressure
    /// thicknesses (Pa, positive), `dz` geometric thicknesses (m).
    pub fn column(
        &self,
        t: &[f64],
        q: &[f64],
        p: &[f64],
        dp: &[f64],
        dz: &[f64],
    ) -> ConvectionResult {
        let nlev = t.len();
        assert!(q.len() == nlev && p.len() == nlev && dp.len() == nlev && dz.len() == nlev);
        let mut dt = vec![0.0; nlev];
        let mut dq = vec![0.0; nlev];
        let mut precip_flux = 0.0; // kg/m²/s column-integrated condensate

        // --- Large-scale condensation: relax supersaturation away. ---
        for k in 0..nlev {
            let qsat = saturation_specific_humidity(t[k], p[k]);
            let excess = q[k] - self.rh_crit * qsat;
            if excess > 0.0 {
                let rate = excess / self.tau;
                dq[k] -= rate;
                dt[k] += L_VAP / CP_DRY * rate; // latent heating
                precip_flux += rate * dp[k] / GRAVITY;
            }
        }

        // --- Convective adjustment: where the lapse rate between adjacent
        // layers exceeds the critical value and the lower layer is nearly
        // saturated, mix enthalpy toward neutrality. ---
        for k in 0..nlev - 1 {
            let lapse = (t[k] - t[k + 1]) / (0.5 * (dz[k] + dz[k + 1]));
            let qsat = saturation_specific_humidity(t[k], p[k]);
            let rh = q[k] / qsat.max(1e-12);
            if lapse > self.lapse_crit && rh > 0.8 {
                // Move enthalpy up at the adjustment rate; conserve cp·T·dp.
                let dtemp = (lapse - self.lapse_crit) * 0.5 * (dz[k] + dz[k + 1]);
                let rate = dtemp / self.tau;
                let w_lo = dp[k];
                let w_hi = dp[k + 1];
                dt[k] -= rate * w_hi / (w_lo + w_hi);
                dt[k + 1] += rate * w_lo / (w_lo + w_hi);
                // Updraft also transports moisture upward.
                let qrate = 0.2 * (q[k] - q[k + 1]).max(0.0) / self.tau;
                dq[k] -= qrate * w_hi / (w_lo + w_hi);
                dq[k + 1] += qrate * w_lo / (w_lo + w_hi);
            }
        }

        ConvectionResult {
            dt,
            dq,
            precipitation: precip_flux.max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stable_column(nlev: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let t: Vec<f64> = (0..nlev).map(|k| 295.0 - 5.0 * k as f64).collect();
        let q: Vec<f64> = (0..nlev).map(|k| 0.008 * (-0.5 * k as f64).exp()).collect();
        let p: Vec<f64> = (0..nlev).map(|k| 1.0e5 - 9.0e3 * k as f64).collect();
        let dp = vec![9.0e3; nlev];
        let dz = vec![800.0; nlev];
        (t, q, p, dp, dz)
    }

    #[test]
    fn stable_unsaturated_column_is_quiet() {
        let (t, q, p, dp, dz) = stable_column(8);
        let r = MoistConvection::default().column(&t, &q, &p, &dp, &dz);
        assert!(r.dt.iter().all(|&v| v.abs() < 1e-12));
        assert!(r.dq.iter().all(|&v| v.abs() < 1e-12));
        assert_eq!(r.precipitation, 0.0);
    }

    #[test]
    fn supersaturation_rains_and_heats() {
        let (t, mut q, p, dp, dz) = stable_column(8);
        // Force supersaturation in layer 1.
        q[1] = saturation_specific_humidity(t[1], p[1]) * 1.5;
        let r = MoistConvection::default().column(&t, &q, &p, &dp, &dz);
        assert!(r.precipitation > 0.0);
        assert!(r.dq[1] < 0.0, "moisture must condense");
        assert!(r.dt[1] > 0.0, "latent heat must warm");
    }

    #[test]
    fn condensation_conserves_moist_enthalpy() {
        let (t, mut q, p, dp, dz) = stable_column(8);
        q[0] = saturation_specific_humidity(t[0], p[0]) * 1.3;
        q[2] = saturation_specific_humidity(t[2], p[2]) * 1.1;
        let r = MoistConvection::default().column(&t, &q, &p, &dp, &dz);
        // cp·dT + L·dq = 0 layer-wise for pure condensation.
        for k in [0, 2] {
            let balance = CP_DRY * r.dt[k] + L_VAP * r.dq[k];
            assert!(balance.abs() < 1e-10, "layer {k} imbalance {balance}");
        }
        // Column water change equals -precipitation.
        let dqdt_col: f64 = r
            .dq
            .iter()
            .zip(&dp)
            .map(|(dq, dp)| dq * dp / GRAVITY)
            .sum();
        assert!((dqdt_col + r.precipitation).abs() < 1e-12);
    }

    #[test]
    fn unstable_saturated_column_adjusts() {
        let nlev = 6;
        // Super-adiabatic and humid near the surface.
        let t: Vec<f64> = (0..nlev).map(|k| 300.0 - 12.0 * k as f64).collect();
        let p: Vec<f64> = (0..nlev).map(|k| 1.0e5 - 1.2e4 * k as f64).collect();
        let q: Vec<f64> = (0..nlev)
            .map(|k| saturation_specific_humidity(t[k], p[k]) * 0.95)
            .collect();
        let dp = vec![1.2e4; nlev];
        let dz = vec![900.0; nlev];
        let r = MoistConvection::default().column(&t, &q, &p, &dp, &dz);
        // Uniformly super-adiabatic column: enthalpy moves upward, so the
        // bottom layer cools and the top layer warms; interior layers are
        // near-neutral pass-through.
        assert!(r.dt[0] < 0.0, "surface layer must cool");
        assert!(r.dt[nlev - 1] > 0.0, "top layer must warm");
        // Adjustment conserves the mass-weighted enthalpy contribution of
        // the mixing terms (checked on the temperature part only, since
        // condensation is zero here at 95 % RH with rh_crit=1).
        let sum: f64 = r.dt.iter().zip(&dp).map(|(d, w)| d * w).sum();
        assert!(sum.abs() < 1e-9, "enthalpy residual {sum}");
    }
}
