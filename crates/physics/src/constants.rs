//! Physical constants (SI).

/// Gravitational acceleration (m/s²).
pub const GRAVITY: f64 = 9.80665;
/// Gas constant for dry air (J/kg/K).
pub const R_DRY: f64 = 287.04;
/// Specific heat of dry air at constant pressure (J/kg/K).
pub const CP_DRY: f64 = 1004.64;
/// Latent heat of vaporisation (J/kg).
pub const L_VAP: f64 = 2.501e6;
/// Stefan–Boltzmann constant (W/m²/K⁴).
pub const STEFAN_BOLTZMANN: f64 = 5.670374e-8;
/// Solar constant (W/m²).
pub const SOLAR_CONSTANT: f64 = 1361.0;
/// Reference surface density (kg/m³).
pub const RHO_AIR: f64 = 1.225;
/// Reference sea-water density (kg/m³).
pub const RHO_SEAWATER: f64 = 1025.0;
/// Specific heat of sea water (J/kg/K).
pub const CP_SEAWATER: f64 = 3996.0;
/// Earth's rotation rate (rad/s).
pub const OMEGA_EARTH: f64 = 7.2921e-5;
/// Von Kármán constant.
pub const VON_KARMAN: f64 = 0.4;
/// Kappa = R/cp for dry air.
pub const KAPPA: f64 = R_DRY / CP_DRY;
/// Freezing point of sea water (K) at zero salinity reference.
pub const T_FREEZE_SEA: f64 = 271.35;

/// Coriolis parameter at latitude `lat` (radians).
pub fn coriolis(lat: f64) -> f64 {
    2.0 * OMEGA_EARTH * lat.sin()
}

/// Potential temperature from temperature and pressure (reference 1000 hPa).
pub fn potential_temperature(t: f64, p: f64) -> f64 {
    t * (1.0e5 / p).powf(KAPPA)
}

/// Invert potential temperature.
pub fn temperature_from_theta(theta: f64, p: f64) -> f64 {
    theta * (p / 1.0e5).powf(KAPPA)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coriolis_zero_at_equator_max_at_pole() {
        assert_eq!(coriolis(0.0), 0.0);
        let f_pole = coriolis(std::f64::consts::FRAC_PI_2);
        assert!((f_pole - 1.458e-4).abs() < 1e-6);
        assert!(coriolis(-std::f64::consts::FRAC_PI_2) < 0.0);
    }

    #[test]
    fn theta_roundtrip() {
        let t = 285.0;
        let p = 8.5e4;
        let th = potential_temperature(t, p);
        assert!(th > t); // below reference pressure
        assert!((temperature_from_theta(th, p) - t).abs() < 1e-9);
    }

    #[test]
    fn theta_at_reference_equals_t() {
        assert!((potential_temperature(300.0, 1.0e5) - 300.0).abs() < 1e-12);
    }
}
