//! The assembled conventional physics suite: one call per column per
//! physics timestep, with the same inputs and outputs as the AI suite so
//! the two are interchangeable behind the atmosphere's physics–dynamics
//! coupling interface (Fig. 4).

use crate::constants::{CP_DRY, GRAVITY, RHO_AIR};
use crate::convection::MoistConvection;
use crate::pbl::KProfilePbl;
use crate::radiation::GrayRadiation;
use crate::surface::{bulk_fluxes, BulkCoefficients, SurfaceFluxes};

/// One column of atmospheric state, surface first.
#[derive(Debug, Clone)]
pub struct Column {
    pub u: Vec<f64>,
    pub v: Vec<f64>,
    /// Temperature (K).
    pub t: Vec<f64>,
    /// Specific humidity (kg/kg).
    pub q: Vec<f64>,
    /// Mid-layer pressure (Pa).
    pub p: Vec<f64>,
    /// Pressure thickness (Pa, positive).
    pub dp: Vec<f64>,
    /// Geometric thickness (m).
    pub dz: Vec<f64>,
}

impl Column {
    pub fn nlev(&self) -> usize {
        self.t.len()
    }
}

/// Surface state needed by the suite.
#[derive(Debug, Clone, Copy)]
pub struct SurfaceProperties {
    /// Skin/SST temperature (K).
    pub tskin: f64,
    /// Cosine of the solar zenith angle.
    pub coszr: f64,
    /// Moisture availability: 1 over ocean, 0..1 over land.
    pub wetness: f64,
}

/// Everything the suite returns for one column.
#[derive(Debug, Clone)]
pub struct ColumnPhysicsOutput {
    pub du: Vec<f64>,
    pub dv: Vec<f64>,
    pub dt: Vec<f64>,
    pub dq: Vec<f64>,
    /// Surface downward shortwave (W/m²).
    pub gsw: f64,
    /// Surface downward longwave (W/m²).
    pub glw: f64,
    /// Surface precipitation rate (kg/m²/s).
    pub precipitation: f64,
    /// Bulk surface fluxes (for the coupler's export state).
    pub surface_fluxes: SurfaceFluxes,
}

/// The conventional suite: radiation + surface + PBL + convection.
#[derive(Debug, Clone)]
#[derive(Default)]
pub struct ConventionalSuite {
    pub radiation: GrayRadiation,
    pub bulk: BulkCoefficients,
    pub pbl: KProfilePbl,
    pub convection: MoistConvection,
}


impl ConventionalSuite {
    /// Run all parameterizations on one column.
    pub fn step_column(&self, col: &Column, sfc: &SurfaceProperties) -> ColumnPhysicsOutput {
        let nlev = col.nlev();
        let rad = self.radiation.column(&col.t, &col.q, &col.p, &col.dp, sfc.coszr);
        let fluxes = bulk_fluxes(
            &self.bulk,
            col.u[0],
            col.v[0],
            col.t[0],
            col.q[0],
            col.p[0] + 0.5 * col.dp[0],
            sfc.tskin,
            sfc.wetness,
        );
        // Kinematic surface fluxes for the diffusion bottom boundary.
        let t_flux = fluxes.sensible / (RHO_AIR * CP_DRY);
        let q_flux = fluxes.evaporation / RHO_AIR;
        let u_flux = -fluxes.taux / RHO_AIR;
        let v_flux = -fluxes.tauy / RHO_AIR;

        let mut du = self.pbl.diffuse(&col.u, &col.dz, u_flux);
        let mut dv = self.pbl.diffuse(&col.v, &col.dz, v_flux);
        let mut dt = self.pbl.diffuse(&col.t, &col.dz, t_flux);
        let mut dq = self.pbl.diffuse(&col.q, &col.dz, q_flux);

        for (d, h) in dt.iter_mut().zip(&rad.heating) {
            *d += h;
        }
        let conv = self.convection.column(&col.t, &col.q, &col.p, &col.dp, &col.dz);
        for k in 0..nlev {
            dt[k] += conv.dt[k];
            dq[k] += conv.dq[k];
            // Weak Rayleigh drag near the top absorbs gravity waves.
            if k + 2 >= nlev {
                du[k] -= col.u[k] / (10.0 * 86_400.0);
                dv[k] -= col.v[k] / (10.0 * 86_400.0);
            }
        }

        ColumnPhysicsOutput {
            du,
            dv,
            dt,
            dq,
            gsw: rad.gsw,
            glw: rad.glw,
            precipitation: conv.precipitation,
            surface_fluxes: fluxes,
        }
    }

    /// Rough FLOP count per column step (for the F4 cost comparison).
    pub fn flops_per_column(&self, nlev: usize) -> usize {
        // radiation ~40/level, surface ~60, pbl ~25/level/field·4, conv ~50/level
        40 * nlev + 60 + 100 * nlev + 50 * nlev
    }
}

/// Hydrostatic thicknesses for a sigma column with surface pressure `ps`:
/// `(p_mid, dp, dz)` surface-first, using layer temperature `t` for dz.
pub fn hydrostatic_thickness(sigma_mid: &[f64], dsigma: &[f64], ps: f64, t: &[f64]) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let nlev = sigma_mid.len();
    assert!(dsigma.len() == nlev && t.len() == nlev);
    let p: Vec<f64> = sigma_mid.iter().map(|&s| s * ps).collect();
    let dp: Vec<f64> = dsigma.iter().map(|&d| d * ps).collect();
    let dz: Vec<f64> = (0..nlev)
        .map(|k| crate::constants::R_DRY * t[k] * dp[k] / (p[k] * GRAVITY))
        .collect();
    (p, dp, dz)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_column(nlev: usize) -> Column {
        let sigma: Vec<f64> = (0..nlev).map(|k| 1.0 - (k as f64 + 0.5) / nlev as f64).collect();
        let ds = vec![1.0 / nlev as f64; nlev];
        let t: Vec<f64> = (0..nlev).map(|k| 298.0 - 5.5 * k as f64).collect();
        let (p, dp, dz) = hydrostatic_thickness(&sigma, &ds, 1.0e5, &t);
        Column {
            u: vec![8.0; nlev],
            v: vec![-2.0; nlev],
            t,
            q: (0..nlev).map(|k| 0.012 * (-0.45 * k as f64).exp()).collect(),
            p,
            dp,
            dz,
        }
    }

    #[test]
    fn suite_produces_finite_tendencies() {
        let suite = ConventionalSuite::default();
        let col = test_column(12);
        let out = suite.step_column(
            &col,
            &SurfaceProperties {
                tskin: 301.0,
                coszr: 0.6,
                wetness: 1.0,
            },
        );
        for field in [&out.du, &out.dv, &out.dt, &out.dq] {
            assert_eq!(field.len(), 12);
            assert!(field.iter().all(|v| v.is_finite()));
        }
        assert!(out.gsw > 0.0 && out.glw > 0.0);
    }

    #[test]
    fn warm_sst_drives_upward_fluxes_and_low_level_heating() {
        let suite = ConventionalSuite::default();
        let col = test_column(12);
        let out = suite.step_column(
            &col,
            &SurfaceProperties {
                tskin: 304.0,
                coszr: 0.0,
                wetness: 1.0,
            },
        );
        assert!(out.surface_fluxes.sensible > 0.0);
        assert!(out.dt[0] > -1e-4, "lowest layer strongly cooled: {}", out.dt[0]);
    }

    #[test]
    fn tendencies_scale_with_reasonable_magnitudes() {
        // K/s tendencies must be physically plausible (< ~50 K/day).
        let suite = ConventionalSuite::default();
        let col = test_column(20);
        let out = suite.step_column(
            &col,
            &SurfaceProperties {
                tskin: 300.0,
                coszr: 0.9,
                wetness: 1.0,
            },
        );
        let max_dt = out.dt.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(max_dt < 50.0 / 86_400.0 * 20.0, "max |dT/dt| = {max_dt}");
    }

    #[test]
    fn hydrostatic_thickness_consistency() {
        let nlev = 10;
        let sigma: Vec<f64> = (0..nlev).map(|k| 1.0 - (k as f64 + 0.5) / nlev as f64).collect();
        let ds = vec![0.1; nlev];
        let t = vec![280.0; nlev];
        let (p, dp, dz) = hydrostatic_thickness(&sigma, &ds, 1.0e5, &t);
        assert!((dp.iter().sum::<f64>() - 1.0e5).abs() < 1.0);
        // dz grows with altitude (lower pressure → thicker layers).
        assert!(dz[nlev - 1] > dz[0]);
        assert!(p[0] > p[nlev - 1]);
    }
}
