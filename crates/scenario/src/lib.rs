//! # ap3esm-scenario — declarative scenario engine
//!
//! Experiments on the coupled model used to live in hand-written example
//! binaries: every new configuration (a different component subset, another
//! vortex basin, an ensemble fan) meant another few hundred lines of driver
//! code. This crate replaces that with a **declarative catalog**: a small
//! text DSL ([`dsl`]) describes *what* to run — which component subset
//! behind [`Component`](ap3esm_esm::component::Component), which rung of
//! the resolution ladder, which initial-condition family, how many ensemble
//! members, how many restart cycles, which fault plan — and the **campaign
//! runner** ([`runner`]) fans the scenarios across a
//! [`Threads`](ap3esm_pp::Threads) pool, classifies each outcome against
//! its declared contract, and distils the campaign into per-scenario
//! `ap3esm-tsdb/1` snapshots plus one deterministic `ap3esm-leaderboard/1`
//! ranking.
//!
//! The catalog grammar is a strict superset of the chaos campaign format of
//! [`ap3esm_comm::faultplan`]: fault verbs (`kill`, `die`, `drop`, `delay`,
//! `dup`, `corrupt`) embed verbatim inside scenario bodies, and the derived
//! per-scenario seeds agree position-by-position with
//! [`Campaign::parse`](ap3esm_comm::Campaign) via the shared
//! [`scenario_seed`](ap3esm_comm::faultplan::scenario_seed) mix.
//!
//! ```no_run
//! use ap3esm_scenario::dsl::Catalog;
//! use ap3esm_scenario::runner::{run_campaign, CampaignOptions};
//!
//! let catalog = Catalog::parse(
//!     "name demo\nseed 42\n\nscenario baseline\nmodel full\ndays 0.25\n",
//! )
//! .expect("parse");
//! catalog.validate().expect("validate");
//! let report = run_campaign(&catalog, &CampaignOptions::default());
//! println!("{}", report.table);
//! assert_eq!(report.violations, 0);
//! ```

pub mod compose;
pub mod dsl;
pub mod runner;

pub use compose::{AtmOnlyComponent, IceOnlyComponent, OcnOnlyComponent};
pub use dsl::{Catalog, GridPreset, Layout, ModelKind, Scenario, VortexDef};
pub use runner::{
    run_campaign, CampaignOptions, CampaignReport, MemberOutcome, ScenarioOutcome, Verdict,
};
