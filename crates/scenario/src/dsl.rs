//! The scenario-catalog grammar.
//!
//! A catalog is a line-based text file in the style of the chaos grammar of
//! [`ap3esm_comm::faultplan`] — and a strict **superset** of its
//! [`Campaign`](ap3esm_comm::Campaign) format: every campaign file parses
//! unchanged as a catalog (fault verbs become the scenario's fault plan,
//! the derived per-scenario seeds agree position-by-position via the shared
//! [`scenario_seed`] mix), while catalogs additionally pick the component
//! subset, grid rung, coupling cadence, initial-condition family, ensemble
//! fan-out and reforecast cycling:
//!
//! ```text
//! name demo                     # catalog name (leaderboard/series files)
//! seed 42                       # campaign seed (derives scenario seeds)
//! grid tiny                     # catalog-level default for every scenario
//!
//! scenario coupled-baseline expect=healthy
//! model full
//! days 0.25
//!
//! scenario spinup
//! model ocean-only              # standalone subset behind esm::Component
//! enso amp=2.5                  # ENSO-like warm-pool SST anomaly
//!
//! scenario fan
//! members 3                     # seeded perturbation ensemble
//! perturb amp=0.01
//!
//! scenario lose-ocean expect=degraded
//! die rank=2 step=3             # fault verbs delegate to faultplan
//! ```
//!
//! Every diagnostic carries the 1-based line number of the offending
//! **catalog** line: unknown keys, duplicated keys (citing both lines),
//! out-of-range values, and — through blank-line padding before delegating
//! to [`FaultPlan::parse`] — fault-plan errors too. [`Catalog::parse`] ∘
//! [`Display`](std::fmt::Display) is the identity on parsed catalogs.

use std::fmt;

use ap3esm_comm::faultplan::{
    scenario_seed, FaultPlan, PlanParseError, ScenarioExpectation,
};
use ap3esm_cpl::rearrange::RearrangeStrategy;

/// The component subset a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// The coupled system (domain A + domain O, `run_coupled`).
    Full,
    /// Standalone ocean spin-up under climatological forcing.
    OceanOnly,
    /// Standalone aqua-planet atmosphere over a zonal SST.
    AtmOnly,
    /// Standalone thermodynamic sea ice under a seasonal cycle.
    IceOnly,
}

impl ModelKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            ModelKind::Full => "full",
            ModelKind::OceanOnly => "ocean-only",
            ModelKind::AtmOnly => "atm-only",
            ModelKind::IceOnly => "ice-only",
        }
    }

    fn parse(v: &str, line: usize) -> Result<Self, PlanParseError> {
        match v {
            "full" => Ok(ModelKind::Full),
            "ocean-only" => Ok(ModelKind::OceanOnly),
            "atm-only" => Ok(ModelKind::AtmOnly),
            "ice-only" => Ok(ModelKind::IceOnly),
            other => Err(PlanParseError {
                line,
                message: format!(
                    "model must be full, ocean-only, atm-only, or ice-only; got {other:?}"
                ),
            }),
        }
    }
}

/// A rung of the resolution ladder (Table 1 scaled to laptop size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridPreset {
    /// `CoupledConfig::test_tiny`: G3 atmosphere, 36×24×6 ocean.
    Tiny,
    /// `CoupledConfig::demo_small`: G4 atmosphere, 72×46×10 ocean.
    Small,
    /// One rung up: G5 atmosphere, 108×72×12 ocean.
    Medium,
}

impl GridPreset {
    pub fn as_str(&self) -> &'static str {
        match self {
            GridPreset::Tiny => "tiny",
            GridPreset::Small => "small",
            GridPreset::Medium => "medium",
        }
    }

    fn parse(v: &str, line: usize) -> Result<Self, PlanParseError> {
        match v {
            "tiny" => Ok(GridPreset::Tiny),
            "small" => Ok(GridPreset::Small),
            "medium" => Ok(GridPreset::Medium),
            other => Err(PlanParseError {
                line,
                message: format!("grid must be tiny, small, or medium; got {other:?}"),
            }),
        }
    }

    /// Default couplings-per-day (atm, ocn, ice) for this rung.
    pub fn default_couplings(&self) -> (i64, i64, i64) {
        match self {
            GridPreset::Tiny => (8, 4, 8),
            GridPreset::Small | GridPreset::Medium => (24, 12, 24),
        }
    }

    /// Default ocean process mesh for the coupled layout.
    pub fn default_mesh(&self) -> (usize, usize) {
        (2, 2)
    }
}

/// §5.1.2 task-level layout of the coupled system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Two concurrent task domains (production layout).
    Concurrent,
    /// All components sequential on one rank (ablation layout).
    Sequential,
}

impl Layout {
    pub fn as_str(&self) -> &'static str {
        match self {
            Layout::Concurrent => "concurrent",
            Layout::Sequential => "sequential",
        }
    }

    fn parse(v: &str, line: usize) -> Result<Self, PlanParseError> {
        match v {
            "concurrent" => Ok(Layout::Concurrent),
            "sequential" => Ok(Layout::Sequential),
            other => Err(PlanParseError {
                line,
                message: format!("layout must be concurrent or sequential; got {other:?}"),
            }),
        }
    }
}

/// A vortex seeded into the initial atmosphere, in catalog units (degrees
/// and km; [`VortexSpec`](ap3esm_atm::vortex::VortexSpec) wants radians
/// and metres — see [`Self::to_spec`]).
#[derive(Debug, Clone, PartialEq)]
pub struct VortexDef {
    pub lat_deg: f64,
    pub lon_deg: f64,
    /// Maximum tangential wind (m/s).
    pub vmax: f64,
    /// Radius of maximum wind (km).
    pub rmw_km: f64,
    /// Central pressure deficit (Pa).
    pub dp: f64,
    /// Warm-core temperature anomaly (K).
    pub warm: f64,
}

impl VortexDef {
    pub fn to_spec(&self) -> ap3esm_atm::vortex::VortexSpec {
        ap3esm_atm::vortex::VortexSpec {
            lat: self.lat_deg.to_radians(),
            lon: self.lon_deg.to_radians(),
            vmax: self.vmax,
            rmw: self.rmw_km * 1000.0,
            dp: self.dp,
            warm_core: self.warm,
        }
    }
}

impl fmt::Display for VortexDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vortex lat={} lon={} vmax={} rmw_km={} dp={} warm={}",
            self.lat_deg, self.lon_deg, self.vmax, self.rmw_km, self.dp, self.warm
        )
    }
}

/// One resolved scenario of a [`Catalog`].
#[derive(Debug, Clone)]
pub struct Scenario {
    pub name: String,
    pub model: ModelKind,
    pub grid: GridPreset,
    /// Simulated days (whole couplings per cycle — checked at parse time).
    pub days: f64,
    /// Couplings per day (atm, ocn, ice).
    pub couplings: (i64, i64, i64),
    /// Explicit ocean process mesh; `None` = the grid rung's default for
    /// the coupled model, 1×1 for standalone subsets.
    pub mesh: Option<(usize, usize)>,
    /// Explicit task layout; `None` = concurrent.
    pub layout: Option<Layout>,
    /// Explicit rearrangement strategy; `None` = non-blocking p2p.
    pub strategy: Option<RearrangeStrategy>,
    /// Initial vortices (multi-vortex basin experiments).
    pub vortices: Vec<VortexDef>,
    /// ENSO-like SST anomaly amplitude (°C), if any.
    pub enso: Option<f64>,
    /// Seeded initial-θ perturbation amplitude (K), if any.
    pub perturb: Option<f64>,
    /// Ensemble members (seeds derived per member).
    pub members: usize,
    /// Restart-cycled reforecast segments.
    pub cycles: usize,
    pub expect: ScenarioExpectation,
    /// Scenario seed (explicit, or derived from the catalog seed).
    pub seed: u64,
    /// Fault plan assembled from the scenario's fault verbs (empty for
    /// fault-free scenarios); `plan.seed` equals [`Self::seed`].
    pub plan: FaultPlan,
    /// 1-based header line in the catalog file (0 for built catalogs;
    /// excluded from equality like `FaultPlan::event_lines`).
    pub header_line: usize,
}

impl PartialEq for Scenario {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.model == other.model
            && self.grid == other.grid
            && self.days == other.days
            && self.couplings == other.couplings
            && self.mesh == other.mesh
            && self.layout == other.layout
            && self.strategy == other.strategy
            && self.vortices == other.vortices
            && self.enso == other.enso
            && self.perturb == other.perturb
            && self.members == other.members
            && self.cycles == other.cycles
            && self.expect == other.expect
            && self.seed == other.seed
            && self.plan == other.plan
    }
}

impl Scenario {
    /// The seed of ensemble member `m`: the scenario seed itself for a
    /// single-member scenario, otherwise derived with the shared
    /// [`scenario_seed`] mix so members are decorrelated but reproducible
    /// in isolation.
    pub fn member_seed(&self, member: usize) -> u64 {
        if self.members == 1 {
            self.seed
        } else {
            scenario_seed(self.seed, member)
        }
    }
}

/// A parsed scenario catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct Catalog {
    /// Catalog name (output file naming); `campaign` when unset.
    pub name: String,
    /// Campaign seed scenario seeds derive from.
    pub seed: u64,
    pub scenarios: Vec<Scenario>,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog {
            name: "campaign".to_string(),
            seed: 0,
            scenarios: Vec::new(),
        }
    }
}

/// Fault verbs delegated to [`FaultPlan::parse`].
const FAULT_VERBS: &[&str] = &["drop", "delay", "dup", "kill", "die", "corrupt"];

/// Scenario-body keys that may also appear before the first scenario as
/// catalog-level defaults.
const DEFAULTABLE: &[&str] = &[
    "model",
    "grid",
    "days",
    "couplings",
    "mesh",
    "layout",
    "strategy",
];

fn parse_kv(tok: &str, line: usize) -> Result<(&str, &str), PlanParseError> {
    tok.split_once('=').ok_or_else(|| PlanParseError {
        line,
        message: format!("expected key=value, got {tok:?}"),
    })
}

fn parse_f64(key: &str, v: &str, line: usize) -> Result<f64, PlanParseError> {
    let x: f64 = v.parse().map_err(|_| PlanParseError {
        line,
        message: format!("{key} wants a number, got {v:?}"),
    })?;
    if !x.is_finite() {
        return Err(PlanParseError {
            line,
            message: format!("{key} must be finite, got {v:?}"),
        });
    }
    Ok(x)
}

fn parse_u64(key: &str, v: &str, line: usize) -> Result<u64, PlanParseError> {
    v.parse().map_err(|_| PlanParseError {
        line,
        message: format!("{key} wants a non-negative integer, got {v:?}"),
    })
}

/// One occurrence of a once-only key: the value plus the line that set it
/// (for duplicate diagnostics citing both lines).
#[derive(Debug, Clone)]
struct Once<T: Clone> {
    v: Option<(T, usize)>,
}

// Manual impl: the derive would demand `T: Default`, which
// `RearrangeStrategy` deliberately lacks.
impl<T: Clone> Default for Once<T> {
    fn default() -> Self {
        Once { v: None }
    }
}

impl<T: Clone> Once<T> {
    fn set(&mut self, key: &str, value: T, line: usize) -> Result<(), PlanParseError> {
        if let Some((_, first)) = &self.v {
            return Err(PlanParseError {
                line,
                message: format!("duplicate key {key:?} (first set at line {first})"),
            });
        }
        self.v = Some((value, line));
        Ok(())
    }

    fn get(&self) -> Option<T> {
        self.v.as_ref().map(|(v, _)| v.clone())
    }
}

/// Accumulated body keys of one scenario (or the catalog-level defaults).
#[derive(Debug, Clone, Default)]
struct RawSpec {
    model: Once<ModelKind>,
    grid: Once<GridPreset>,
    days: Once<f64>,
    couplings: Once<(i64, i64, i64)>,
    mesh: Once<(usize, usize)>,
    layout: Once<Layout>,
    strategy: Once<RearrangeStrategy>,
    members: Once<usize>,
    cycles: Once<usize>,
    seed: Once<u64>,
    enso: Once<f64>,
    perturb: Once<f64>,
    vortices: Vec<(VortexDef, usize)>,
    /// 0-based indices of this scenario's fault-verb lines.
    fault_lines: Vec<usize>,
}

impl RawSpec {
    /// Dispatch one body line. `defaults_only` restricts to the keys legal
    /// before the first scenario header.
    fn take_line(
        &mut self,
        verb: &str,
        rest: &[&str],
        lineno: usize,
        defaults_only: bool,
    ) -> Result<(), PlanParseError> {
        if defaults_only && !DEFAULTABLE.contains(&verb) {
            return Err(PlanParseError {
                line: lineno,
                message: format!(
                    "{verb:?} is not valid before the first scenario header (only \
                     name, seed, {} may)",
                    DEFAULTABLE.join(", ")
                ),
            });
        }
        let one = |rest: &[&str]| -> Result<String, PlanParseError> {
            match rest {
                [v] => Ok(v.to_string()),
                _ => Err(PlanParseError {
                    line: lineno,
                    message: format!("{verb} wants exactly one value"),
                }),
            }
        };
        match verb {
            "model" => {
                let v = ModelKind::parse(&one(rest)?, lineno)?;
                self.model.set(verb, v, lineno)
            }
            "grid" => {
                let v = GridPreset::parse(&one(rest)?, lineno)?;
                self.grid.set(verb, v, lineno)
            }
            "days" => {
                let d = parse_f64(verb, &one(rest)?, lineno)?;
                if d <= 0.0 || d > 365.0 {
                    return Err(PlanParseError {
                        line: lineno,
                        message: format!("days must be in (0, 365], got {d}"),
                    });
                }
                self.days.set(verb, d, lineno)
            }
            "couplings" => {
                let (mut atm, mut ocn, mut ice) = (None, None, None);
                for tok in rest {
                    let (k, v) = parse_kv(tok, lineno)?;
                    let n = parse_u64(k, v, lineno)? as i64;
                    match k {
                        "atm" => atm = Some(n),
                        "ocn" => ocn = Some(n),
                        "ice" => ice = Some(n),
                        _ => {
                            return Err(PlanParseError {
                                line: lineno,
                                message: format!("unknown key {k:?} for couplings"),
                            })
                        }
                    }
                }
                match (atm, ocn, ice) {
                    (Some(a), Some(o), Some(i)) => self.couplings.set(verb, (a, o, i), lineno),
                    _ => Err(PlanParseError {
                        line: lineno,
                        message: "couplings needs atm=, ocn= and ice=".into(),
                    }),
                }
            }
            "mesh" => {
                let v = one(rest)?;
                let (px, py) = v.split_once('x').ok_or_else(|| PlanParseError {
                    line: lineno,
                    message: format!("mesh wants PXxPY (e.g. 2x2), got {v:?}"),
                })?;
                let px = parse_u64("mesh px", px, lineno)? as usize;
                let py = parse_u64("mesh py", py, lineno)? as usize;
                if px == 0 || py == 0 || px > 4096 || py > 4096 {
                    return Err(PlanParseError {
                        line: lineno,
                        message: format!("mesh must be 1x1..=4096x4096, got {px}x{py}"),
                    });
                }
                self.mesh.set(verb, (px, py), lineno)
            }
            "layout" => {
                let v = Layout::parse(&one(rest)?, lineno)?;
                self.layout.set(verb, v, lineno)
            }
            "strategy" => {
                let v = match one(rest)?.as_str() {
                    "alltoall" => RearrangeStrategy::AllToAll,
                    "p2p" => RearrangeStrategy::NonBlockingP2p,
                    other => {
                        return Err(PlanParseError {
                            line: lineno,
                            message: format!("strategy must be alltoall or p2p; got {other:?}"),
                        })
                    }
                };
                self.strategy.set(verb, v, lineno)
            }
            "members" => {
                let n = parse_u64(verb, &one(rest)?, lineno)? as usize;
                if !(1..=64).contains(&n) {
                    return Err(PlanParseError {
                        line: lineno,
                        message: format!("members must be 1..=64, got {n}"),
                    });
                }
                self.members.set(verb, n, lineno)
            }
            "cycles" => {
                let n = parse_u64(verb, &one(rest)?, lineno)? as usize;
                if !(1..=32).contains(&n) {
                    return Err(PlanParseError {
                        line: lineno,
                        message: format!("cycles must be 1..=32, got {n}"),
                    });
                }
                self.cycles.set(verb, n, lineno)
            }
            "seed" => {
                let n = parse_u64(verb, &one(rest)?, lineno)?;
                self.seed.set(verb, n, lineno)
            }
            "enso" => {
                let mut amp = None;
                for tok in rest {
                    let (k, v) = parse_kv(tok, lineno)?;
                    match k {
                        "amp" => amp = Some(parse_f64("amp", v, lineno)?),
                        _ => {
                            return Err(PlanParseError {
                                line: lineno,
                                message: format!("unknown key {k:?} for enso"),
                            })
                        }
                    }
                }
                let amp = amp.ok_or_else(|| PlanParseError {
                    line: lineno,
                    message: "enso needs amp=<°C>".into(),
                })?;
                if amp == 0.0 || amp.abs() > 10.0 {
                    return Err(PlanParseError {
                        line: lineno,
                        message: format!("enso amp must be nonzero and |amp| <= 10 °C, got {amp}"),
                    });
                }
                self.enso.set(verb, amp, lineno)
            }
            "perturb" => {
                let mut amp = None;
                for tok in rest {
                    let (k, v) = parse_kv(tok, lineno)?;
                    match k {
                        "amp" => amp = Some(parse_f64("amp", v, lineno)?),
                        _ => {
                            return Err(PlanParseError {
                                line: lineno,
                                message: format!("unknown key {k:?} for perturb"),
                            })
                        }
                    }
                }
                let amp = amp.ok_or_else(|| PlanParseError {
                    line: lineno,
                    message: "perturb needs amp=<K>".into(),
                })?;
                if !(amp > 0.0 && amp <= 5.0) {
                    return Err(PlanParseError {
                        line: lineno,
                        message: format!("perturb amp must be in (0, 5] K, got {amp}"),
                    });
                }
                self.perturb.set(verb, amp, lineno)
            }
            "vortex" => {
                let mut v = VortexDef {
                    lat_deg: f64::NAN,
                    lon_deg: f64::NAN,
                    vmax: 35.0,
                    rmw_km: 80.0,
                    dp: 3500.0,
                    warm: 3.0,
                };
                for tok in rest {
                    let (k, val) = parse_kv(tok, lineno)?;
                    let x = parse_f64(k, val, lineno)?;
                    match k {
                        "lat" => v.lat_deg = x,
                        "lon" => v.lon_deg = x,
                        "vmax" => v.vmax = x,
                        "rmw_km" => v.rmw_km = x,
                        "dp" => v.dp = x,
                        "warm" => v.warm = x,
                        _ => {
                            return Err(PlanParseError {
                                line: lineno,
                                message: format!("unknown key {k:?} for vortex"),
                            })
                        }
                    }
                }
                if v.lat_deg.is_nan() || v.lon_deg.is_nan() {
                    return Err(PlanParseError {
                        line: lineno,
                        message: "vortex needs lat=<deg> and lon=<deg>".into(),
                    });
                }
                if v.lat_deg.abs() > 90.0 || v.vmax <= 0.0 || v.rmw_km <= 0.0 || v.dp < 0.0 {
                    return Err(PlanParseError {
                        line: lineno,
                        message: "vortex wants |lat| <= 90, vmax > 0, rmw_km > 0, dp >= 0".into(),
                    });
                }
                if let Some((dup, first)) = self
                    .vortices
                    .iter()
                    .find(|(w, _)| *w == v)
                    .map(|(w, l)| (w.clone(), *l))
                {
                    return Err(PlanParseError {
                        line: lineno,
                        message: format!(
                            "duplicate vortex {:?} (first seeded at line {first})",
                            dup.to_string()
                        ),
                    });
                }
                self.vortices.push((v, lineno));
                Ok(())
            }
            other => Err(PlanParseError {
                line: lineno,
                message: format!("unknown key {other:?} in scenario body"),
            }),
        }
    }
}

/// Parse-time scaffolding: a scenario plus which of its keys were left
/// unset, so catalog-level defaults (which may appear anywhere before the
/// first header) can fill them after the whole file is read.
struct PendingScenario {
    scenario: Scenario,
    model_unset: bool,
    grid_unset: bool,
    days_unset: bool,
    couplings_unset: bool,
}

impl Catalog {
    /// Parse the catalog text format (see the module docs). Errors carry
    /// 1-based line numbers of this text.
    pub fn parse(text: &str) -> Result<Catalog, PlanParseError> {
        let all: Vec<&str> = text.lines().collect();
        let mut catalog = Catalog::default();
        let mut pending: Vec<PendingScenario> = Vec::new();
        let mut defaults = RawSpec::default();
        let mut name_line: Option<usize> = None;
        let mut seed_line: Option<usize> = None;
        // (name, expect, header 1-based line, accumulated body)
        let mut open: Option<(String, Option<ScenarioExpectation>, usize, RawSpec)> = None;

        for (i, raw) in all.iter().enumerate() {
            let lineno = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let toks: Vec<&str> = line.split_whitespace().collect();
            let (verb, rest) = (toks[0], &toks[1..]);

            if verb == "scenario" {
                if let Some((name, expect, header, spec)) = open.take() {
                    finish_scenario(&mut pending, catalog.seed, &all, name, expect, header, spec)?;
                }
                let name = rest
                    .first()
                    .ok_or_else(|| PlanParseError {
                        line: lineno,
                        message: "scenario needs a name".into(),
                    })?
                    .to_string();
                let mut expect = None;
                for tok in &rest[1..] {
                    let (k, v) = parse_kv(tok, lineno)?;
                    match k {
                        "expect" => {
                            expect = Some(ScenarioExpectation::parse(v, lineno)?);
                        }
                        _ => {
                            return Err(PlanParseError {
                                line: lineno,
                                message: format!("unknown key {k:?} for scenario"),
                            })
                        }
                    }
                }
                open = Some((name, expect, lineno, RawSpec::default()));
                continue;
            }

            match &mut open {
                Some((_, _, _, spec)) => {
                    if FAULT_VERBS.contains(&verb) {
                        spec.fault_lines.push(i);
                    } else {
                        spec.take_line(verb, rest, lineno, false)?;
                    }
                }
                None => match verb {
                    "name" => {
                        if let Some(first) = name_line {
                            return Err(PlanParseError {
                                line: lineno,
                                message: format!(
                                    "duplicate key \"name\" (first set at line {first})"
                                ),
                            });
                        }
                        match rest {
                            [v] => catalog.name = v.to_string(),
                            _ => {
                                return Err(PlanParseError {
                                    line: lineno,
                                    message: "name wants exactly one value".into(),
                                })
                            }
                        }
                        name_line = Some(lineno);
                    }
                    "seed" => {
                        if let Some(first) = seed_line {
                            return Err(PlanParseError {
                                line: lineno,
                                message: format!(
                                    "duplicate key \"seed\" (first set at line {first})"
                                ),
                            });
                        }
                        match rest {
                            [v] => catalog.seed = parse_u64("seed", v, lineno)?,
                            _ => {
                                return Err(PlanParseError {
                                    line: lineno,
                                    message: "seed wants exactly one value".into(),
                                })
                            }
                        }
                        seed_line = Some(lineno);
                    }
                    _ => defaults.take_line(verb, rest, lineno, true)?,
                },
            }
        }
        if let Some((name, expect, header, spec)) = open.take() {
            finish_scenario(&mut pending, catalog.seed, &all, name, expect, header, spec)?;
        }

        // Apply catalog-level defaults to scenarios that left the key
        // unset (finish_scenario resolved per-scenario keys only).
        for p in &mut pending {
            if let (true, Some(m)) = (p.model_unset, defaults.model.get()) {
                p.scenario.model = m;
            }
            if let (true, Some(g)) = (p.grid_unset, defaults.grid.get()) {
                p.scenario.grid = g;
            }
            if let (true, Some(d)) = (p.days_unset, defaults.days.get()) {
                p.scenario.days = d;
            }
            if p.couplings_unset {
                p.scenario.couplings = defaults
                    .couplings
                    .get()
                    .unwrap_or_else(|| p.scenario.grid.default_couplings());
            }
            // Coupled-layout defaults stay off standalone subsets (which
            // Catalog::validate rejects explicit values for).
            if p.scenario.model == ModelKind::Full {
                if p.scenario.mesh.is_none() {
                    p.scenario.mesh = defaults.mesh.get();
                }
                if p.scenario.layout.is_none() {
                    p.scenario.layout = defaults.layout.get();
                }
                if p.scenario.strategy.is_none() {
                    p.scenario.strategy = defaults.strategy.get();
                }
            }
        }
        catalog.scenarios = pending.into_iter().map(|p| p.scenario).collect();
        // Alignment checks need the fully resolved cadence.
        for sc in &catalog.scenarios {
            check_alignment(sc)?;
        }
        Ok(catalog)
    }
}

#[allow(clippy::too_many_arguments)]
fn finish_scenario(
    pending: &mut Vec<PendingScenario>,
    catalog_seed: u64,
    all: &[&str],
    name: String,
    expect: Option<ScenarioExpectation>,
    header: usize,
    spec: RawSpec,
) -> Result<(), PlanParseError> {
    if pending.iter().any(|p| p.scenario.name == name) {
        return Err(PlanParseError {
            line: header,
            message: format!("duplicate scenario name {name:?}"),
        });
    }
    // Blank-pad the non-fault lines so FaultPlan::parse reports
    // catalog-file line numbers (the faultplan campaign trick).
    let mut fault_text = String::new();
    for (i, raw) in all.iter().enumerate() {
        if spec.fault_lines.contains(&i) {
            fault_text.push_str(raw);
        }
        fault_text.push('\n');
    }
    let mut plan = FaultPlan::parse(&fault_text)?;

    let explicit_seed = spec.seed.get().filter(|&s| s != 0);
    let seed = explicit_seed.unwrap_or_else(|| scenario_seed(catalog_seed, pending.len()));
    plan.seed = seed;

    let grid = spec.grid.get().unwrap_or(GridPreset::Tiny);
    let scenario = Scenario {
        name,
        model: spec.model.get().unwrap_or(ModelKind::Full),
        grid,
        days: spec.days.get().unwrap_or(1.0),
        couplings: spec
            .couplings
            .get()
            .unwrap_or_else(|| grid.default_couplings()),
        mesh: spec.mesh.get(),
        layout: spec.layout.get(),
        strategy: spec.strategy.get(),
        vortices: spec.vortices.iter().map(|(v, _)| v.clone()).collect(),
        enso: spec.enso.get(),
        perturb: spec.perturb.get(),
        members: spec.members.get().unwrap_or(1),
        cycles: spec.cycles.get().unwrap_or(1),
        expect: expect.unwrap_or(ScenarioExpectation::Healthy),
        seed,
        plan,
        header_line: header,
    };
    pending.push(PendingScenario {
        model_unset: spec.model.get().is_none(),
        grid_unset: spec.grid.get().is_none(),
        days_unset: spec.days.get().is_none(),
        couplings_unset: spec.couplings.get().is_none(),
        scenario,
    });
    Ok(())
}

/// Whole-coupling alignment: every restart cycle must end exactly on a
/// coupling of every component, or the cycled resume would drift off the
/// clock (checkpoint ids are ocean-coupling indices).
fn check_alignment(sc: &Scenario) -> Result<(), PlanParseError> {
    let (a, o, i) = sc.couplings;
    for (label, cpd) in [("atm", a), ("ocn", o), ("ice", i)] {
        if cpd <= 0 {
            continue; // named by CoupledConfig::validate in Catalog::validate
        }
        let per_cycle = sc.days * cpd as f64 / sc.cycles as f64;
        if per_cycle < 1.0 - 1e-9 || (per_cycle - per_cycle.round()).abs() > 1e-9 {
            return Err(PlanParseError {
                line: sc.header_line,
                message: format!(
                    "scenario {:?}: days={} x couplings {label}={cpd} over cycles={} \
                     gives {per_cycle} {label} couplings per cycle; every cycle must \
                     hold a whole, nonzero number of couplings",
                    sc.name, sc.days, sc.cycles
                ),
            });
        }
    }
    Ok(())
}

impl fmt::Display for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "name {}", self.name)?;
        writeln!(f, "seed {}", self.seed)?;
        for sc in &self.scenarios {
            writeln!(f)?;
            writeln!(f, "scenario {} expect={}", sc.name, sc.expect.as_str())?;
            writeln!(f, "model {}", sc.model.as_str())?;
            writeln!(f, "grid {}", sc.grid.as_str())?;
            writeln!(f, "days {}", sc.days)?;
            let (a, o, i) = sc.couplings;
            writeln!(f, "couplings atm={a} ocn={o} ice={i}")?;
            if let Some((px, py)) = sc.mesh {
                writeln!(f, "mesh {px}x{py}")?;
            }
            if let Some(l) = sc.layout {
                writeln!(f, "layout {}", l.as_str())?;
            }
            if let Some(s) = sc.strategy {
                let s = match s {
                    RearrangeStrategy::AllToAll => "alltoall",
                    RearrangeStrategy::NonBlockingP2p => "p2p",
                };
                writeln!(f, "strategy {s}")?;
            }
            writeln!(f, "members {}", sc.members)?;
            writeln!(f, "cycles {}", sc.cycles)?;
            writeln!(f, "seed {}", sc.seed)?;
            for v in &sc.vortices {
                writeln!(f, "{v}")?;
            }
            if let Some(amp) = sc.enso {
                writeln!(f, "enso amp={amp}")?;
            }
            if let Some(amp) = sc.perturb {
                writeln!(f, "perturb amp={amp}")?;
            }
            // Fault events via the plan's own canonical form, minus its
            // seed line (the scenario seed above covers it).
            for line in sc.plan.to_string().lines().skip(1) {
                writeln!(f, "{line}")?;
            }
        }
        Ok(())
    }
}
