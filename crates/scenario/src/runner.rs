//! The campaign runner: fan a catalog's scenarios (× ensemble members)
//! across a [`Threads`] pool, execute each unit in an isolated world,
//! classify outcomes against the scenario contracts, and distil the
//! campaign into per-scenario `ap3esm-tsdb/1` series snapshots plus one
//! deterministic `ap3esm-leaderboard/1` ranking.
//!
//! Determinism contract: everything that lands in the leaderboard JSON —
//! verdicts, conservation drift, ensemble spread, the cost-model SYPD
//! proxy — is a pure function of (catalog, seed). Wall-clock measurements
//! stay in the human table ([`CampaignReport::table`]) and stderr. Series
//! snapshots are written post-join on one thread, in catalog order, so
//! their bytes are deterministic too (the physics is bitwise reproducible;
//! `ap3esm_obs::install` is thread-local, so parallel units cannot bleed
//! metrics into each other).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ap3esm_comm::faultplan::{FaultInjector, ScenarioExpectation};
use ap3esm_comm::World;
use ap3esm_cpl::avect::{AttrVect, ATM_TO_OCN_FIELDS, ICE_TO_OCN_FIELDS, OCN_TO_ATM_FIELDS};
use ap3esm_esm::{run_coupled, Perturbation, RecoveryConfig, SstPattern};
use ap3esm_grid::decomp::BlockDecomp2d;
use ap3esm_grid::mask::MaskGenerator;
use ap3esm_grid::tripolar::TripolarGrid;
use ap3esm_obs::flightrec::{dump_bundle, BundleSpec, FlightRecorder};
use ap3esm_obs::leaderboard::{score, Leaderboard, LeaderboardRow};
use ap3esm_obs::tsdb::{snapshot_to_json, SeriesStore};
use ap3esm_ocn::model::OcnForcing;
use ap3esm_pp::exec::{ExecSpace, Threads};

use crate::compose::{fitted_ocn_config, AtmOnlyComponent, IceOnlyComponent, OcnOnlyComponent};
use crate::dsl::{Catalog, ModelKind, Scenario};
use ap3esm_esm::component::Component;

/// Knobs of one campaign execution.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Worker threads the units fan across (0 = machine parallelism).
    pub threads: usize,
    /// Run only scenarios whose name contains this substring.
    pub only: Option<String>,
    /// Output directory for the leaderboard and series snapshots.
    pub out_dir: PathBuf,
    /// Write per-scenario `ap3esm-tsdb/1` snapshots.
    pub write_series: bool,
    /// Blocking-recv deadlock timeout inside member worlds.
    pub recv_timeout: Duration,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            threads: 0,
            only: None,
            out_dir: ap3esm_obs::report::default_dir(),
            write_series: true,
            recv_timeout: Duration::from_millis(800),
        }
    }
}

/// What one (scenario, member) unit actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Healthy,
    Degraded,
    Failure,
    /// The unit panicked — never a contracted outcome.
    Panic,
    /// The unit finished but off its clock/contract (wrong simulated span,
    /// missing cycle checkpoint, non-finite diagnostics …).
    Divergence,
}

impl Verdict {
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Healthy => "healthy",
            Verdict::Degraded => "degraded",
            Verdict::Failure => "failure",
            Verdict::Panic => "PANIC",
            Verdict::Divergence => "DIVERGENCE",
        }
    }

    /// Does this outcome honour the scenario's contract?
    pub fn matches(&self, expect: ScenarioExpectation) -> bool {
        matches!(
            (self, expect),
            (Verdict::Healthy, ScenarioExpectation::Healthy)
                | (Verdict::Degraded, ScenarioExpectation::Degraded)
                | (Verdict::Failure, ScenarioExpectation::Failure)
        )
    }
}

/// One ensemble member's outcome.
#[derive(Debug, Clone)]
pub struct MemberOutcome {
    pub member: usize,
    pub verdict: Verdict,
    pub detail: String,
    /// Model-specific conservation drift (relative θ-mass drift, mean
    /// free-surface anomaly, …; deterministic).
    pub drift: f64,
    /// Final primary diagnostic (mean θ / mean SST / ice cover) — the
    /// ensemble-spread basis.
    pub primary: f64,
    pub simulated_seconds: f64,
    pub wall_seconds: f64,
    pub faults: usize,
    pub recoveries: usize,
    pub shrinks: usize,
    /// Named diagnostic series, `(t seconds, value)` per coupling.
    pub series: Vec<(String, Vec<(f64, f64)>)>,
    /// Flight-recorder bundle, when the run ended in trouble.
    pub bundle: Option<PathBuf>,
}

impl MemberOutcome {
    fn new(member: usize) -> Self {
        MemberOutcome {
            member,
            verdict: Verdict::Healthy,
            detail: String::new(),
            drift: 0.0,
            primary: 0.0,
            simulated_seconds: 0.0,
            wall_seconds: 0.0,
            faults: 0,
            recoveries: 0,
            shrinks: 0,
            series: Vec::new(),
            bundle: None,
        }
    }

    fn fail(member: usize, verdict: Verdict, detail: String) -> Self {
        MemberOutcome {
            verdict,
            detail,
            ..MemberOutcome::new(member)
        }
    }
}

/// One scenario's aggregated outcome.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    pub name: String,
    pub model: ModelKind,
    pub expect: ScenarioExpectation,
    /// Worst member verdict (the first that broke the contract, or the
    /// shared verdict when all honoured it).
    pub verdict: Verdict,
    pub ok: bool,
    /// Worst-member drift.
    pub drift: f64,
    /// Max−min of the members' final primary diagnostic.
    pub spread: f64,
    pub simulated_seconds: f64,
    pub wall_seconds: f64,
    pub members: Vec<MemberOutcome>,
    /// Series snapshot file name (relative to the output dir).
    pub series_file: Option<String>,
}

impl ScenarioOutcome {
    /// Measured SYPD of this scenario's members (wall clock; human table
    /// only, never the leaderboard JSON).
    pub fn sypd_wall(&self) -> f64 {
        let sim: f64 = self.members.iter().map(|m| m.simulated_seconds).sum();
        if self.wall_seconds > 0.0 {
            sim / (365.0 * self.wall_seconds)
        } else {
            0.0
        }
    }
}

/// A finished campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    pub outcomes: Vec<ScenarioOutcome>,
    pub leaderboard: Leaderboard,
    pub leaderboard_path: PathBuf,
    /// Scenarios whose verdict broke their contract.
    pub violations: usize,
    /// The human-readable ranking table (includes wall-clock SYPD).
    pub table: String,
}

/// Run `catalog` under `opts`. Call [`Catalog::validate`] first — the
/// runner assumes a validated catalog and panics on inconsistencies the
/// validator names politely.
pub fn run_campaign(catalog: &Catalog, opts: &CampaignOptions) -> CampaignReport {
    let selected: Vec<&Scenario> = catalog
        .scenarios
        .iter()
        .filter(|sc| match &opts.only {
            Some(pat) => sc.name.contains(pat.as_str()),
            None => true,
        })
        .collect();

    // Unit = (selected index, member). Results slot-addressed so the pool
    // order cannot reorder anything.
    let units: Vec<(usize, usize)> = selected
        .iter()
        .enumerate()
        .flat_map(|(si, sc)| (0..sc.members).map(move |m| (si, m)))
        .collect();
    let results: Vec<Mutex<Option<MemberOutcome>>> =
        units.iter().map(|_| Mutex::new(None)).collect();

    let pool = if opts.threads == 0 {
        Threads::auto()
    } else {
        Threads::new(opts.threads)
    };
    let work = |u: usize| {
        let (si, member) = units[u];
        let sc = selected[si];
        let outcome = catch_unwind(AssertUnwindSafe(|| run_member(sc, member, opts)))
            .unwrap_or_else(|payload| {
                Verdict::Panic.into_outcome(member, panic_message(&payload))
            });
        *results[u].lock().expect("result slot") = Some(outcome);
    };
    pool.for_each(units.len(), &work);

    // Post-join, single-threaded, catalog order: aggregate + emit.
    let mut by_scenario: Vec<Vec<MemberOutcome>> = selected.iter().map(|_| Vec::new()).collect();
    for (u, (si, _)) in units.iter().enumerate() {
        let out = results[u]
            .lock()
            .expect("result slot")
            .take()
            .expect("every unit ran");
        by_scenario[*si].push(out);
    }

    let mut outcomes = Vec::with_capacity(selected.len());
    let mut rows = Vec::with_capacity(selected.len());
    for (sc, mut members) in selected.iter().zip(by_scenario) {
        members.sort_by_key(|m| m.member);
        let verdict = members
            .iter()
            .map(|m| m.verdict)
            .find(|v| !v.matches(sc.expect))
            .unwrap_or_else(|| members[0].verdict);
        let ok = members.iter().all(|m| m.verdict.matches(sc.expect));
        let drift = members
            .iter()
            .map(|m| m.drift.abs())
            .fold(0.0f64, f64::max);
        let finite: Vec<f64> = members
            .iter()
            .map(|m| m.primary)
            .filter(|p| p.is_finite())
            .collect();
        let spread = if finite.len() > 1 {
            finite.iter().fold(f64::MIN, |a, &b| a.max(b))
                - finite.iter().fold(f64::MAX, |a, &b| a.min(b))
        } else {
            0.0
        };
        let simulated_seconds = members
            .iter()
            .map(|m| m.simulated_seconds)
            .fold(0.0f64, f64::max);
        let wall_seconds: f64 = members.iter().map(|m| m.wall_seconds).sum();

        let series_file = (opts.write_series && members.iter().any(|m| !m.series.is_empty()))
            .then(|| format!("series-{}-{}.json", catalog.name, sc.name));
        if let Some(file) = &series_file {
            if let Err(e) = write_series_snapshot(&opts.out_dir.join(file), sc, &members) {
                eprintln!("[campaign] series snapshot {file} failed: {e}");
            }
        }

        let sypd_proxy = sc.sypd_proxy();
        rows.push(LeaderboardRow {
            name: sc.name.clone(),
            model: sc.model.as_str().to_string(),
            grid: sc.grid.as_str().to_string(),
            days: sc.days,
            members: sc.members as u64,
            cycles: sc.cycles as u64,
            expect: sc.expect.as_str().to_string(),
            verdict: verdict.as_str().to_string(),
            ok,
            score: score(ok, sypd_proxy, drift),
            sypd_proxy,
            drift,
            spread,
            simulated_seconds,
            faults: members.iter().map(|m| m.faults as u64).sum(),
            recoveries: members.iter().map(|m| m.recoveries as u64).sum(),
            shrinks: members.iter().map(|m| m.shrinks as u64).sum(),
            series: series_file.clone(),
        });
        outcomes.push(ScenarioOutcome {
            name: sc.name.clone(),
            model: sc.model,
            expect: sc.expect,
            verdict,
            ok,
            drift,
            spread,
            simulated_seconds,
            wall_seconds,
            members,
            series_file,
        });
    }

    let leaderboard = Leaderboard::ranked(&catalog.name, catalog.seed, rows);
    let leaderboard_path = leaderboard
        .write(&opts.out_dir, &catalog.name)
        .expect("write leaderboard");
    let violations = leaderboard.rows.iter().filter(|r| !r.ok).count();
    let table = render_table(&leaderboard, &outcomes);

    CampaignReport {
        outcomes,
        leaderboard,
        leaderboard_path,
        violations,
        table,
    }
}

impl Verdict {
    fn into_outcome(self, member: usize, detail: String) -> MemberOutcome {
        MemberOutcome::fail(member, self, detail)
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("opaque panic payload")
        .to_string()
}

/// Execute one (scenario, member) unit.
fn run_member(sc: &Scenario, member: usize, opts: &CampaignOptions) -> MemberOutcome {
    let wall0 = Instant::now();
    let mut out = match sc.model {
        ModelKind::Full => run_full_member(sc, member, opts),
        ModelKind::OceanOnly => run_ocean_member(sc, member, opts),
        ModelKind::AtmOnly => run_atm_member(sc, member),
        ModelKind::IceOnly => run_ice_member(sc, member),
    };
    out.wall_seconds = wall0.elapsed().as_secs_f64();
    out
}

/// The coupled model: per-cycle worlds with checkpoint hand-off, fault
/// injection from the scenario's plan, flight-recorder bundles on panics.
fn run_full_member(sc: &Scenario, member: usize, opts: &CampaignOptions) -> MemberOutcome {
    let config = sc.coupled_config();
    let total_seconds = (sc.days * 86_400.0).round();
    let have_faults = !sc.plan.events.is_empty();
    let need_ckpt = sc.cycles > 1 || have_faults;
    let tmp_root = std::env::temp_dir().join(format!(
        "ap3esm-campaign-{}-{}-m{member}",
        std::process::id(),
        sc.name
    ));
    let _ = std::fs::remove_dir_all(&tmp_root);
    // Whole couplings per cycle — guaranteed by the catalog parser.
    let cycle_ocn = (sc.days * sc.couplings.1 as f64 / sc.cycles as f64).round() as usize;

    let mut out = MemberOutcome::new(member);
    let mut theta: Vec<(f64, f64)> = Vec::new();
    let mut sst: Vec<(f64, f64)> = Vec::new();
    let mut ke: Vec<(f64, f64)> = Vec::new();
    let mut ice: Vec<(f64, f64)> = Vec::new();
    let atm_period = 86_400.0 / sc.couplings.0 as f64;
    let ocn_period = 86_400.0 / sc.couplings.1 as f64;
    let ice_period = 86_400.0 / sc.couplings.2 as f64;

    let mut resume: Option<PathBuf> = None;
    'cycles: for cycle in 0..sc.cycles {
        let ckpt_dir = need_ckpt.then(|| tmp_root.join(format!("cycle{cycle}")));
        let mut copts = sc.coupled_options(member);
        copts.days = sc.days * (cycle + 1) as f64 / sc.cycles as f64;
        copts.checkpoint_dir = ckpt_dir.clone();
        copts.recovery = RecoveryConfig {
            // Fault scenarios checkpoint densely for cheap rollback;
            // fault-free cycled reforecasts only at the cycle hand-off.
            checkpoint_interval: if have_faults { 1 } else { cycle_ocn.max(1) },
            keep_checkpoints: 4,
            ..RecoveryConfig::default()
        };
        copts.resume_from = resume.take();
        copts.bundle_name = Some(format!("campaign-{}-m{member}", sc.name));

        let mut world = World::new(config.world_size()).with_recv_timeout(opts.recv_timeout);
        if have_faults {
            world = world.with_fault_injector(Arc::new(FaultInjector::new(sc.plan.clone())));
        }
        let world = Arc::new(world);
        let run = catch_unwind(AssertUnwindSafe(|| {
            world.run(|rank| run_coupled(rank, &config, &copts))
        }));
        let all = match run {
            Ok(all) => all,
            Err(payload) => {
                out.verdict = Verdict::Panic;
                out.detail = panic_message(&payload);
                // The driver never reached its own dump — salvage the
                // flight recorder from the shared world.
                let slot = world.blackbox().get().cloned();
                let spec = BundleSpec {
                    reason: "panic",
                    recorder: slot
                        .as_ref()
                        .and_then(|s| s.downcast_ref::<FlightRecorder>()),
                    comm_events: Some(world.comm_events()),
                    fault_plan: have_faults.then(|| sc.plan.to_string()),
                    scenario: Some(format!("scenario {} member {member}", sc.name)),
                    ..Default::default()
                };
                if let Ok(p) = dump_bundle(&format!("campaign-{}-m{member}", sc.name), &spec) {
                    out.bundle = Some(p);
                }
                break 'cycles;
            }
        };

        let root = &all[0];
        out.faults += all.iter().map(|s| s.fault_events.len()).sum::<usize>();
        out.recoveries += root.recoveries;
        out.shrinks += root.shrinks;
        out.simulated_seconds = root.simulated_seconds;
        if root.bundle_path.is_some() {
            out.bundle = root.bundle_path.clone();
        }

        // Stitch this cycle's series onto the member timeline, anchored at
        // the cycle's end: entry i of an n-entry series is the coupling
        // ending at T_end - (n-1-i) periods. A resumed cycle replays the
        // couplings after its hand-off checkpoint (which lands shy of the
        // cycle boundary), so the head of its series can overlap the
        // previous cycle's tail — the replay is bitwise, drop it.
        let t_end = total_seconds * (cycle + 1) as f64 / sc.cycles as f64;
        for (dst, src, period) in [
            (&mut theta, &root.theta_series, atm_period),
            (&mut sst, &root.sst_series, ocn_period),
            (&mut ke, &root.ke_series, ocn_period),
            (&mut ice, &root.ice_series, ice_period),
        ] {
            let n = src.len();
            let last_t = dst.last().map(|&(t, _)| t).unwrap_or(f64::NEG_INFINITY);
            dst.extend(src.iter().enumerate().filter_map(|(i, &v)| {
                let t = t_end - (n - 1 - i) as f64 * period;
                (t > last_t + 1e-6).then_some((t, v))
            }));
        }

        if let Some(f) = &root.failure {
            out.verdict = Verdict::Failure;
            out.detail = f.clone();
            break 'cycles;
        }
        let expected = total_seconds * (cycle + 1) as f64 / sc.cycles as f64;
        if (root.simulated_seconds - expected).abs() > 0.5 {
            out.verdict = Verdict::Divergence;
            out.detail = format!(
                "cycle {cycle} simulated {} s, expected {expected} s",
                root.simulated_seconds
            );
            break 'cycles;
        }
        if root.degraded_ranks > 0 || root.shrinks > 0 {
            out.verdict = Verdict::Degraded;
            out.detail = format!("finished on {} fewer rank(s)", root.degraded_ranks);
        }

        if cycle + 1 < sc.cycles {
            let dir = ckpt_dir.expect("cycled runs checkpoint");
            match latest_committed(&dir) {
                Some(p) => resume = Some(p),
                None => {
                    out.verdict = Verdict::Divergence;
                    out.detail =
                        format!("no committed checkpoint in {} at cycle end", dir.display());
                    break 'cycles;
                }
            }
        }
    }

    // Conservation drift: relative θ trend over the stitched trajectory
    // (bitwise-deterministic; a blown-up run shows as NaN → Divergence).
    if theta.len() > 1 {
        let (first, last) = (theta[0].1, theta[theta.len() - 1].1);
        out.drift = if first != 0.0 { (last - first) / first } else { 0.0 };
    }
    out.primary = theta.last().map(|&(_, v)| v).unwrap_or(0.0);
    if out.verdict == Verdict::Healthy
        && (!out.drift.is_finite() || !out.primary.is_finite())
    {
        out.verdict = Verdict::Divergence;
        out.detail = "non-finite diagnostics".into();
    }
    out.series = vec![
        ("theta".into(), theta),
        ("sst".into(), sst),
        ("ke".into(), ke),
        ("ice".into(), ice),
    ];
    let _ = std::fs::remove_dir_all(&tmp_root);
    out
}

/// Newest committed checkpoint (`ckpt_<id>/COMMIT`) under `dir`.
fn latest_committed(dir: &Path) -> Option<PathBuf> {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(id) = name.strip_prefix("ckpt_").and_then(|s| s.parse::<u64>().ok()) {
            if entry.path().join("COMMIT").exists()
                && best.as_ref().map(|(b, _)| id > *b).unwrap_or(true)
            {
                best = Some((id, entry.path()));
            }
        }
    }
    best.map(|(_, p)| p)
}

/// Standalone ocean spin-up: climatological forcing through the
/// `Component` surface, single-rank world for the halo plumbing.
fn run_ocean_member(sc: &Scenario, member: usize, opts: &CampaignOptions) -> MemberOutcome {
    let cfg = sc.coupled_config();
    let mask = MaskGenerator {
        seed: cfg.mask_seed,
        ..MaskGenerator::default()
    };
    let grid = TripolarGrid::new(cfg.ocn_nlon, cfg.ocn_nlat, cfg.ocn_nlev, mask);
    let period = 86_400.0 / sc.couplings.1 as f64;
    let ocn_config = fitted_ocn_config(&cfg, period);
    let ncpl = (sc.days * sc.couplings.1 as f64).round() as usize;
    let perturb = sc.perturb.map(|amplitude| Perturbation {
        seed: sc.member_seed(member),
        amplitude,
    });
    let decomp = BlockDecomp2d::new(cfg.ocn_nlon, cfg.ocn_nlat, 1, 1);
    let clim = OcnForcing::climatology(&grid, &decomp, 0);

    let world = World::new(1).with_recv_timeout(opts.recv_timeout);
    let mut results = world.run(|rank| {
        let mut comp =
            OcnOnlyComponent::new(&grid, ocn_config.clone(), rank, sc.enso, perturb.as_ref());
        comp.init();
        let n = comp.model.state.ni * comp.model.state.nj;
        let mut av_in = AttrVect::new(n, ATM_TO_OCN_FIELDS);
        av_in.set("taux", &clim.taux);
        av_in.set("qnet", &clim.qnet);
        let mut av_out = AttrVect::new(n, OCN_TO_ATM_FIELDS);

        let v0 = comp.volume_anomaly();
        let (mut sst, mut ke, mut vol) = (Vec::new(), Vec::new(), Vec::new());
        for k in 0..ncpl {
            comp.import(&av_in);
            comp.run(period);
            comp.export(&mut av_out);
            let t = (k + 1) as f64 * period;
            sst.push((t, comp.mean_sst()));
            ke.push((t, comp.model.state.kinetic_energy()));
            vol.push((t, comp.volume_anomaly()));
        }
        comp.finalize();
        let mut out = MemberOutcome::new(member);
        out.simulated_seconds = ncpl as f64 * period;
        out.drift = comp.volume_anomaly() - v0;
        out.primary = comp.mean_sst();
        let healthy = sst.iter().all(|&(_, v)| v.is_finite() && (-5.0..60.0).contains(&v))
            && ke.iter().all(|&(_, v)| v.is_finite());
        if !healthy {
            out.verdict = Verdict::Divergence;
            out.detail = "ocean diagnostics left the physical range".into();
        }
        out.series = vec![("sst".into(), sst), ("ke".into(), ke), ("vol".into(), vol)];
        out
    });
    results.remove(0)
}

/// Standalone aqua-planet atmosphere over a zonal (optionally ENSO-warmed)
/// SST, importing it through the `Component` surface each coupling.
fn run_atm_member(sc: &Scenario, member: usize) -> MemberOutcome {
    let period = 86_400.0 / sc.couplings.0 as f64;
    let ncpl = (sc.days * sc.couplings.0 as f64).round() as usize;
    let perturb = sc.perturb.map(|amplitude| Perturbation {
        seed: sc.member_seed(member),
        amplitude,
    });
    let vortices: Vec<_> = sc.vortices.iter().map(|v| v.to_spec()).collect();
    let mut comp = AtmOnlyComponent::new(
        sc.grid.atm_glevel(),
        sc.grid.atm_nlev(),
        period,
        &vortices,
        perturb.as_ref(),
    );
    comp.init();
    let n = comp.grid.ncells();
    // Aqua planet: zonal SST (K), ENSO anomaly applied to the *surface the
    // atmosphere feels* (there is no ocean to warm).
    let mut sst_k = vec![0.0; n];
    for (i, cell) in comp.grid.cells.iter().enumerate() {
        let phi = cell.lat();
        let mut sst_c = 2.0 + 26.0 * phi.cos().powi(2);
        if let Some(amp) = sc.enso {
            sst_c += SstPattern::Enso { amplitude: amp }.anomaly(phi, cell.lon());
        }
        sst_k[i] = 273.15 + sst_c.max(-1.8);
    }
    let mut av_in = AttrVect::new(n, &["sst"]);
    av_in.set("sst", &sst_k);
    let mut av_out = AttrVect::new(n, ATM_TO_OCN_FIELDS);

    let mass0 = comp.state.total_mass();
    let (mut theta, mut mass) = (Vec::new(), Vec::new());
    for k in 0..ncpl {
        comp.import(&av_in);
        comp.run(period);
        comp.export(&mut av_out);
        let t = (k + 1) as f64 * period;
        theta.push((t, comp.state.mean_theta()));
        mass.push((t, comp.state.total_mass() / mass0));
    }
    comp.finalize();

    let mut out = MemberOutcome::new(member);
    out.simulated_seconds = ncpl as f64 * period;
    out.drift = mass.last().map(|&(_, m)| m - 1.0).unwrap_or(0.0);
    out.primary = theta.last().map(|&(_, v)| v).unwrap_or(0.0);
    let healthy = theta
        .iter()
        .all(|&(_, v)| v.is_finite() && (150.0..400.0).contains(&v))
        && out.drift.is_finite();
    if !healthy {
        out.verdict = Verdict::Divergence;
        out.detail = "atmosphere diagnostics left the physical range".into();
    }
    out.series = vec![("theta".into(), theta), ("mass".into(), mass)];
    out
}

/// Standalone thermodynamic sea ice under a seasonal air-temperature swing.
fn run_ice_member(sc: &Scenario, member: usize) -> MemberOutcome {
    let cfg = sc.coupled_config();
    let mask = MaskGenerator {
        seed: cfg.mask_seed,
        ..MaskGenerator::default()
    };
    let grid = TripolarGrid::new(cfg.ocn_nlon, cfg.ocn_nlat, cfg.ocn_nlev, mask);
    let period = 86_400.0 / sc.couplings.2 as f64;
    let ncpl = (sc.days * sc.couplings.2 as f64).round() as usize;
    let mut comp = IceOnlyComponent::new(&grid, period);
    comp.init();
    let n = grid.nlon * grid.nlat;
    let sst_c = -1.5 + 0.1 * sc.enso.unwrap_or(0.0);
    let mut av_in = AttrVect::new(n, &["tair", "sst"]);
    av_in.set("sst", &vec![sst_c; n]);
    let mut av_out = AttrVect::new(n, ICE_TO_OCN_FIELDS);

    let (mut cover, mut volume) = (Vec::new(), Vec::new());
    for k in 0..ncpl {
        let t = (k + 1) as f64 * period;
        // Seasonal swing about a sub-freezing mean (late-July epoch).
        let tair = -12.0 + 10.0 * (std::f64::consts::TAU * t / (365.0 * 86_400.0)).sin();
        av_in.set("tair", &vec![tair; n]);
        comp.import(&av_in);
        comp.run(period);
        comp.export(&mut av_out);
        cover.push((t, comp.model.ice_cover()));
        volume.push((t, comp.model.total_volume()));
    }
    comp.finalize();

    let mut out = MemberOutcome::new(member);
    out.simulated_seconds = ncpl as f64 * period;
    // Thermodynamic ice has no conserved invariant to drift against; the
    // health check is the physical range of the cover fraction.
    out.drift = 0.0;
    out.primary = cover.last().map(|&(_, v)| v).unwrap_or(0.0);
    let healthy = cover
        .iter()
        .all(|&(_, v)| v.is_finite() && (0.0..=1.0).contains(&v))
        && volume.iter().all(|&(_, v)| v.is_finite() && v >= 0.0);
    if !healthy {
        out.verdict = Verdict::Divergence;
        out.detail = "ice diagnostics left the physical range".into();
    }
    out.series = vec![("cover".into(), cover), ("volume".into(), volume)];
    out
    // `member` is carried for symmetry: ice-only scenarios cannot perturb,
    // so every member is identical and validate caps them at 1.
}

/// Write one scenario's member series as an `ap3esm-tsdb/1` snapshot.
fn write_series_snapshot(
    path: &Path,
    sc: &Scenario,
    members: &[MemberOutcome],
) -> std::io::Result<()> {
    let max_len = members
        .iter()
        .flat_map(|m| m.series.iter().map(|(_, pts)| pts.len()))
        .max()
        .unwrap_or(0);
    let store = SeriesStore::new(max_len.next_power_of_two().max(64));
    for m in members {
        for (name, pts) in &m.series {
            let full = if sc.members == 1 {
                name.clone()
            } else {
                format!("m{}.{name}", m.member)
            };
            for &(t, v) in pts {
                store.record_at(&full, t, v);
            }
        }
    }
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, snapshot_to_json(&store.snapshot()) + "\n")
}

/// Render the human ranking table (the only place wall-clock shows up).
fn render_table(lb: &Leaderboard, outcomes: &[ScenarioOutcome]) -> String {
    let mut t = String::new();
    t.push_str(&format!(
        "{:>4}  {:<24} {:<10} {:<6} {:>6} {:>4} {:>4}  {:<9} {:<10} {:>10} {:>9} {:>8} {:>9} {:>8}\n",
        "rank", "scenario", "model", "grid", "days", "mem", "cyc", "expect", "verdict",
        "score", "sypd*", "drift", "SYPD", "wall_s"
    ));
    for (i, r) in lb.rows.iter().enumerate() {
        let o = outcomes.iter().find(|o| o.name == r.name);
        let (sypd_wall, wall) = o
            .map(|o| (o.sypd_wall(), o.wall_seconds))
            .unwrap_or((0.0, 0.0));
        t.push_str(&format!(
            "{:>4}  {:<24} {:<10} {:<6} {:>6} {:>4} {:>4}  {:<9} {:<10} {:>10.3} {:>9.2} {:>8.1e} {:>9.2} {:>8.1}{}\n",
            i + 1,
            r.name,
            r.model,
            r.grid,
            r.days,
            r.members,
            r.cycles,
            r.expect,
            r.verdict,
            r.score,
            r.sypd_proxy,
            r.drift,
            sypd_wall,
            wall,
            if r.ok { "" } else { "   <- CONTRACT BROKEN" },
        ));
    }
    t.push_str("\n  sypd* = deterministic cost-model projection (ranks the leaderboard);\n");
    t.push_str("  SYPD  = measured on this machine (never in the JSON).\n");
    t
}
