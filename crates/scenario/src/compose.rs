//! Composition: from a parsed [`Scenario`] to runnable model objects.
//!
//! Two halves:
//!
//! * configuration — [`Scenario::coupled_config`] /
//!   [`coupled_options`](Scenario::coupled_options) assemble the coupled
//!   driver's inputs, and [`sypd_proxy`](Scenario::sypd_proxy) prices the
//!   configuration with a deterministic cost model (the leaderboard ranks
//!   on this projection, never on wall clock — see
//!   [`ap3esm_obs::leaderboard`]);
//! * standalone subsets — [`OcnOnlyComponent`], [`AtmOnlyComponent`] and
//!   [`IceOnlyComponent`] wrap one model each behind
//!   [`esm::Component`](Component), exchanging boundary state through the
//!   same [`AttrVect`] field sets the coupled driver rearranges, so an
//!   ocean-spinup scenario exercises the exact MCT-style surface a coupled
//!   run does — minus the coupler.

use std::sync::Arc;

use ap3esm_atm::dycore::{Dycore, DycoreConfig};
use ap3esm_atm::pdc::{PhysicsDriver, PhysicsDynamicsCoupler, SurfaceForcing};
use ap3esm_atm::state::AtmState;
use ap3esm_atm::vortex::seed_vortex;
use ap3esm_comm::Rank;
use ap3esm_cpl::avect::AttrVect;
use ap3esm_cpl::rearrange::RearrangeStrategy;
use ap3esm_esm::component::{Component, ComponentPhase};
use ap3esm_esm::{CoupledConfig, CoupledOptions, Perturbation, SstPattern};
use ap3esm_grid::decomp::BlockDecomp2d;
use ap3esm_grid::icosahedral::GeodesicCounts;
use ap3esm_grid::tripolar::TripolarGrid;
use ap3esm_grid::GeodesicGrid;
use ap3esm_ice::{IceForcing, IceModel};
use ap3esm_ocn::model::{OcnConfig, OcnForcing, OcnModel};
use ap3esm_physics::ConventionalSuite;

use ap3esm_comm::faultplan::{PlanParseError, ScenarioExpectation};

use crate::dsl::{Catalog, GridPreset, Layout, ModelKind, Scenario};

impl GridPreset {
    /// Atmosphere refinement level of this rung.
    pub fn atm_glevel(&self) -> u32 {
        match self {
            GridPreset::Tiny => 3,
            GridPreset::Small => 4,
            GridPreset::Medium => 5,
        }
    }

    /// Atmosphere levels.
    pub fn atm_nlev(&self) -> usize {
        match self {
            GridPreset::Tiny => 5,
            GridPreset::Small => 8,
            GridPreset::Medium => 10,
        }
    }

    /// Ocean grid dims (nlon, nlat, nlev).
    pub fn ocn_dims(&self) -> (usize, usize, usize) {
        match self {
            GridPreset::Tiny => (36, 24, 6),
            GridPreset::Small => (72, 46, 10),
            GridPreset::Medium => (108, 72, 12),
        }
    }
}

impl Scenario {
    /// The `CoupledConfig` this scenario composes. Standalone subsets use
    /// it for grid dimensions and cadence only (their mesh is pinned to
    /// 1×1 — `Catalog::validate` rejects an explicit mesh on them).
    pub fn coupled_config(&self) -> CoupledConfig {
        let (nlon, nlat, nlev) = self.grid.ocn_dims();
        let sequential = self.layout == Some(Layout::Sequential);
        let (px, py) = if self.model == ModelKind::Full && !sequential {
            self.mesh.unwrap_or_else(|| self.grid.default_mesh())
        } else {
            (1, 1)
        };
        CoupledConfig {
            atm_glevel: self.grid.atm_glevel(),
            atm_nlev: self.grid.atm_nlev(),
            ocn_nlon: nlon,
            ocn_nlat: nlat,
            ocn_nlev: nlev,
            ocn_px: px,
            ocn_py: py,
            couplings_per_day: self.couplings,
            strategy: self.strategy.unwrap_or(RearrangeStrategy::NonBlockingP2p),
            ai_physics: false,
            mask_seed: 20250704,
            single_domain: sequential,
        }
    }

    /// World size a full-model member needs (1 for standalone subsets).
    pub fn world_size(&self) -> usize {
        match self.model {
            ModelKind::Full => self.coupled_config().world_size(),
            _ => 1,
        }
    }

    /// The coupled driver's options for ensemble member `member` (full
    /// model only; checkpoint/resume fields are the runner's business).
    pub fn coupled_options(&self, member: usize) -> CoupledOptions {
        let mut vortices = self.vortices.iter().map(|v| v.to_spec());
        CoupledOptions {
            days: self.days,
            vortex: vortices.next(),
            extra_vortices: vortices.collect(),
            sst_pattern: self.enso.map(|amplitude| SstPattern::Enso { amplitude }),
            perturb: self.perturb.map(|amplitude| Perturbation {
                seed: self.member_seed(member),
                amplitude,
            }),
            record_track: !self.vortices.is_empty(),
            ..CoupledOptions::default()
        }
    }

    /// Deterministic cost-model SYPD projection for this configuration.
    ///
    /// Prices one simulated day in gridpoint-steps from the composed
    /// timestep hierarchy — the same fitting the driver performs — and
    /// converts at a fixed reference throughput. A *projection*, not a
    /// measurement: identical on every machine, which is what lets the
    /// leaderboard rank on it. The cost-model spacing is the dyadic
    /// `7054 km / 2^glevel` approximation of the geodesic mean spacing, so
    /// no grid needs to be built to price a catalog.
    pub fn sypd_proxy(&self) -> f64 {
        /// Reference throughput (gridpoint-steps per second).
        const REF_RATE: f64 = 2.0e6;
        let cfg = self.coupled_config();
        let (atm_cpd, ocn_cpd, ice_cpd) = (
            self.couplings.0.max(1) as f64,
            self.couplings.1.max(1) as f64,
            self.couplings.2.max(1) as f64,
        );

        // Atmosphere: model steps per coupling from the fitted dt, times
        // the fixed 16 dynamics substeps per model step.
        let counts = GeodesicCounts::at_glevel(cfg.atm_glevel);
        let dx_km = 7054.0 / f64::powi(2.0, cfg.atm_glevel as i32);
        let base = DycoreConfig::for_spacing_km(dx_km);
        let atm_period = 86_400.0 / atm_cpd;
        let atm_steps = (atm_period / base.dt_model).ceil().max(1.0);
        let atm_cost =
            (counts.cells * cfg.atm_nlev) as f64 * atm_cpd * atm_steps * 16.0;

        // Ocean: baroclinic steps per coupling from the fitted dt; the
        // barotropic substeps are priced at 1/5 of a baroclinic step each
        // (2-D vs 3-D work), the Canuto mixing at one more step.
        let ocn = OcnConfig::for_grid(cfg.ocn_nlon, cfg.ocn_nlat, cfg.ocn_nlev, 1, 1);
        let ocn_period = 86_400.0 / ocn_cpd;
        let ocn_steps = (ocn_period / ocn.dt_baroclinic).ceil().max(1.0);
        let ocn_points = (cfg.ocn_nlon * cfg.ocn_nlat * cfg.ocn_nlev) as f64;
        let ocn_cost =
            ocn_points * ocn_cpd * ocn_steps * (2.0 + ocn.n_barotropic as f64 / 5.0);

        // Ice: one thermodynamic step per coupling over the surface grid.
        let ice_cost = (cfg.ocn_nlon * cfg.ocn_nlat) as f64 * ice_cpd;

        let cost_per_day = match self.model {
            ModelKind::Full => atm_cost + ocn_cost + ice_cost,
            ModelKind::OceanOnly => ocn_cost,
            ModelKind::AtmOnly => atm_cost,
            ModelKind::IceOnly => ice_cost,
        };
        REF_RATE * 86_400.0 / (365.0 * cost_per_day)
    }
}

impl Catalog {
    /// Semantic validation, past what the grammar can see: every scenario's
    /// composed `CoupledConfig` must validate, fault plans must fit the
    /// world they inject into, and standalone subsets reject knobs that
    /// only the coupled driver honours. Errors name the scenario and carry
    /// the most specific catalog line available (the offending event line
    /// for plan errors, the scenario header otherwise).
    pub fn validate(&self) -> Result<(), PlanParseError> {
        for sc in &self.scenarios {
            let at = |message: String| PlanParseError {
                line: sc.header_line,
                message: format!("scenario {:?}: {message}", sc.name),
            };
            let cfg = sc.coupled_config();
            cfg.validate()
                .map_err(|e| at(e.to_string()))?;
            match sc.model {
                ModelKind::Full => {
                    sc.plan
                        .validate(cfg.world_size())
                        .map_err(|e| PlanParseError {
                            line: e.line,
                            message: format!("scenario {:?}: {}", sc.name, e.message),
                        })?;
                }
                m => {
                    if !sc.plan.events.is_empty() {
                        let line = sc.plan.event_lines.first().copied().unwrap_or(sc.header_line);
                        return Err(PlanParseError {
                            line,
                            message: format!(
                                "scenario {:?}: fault plans drive the coupled world; \
                                 model is {}",
                                sc.name,
                                m.as_str()
                            ),
                        });
                    }
                    if sc.mesh.is_some() {
                        return Err(at(format!(
                            "mesh is only meaningful for model full (model is {})",
                            m.as_str()
                        )));
                    }
                    if sc.layout.is_some() {
                        return Err(at(format!(
                            "layout is only meaningful for model full (model is {})",
                            m.as_str()
                        )));
                    }
                    if sc.strategy.is_some() {
                        return Err(at(format!(
                            "strategy is only meaningful for model full (model is {})",
                            m.as_str()
                        )));
                    }
                    if sc.cycles > 1 {
                        return Err(at(
                            "cycles (restart-cycled reforecasts) need the coupled \
                             driver's checkpoint machinery"
                                .into(),
                        ));
                    }
                    if matches!(m, ModelKind::OceanOnly | ModelKind::IceOnly)
                        && !sc.vortices.is_empty()
                    {
                        return Err(at(format!(
                            "vortex seeds an atmosphere; model is {}",
                            m.as_str()
                        )));
                    }
                    if m == ModelKind::IceOnly && sc.perturb.is_some() {
                        return Err(at(
                            "perturb seeds θ noise; the ice-only subset has no \
                             prognostic temperature to perturb"
                                .into(),
                        ));
                    }
                }
            }
            if sc.members > 1 && sc.perturb.is_none() {
                return Err(at(format!(
                    "members {} without perturb would run identical members; \
                     add perturb amp=... to decorrelate the ensemble",
                    sc.members
                )));
            }
            if sc.expect != ScenarioExpectation::Healthy {
                if sc.model != ModelKind::Full || sc.plan.events.is_empty() {
                    return Err(at(format!(
                        "expect={} needs a fault plan on the coupled model \
                         (a fault-free run can only be healthy)",
                        sc.expect.as_str()
                    )));
                }
                if sc.cycles > 1 {
                    return Err(at(format!(
                        "expect={} with cycles > 1 is unsupported: a degraded \
                         world cannot hand its checkpoint to a full-size resume",
                        sc.expect.as_str()
                    )));
                }
            }
        }
        Ok(())
    }
}

/// The scenario engine's copy of the driver's period fitting (the driver's
/// helpers are private to `esm::coupled`; the fitting rule is part of the
/// §5.1.1 coupling contract, duplicated here verbatim).
pub fn fitted_atm_config(dx_km: f64, period: f64) -> DycoreConfig {
    let base = DycoreConfig::for_spacing_km(dx_km);
    let n = (period / base.dt_model).ceil().max(1.0);
    let dt_model = period / n;
    let dt_tracer = dt_model / 4.0;
    let dt_dyn = dt_tracer / 4.0;
    DycoreConfig {
        dt_dyn,
        dt_tracer,
        dt_model,
        nu: 0.015 * (dx_km * 1000.0).powi(2) / dt_dyn,
    }
}

/// Same fitting for the ocean (single-rank standalone mesh).
pub fn fitted_ocn_config(config: &CoupledConfig, period: f64) -> OcnConfig {
    let mut c = OcnConfig::for_grid(
        config.ocn_nlon,
        config.ocn_nlat,
        config.ocn_nlev,
        1,
        1,
    );
    let n = (period / c.dt_baroclinic).ceil().max(1.0);
    c.dt_baroclinic = period / n;
    c.rank_offset = 0;
    c
}

// ---------------------------------------------------------------------------
// Standalone component wrappers
// ---------------------------------------------------------------------------

/// The standalone ocean behind [`Component`]: imports the
/// [`ATM_TO_OCN_FIELDS`] forcing, steps the LICOM-analogue through the
/// coupling period, exports [`OCN_TO_ATM_FIELDS`] surface state.
pub struct OcnOnlyComponent<'a> {
    rank: &'a Rank,
    pub model: OcnModel,
    forcing: OcnForcing,
    phase: ComponentPhase,
}

impl<'a> OcnOnlyComponent<'a> {
    /// Single-rank ocean over `grid`; `enso` adds the warm-pool anomaly to
    /// the *true* initial SST field (the coupled model can only nudge its
    /// boundary copy), `perturb` decorrelates ensemble members.
    pub fn new(
        grid: &TripolarGrid,
        config: OcnConfig,
        rank: &'a Rank,
        enso: Option<f64>,
        perturb: Option<&Perturbation>,
    ) -> Self {
        let mut model = OcnModel::new(grid, config, 0);
        let st = &mut model.state;
        let (ni, nj) = (st.ni, st.nj);
        for j in 0..nj {
            let phi = grid.lat[st.block.j0 + j];
            for i in 0..ni {
                let idx = st.at(i, j);
                if st.kmt[idx] == 0 {
                    continue;
                }
                if let Some(amp) = enso {
                    let lam = grid.lon[st.block.i0 + i];
                    st.t[0][idx] += SstPattern::Enso { amplitude: amp }.anomaly(phi, lam);
                }
                if let Some(p) = perturb {
                    st.t[0][idx] += p.noise(j * ni + i);
                }
            }
        }
        let forcing = OcnForcing::zeros(ni, nj);
        OcnOnlyComponent {
            rank,
            model,
            forcing,
            phase: ComponentPhase::Created,
        }
    }

    /// Area-weighted mean free-surface elevation (m) over ocean columns —
    /// the volume-conservation drift metric (a perfect barotropic solver
    /// keeps it at its initial value).
    pub fn volume_anomaly(&self) -> f64 {
        let st = &self.model.state;
        let (mut vol, mut area) = (0.0, 0.0);
        for j in 0..st.nj {
            for i in 0..st.ni {
                let idx = st.at(i, j);
                if st.kmt[idx] > 0 {
                    let da = st.dx[j] * st.dy;
                    vol += st.eta[idx] * da;
                    area += da;
                }
            }
        }
        if area > 0.0 {
            vol / area
        } else {
            0.0
        }
    }

    /// Mean SST (°C) over ocean columns.
    pub fn mean_sst(&self) -> f64 {
        let (sum, count) = self.model.state.sst_sum_count();
        if count > 0 {
            sum / count as f64
        } else {
            0.0
        }
    }
}

impl Component for OcnOnlyComponent<'_> {
    fn name(&self) -> &'static str {
        "ocn"
    }

    fn init(&mut self) {
        self.phase = ComponentPhase::Initialized;
    }

    fn run(&mut self, seconds: f64) {
        self.phase = ComponentPhase::Running;
        let steps = (seconds / self.model.config.dt_baroclinic).round() as usize;
        for _ in 0..steps.max(1) {
            self.model.step(self.rank, &self.forcing);
        }
    }

    fn finalize(&mut self) {
        self.phase = ComponentPhase::Finalized;
    }

    fn phase(&self) -> ComponentPhase {
        self.phase
    }

    fn import(&mut self, av: &AttrVect) {
        self.forcing.taux.copy_from_slice(av.get("taux"));
        self.forcing.tauy.copy_from_slice(av.get("tauy"));
        self.forcing.qnet.copy_from_slice(av.get("qnet"));
        // Precipitation freshens the surface: the coupled merge's virtual
        // salt-flux convention (psu·m/s, negative freshens).
        for (salt, p) in self.forcing.salt_flux.iter_mut().zip(av.get("precip")) {
            *salt = -0.035 * p;
        }
    }

    fn export(&self, av: &mut AttrVect) {
        let st = &self.model.state;
        let n = st.ni * st.nj;
        let (mut sst, mut ssu, mut ssv) =
            (Vec::with_capacity(n), Vec::with_capacity(n), Vec::with_capacity(n));
        for j in 0..st.nj {
            for i in 0..st.ni {
                let idx = st.at(i, j);
                sst.push(st.t[0][idx]);
                ssu.push(st.u[0][idx] + st.ubar[idx]);
                ssv.push(st.v[0][idx] + st.vbar[idx]);
            }
        }
        av.set("sst", &sst);
        av.set("ssu", &ssu);
        av.set("ssv", &ssv);
    }

    fn internal_dt(&self) -> f64 {
        self.model.config.dt_baroclinic
    }
}

/// The standalone aqua-planet atmosphere behind [`Component`]: imports an
/// `sst` field on its own cells, steps dynamics+physics, exports the
/// [`ATM_TO_OCN_FIELDS`] it would hand a coupler.
pub struct AtmOnlyComponent {
    pub grid: Arc<GeodesicGrid>,
    pub state: AtmState,
    dycore: Dycore,
    pdc: PhysicsDynamicsCoupler,
    forcing: SurfaceForcing,
    last_precip: Vec<f64>,
    /// Simulated seconds since start (drives the zenith angle).
    time: f64,
}

impl AtmOnlyComponent {
    pub fn new(
        glevel: u32,
        nlev: usize,
        period: f64,
        vortices: &[ap3esm_atm::vortex::VortexSpec],
        perturb: Option<&Perturbation>,
    ) -> Self {
        let grid = Arc::new(GeodesicGrid::new(glevel));
        let dx_km = grid.mean_spacing_km();
        let mut state = AtmState::isothermal(Arc::clone(&grid), nlev, 288.0);
        let n = grid.ncells();
        // Same meridional structure as the coupled driver's cold start.
        for k in 0..nlev {
            for i in 0..n {
                let phi = grid.cells[i].lat();
                state.theta[k * n + i] += 15.0 * (phi.cos().powi(2) - 0.5);
            }
        }
        for spec in vortices {
            seed_vortex(&mut state, spec);
        }
        if let Some(p) = perturb {
            for (i, th) in state.theta.iter_mut().enumerate() {
                *th += p.noise(i);
            }
        }
        let dycore = Dycore::new(Arc::clone(&grid), fitted_atm_config(dx_km, period));
        let pdc = PhysicsDynamicsCoupler::new(PhysicsDriver::Conventional(
            ConventionalSuite::default(),
        ));
        let forcing = SurfaceForcing::uniform(n, 288.0, 0.0, 1.0);
        AtmOnlyComponent {
            grid,
            state,
            dycore,
            pdc,
            forcing,
            last_precip: vec![0.0; n],
            time: 0.0,
        }
    }

    /// Global precipitation rate (m/s) over the last `run` period.
    pub fn precip_rate(&self, period: f64) -> Vec<f64> {
        self.state
            .precip_accum
            .iter()
            .zip(&self.last_precip)
            .map(|(now, before)| (now - before).max(0.0) / period)
            .collect()
    }
}

impl Component for AtmOnlyComponent {
    fn name(&self) -> &'static str {
        "atm"
    }

    fn init(&mut self) {}

    fn run(&mut self, seconds: f64) {
        // Zenith angle refreshed once per coupling, as in the coupled
        // driver (late-July epoch).
        let day_of_year = 202.0 + self.time / 86_400.0;
        let seconds_utc = self.time % 86_400.0;
        for i in 0..self.grid.ncells() {
            let phi = self.grid.cells[i].lat();
            let lam = self.grid.cells[i].lon();
            self.forcing.coszr[i] =
                ap3esm_esm::solar::cos_zenith(phi, lam, day_of_year, seconds_utc);
        }
        self.last_precip.copy_from_slice(&self.state.precip_accum);
        let steps = (seconds / self.dycore.config.dt_model).round() as usize;
        for _ in 0..steps.max(1) {
            self.dycore.step_model_dynamics(&mut self.state);
            self.pdc
                .apply(&mut self.state, &self.forcing, self.dycore.config.dt_model);
        }
        self.time += seconds;
    }

    fn finalize(&mut self) {}

    fn phase(&self) -> ComponentPhase {
        ComponentPhase::Running
    }

    fn import(&mut self, av: &AttrVect) {
        // Aqua planet: skin temperature is the imported SST (K), sea
        // everywhere, unit wetness.
        self.forcing.tskin.copy_from_slice(av.get("sst"));
        self.forcing.wetness.iter_mut().for_each(|w| *w = 1.0);
    }

    fn export(&self, av: &mut AttrVect) {
        let winds = self.state.surface_wind();
        let n = self.grid.ncells();
        let (mut taux, mut tauy) = (vec![0.0; n], vec![0.0; n]);
        // Bulk-like stress from the surface wind (fixed exchange coeff).
        const RHO_CD: f64 = 1.2 * 1.3e-3;
        for (i, &(u, v)) in winds.iter().enumerate() {
            let speed = (u * u + v * v).sqrt();
            taux[i] = RHO_CD * speed * u;
            tauy[i] = RHO_CD * speed * v;
        }
        av.set("taux", &taux);
        av.set("tauy", &tauy);
        av.set("qnet", &vec![0.0; n]);
        av.set("precip", &self.precip_rate(self.dycore.config.dt_model.max(1.0)));
    }

    fn internal_dt(&self) -> f64 {
        self.dycore.config.dt_model
    }
}

/// The standalone thermodynamic sea ice behind [`Component`]: imports
/// `tair`/`sst` forcing, steps the CICE-analogue, exports cover/volume
/// diagnostics through its state.
pub struct IceOnlyComponent {
    pub model: IceModel,
    forcing: IceForcing,
    dt: f64,
}

impl IceOnlyComponent {
    pub fn new(grid: &TripolarGrid, dt: f64) -> Self {
        let decomp = BlockDecomp2d::new(grid.nlon, grid.nlat, 1, 1);
        let model = IceModel::new(grid, &decomp, 0);
        let n = grid.nlon * grid.nlat;
        let forcing = IceForcing::uniform(n, -5.0, -1.5);
        IceOnlyComponent { model, forcing, dt }
    }
}

impl Component for IceOnlyComponent {
    fn name(&self) -> &'static str {
        "ice"
    }

    fn init(&mut self) {}

    fn run(&mut self, seconds: f64) {
        let steps = (seconds / self.dt).round() as usize;
        for _ in 0..steps.max(1) {
            self.model.step(&self.forcing, self.dt);
        }
    }

    fn finalize(&mut self) {}

    fn phase(&self) -> ComponentPhase {
        ComponentPhase::Running
    }

    fn import(&mut self, av: &AttrVect) {
        self.forcing.tair.copy_from_slice(av.get("tair"));
        self.forcing.sst.copy_from_slice(av.get("sst"));
    }

    fn export(&self, av: &mut AttrVect) {
        av.set("ifrac", &self.model.state.fraction);
    }

    fn internal_dt(&self) -> f64 {
        self.dt
    }
}
