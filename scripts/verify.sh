#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, lint-clean clippy.
# CI runs exactly this; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
