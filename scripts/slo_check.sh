#!/usr/bin/env bash
# Offline SLO gate: replay a saved telemetry snapshot
# (target/obs/series-<name>.json) through the alert engine and fail if
# any rule fired. Defaults to the coupled_esm snapshot and the built-in
# simulation rules; pass a snapshot path and/or --rules <file> to
# override (arguments are forwarded to examples/slo_replay.rs).
#
#   scripts/slo_check.sh
#   scripts/slo_check.sh target/obs/series-myrun.json --rules rules.txt
set -euo pipefail
cd "$(dirname "$0")/.."

args=("$@")
have_snapshot=false
for a in "${args[@]:-}"; do
  case "$a" in
    --*) ;;
    "") ;;
    *) have_snapshot=true ;;
  esac
done
if ! $have_snapshot; then
  args+=("target/obs/series-coupled-esm.json")
fi

exec cargo run --release --quiet --example slo_replay -- "${args[@]}"
