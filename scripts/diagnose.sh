#!/usr/bin/env bash
# Postmortem a flight-recorder diagnostics bundle: merge the per-rank
# journals, name the first-stalled rank, list the orphaned sends and the
# receive timeouts that detected the silence. With no argument, picks the
# most recently modified target/obs/bundle-*/ — i.e. "diagnose whatever
# just crashed". Arguments are forwarded to examples/postmortem.rs.
#
#   scripts/diagnose.sh
#   scripts/diagnose.sh target/obs/bundle-chaos-lose-ocean-rank
#   scripts/diagnose.sh target/obs/bundle-pm-kill --expect-blame 1
set -euo pipefail
cd "$(dirname "$0")/.."

args=("$@")
have_bundle=false
skip=false
for a in "${args[@]:-}"; do
  if $skip; then skip=false; continue; fi
  case "$a" in
    --expect-blame) skip=true ;;         # option taking a value
    --bundle) skip=true; have_bundle=true ;;
    --*) ;;
    "") ;;
    *) have_bundle=true ;;
  esac
done
if ! $have_bundle; then
  latest=$(ls -dt target/obs/bundle-*/ 2>/dev/null | head -1 || true)
  if [ -z "${latest:-}" ]; then
    echo "diagnose: no target/obs/bundle-*/ found; pass a bundle directory" >&2
    exit 2
  fi
  echo "diagnose: analyzing ${latest%/}" >&2
  if [ "${#args[@]}" -eq 0 ]; then
    args=("${latest%/}")
  else
    args=("${latest%/}" "${args[@]}")
  fi
fi

exec cargo run --release --quiet --example postmortem -- "${args[@]}"
