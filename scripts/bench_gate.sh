#!/usr/bin/env bash
# Performance regression gate (DESIGN.md §12).
#
# Runs the canonical quick suite (`perf_trajectory`), which emits the next
# `BENCH_<n>.json` trajectory point at the repo root, then judges it
# against the committed trajectory: noise bands from historical variance,
# direction-aware verdicts, nonzero exit on any regression.
#
#   scripts/bench_gate.sh              # run suite + gate (exit 2 on regression)
#   scripts/bench_gate.sh --dry-run    # run suite + report only, always exit 0
#   scripts/bench_gate.sh --gate-only  # judge newest committed point, no run
#
# Extra flags are passed through to perf_trajectory (--days, --iters,
# --serve-requests, --out-dir ...).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p ap3esm-bench --bin perf_trajectory
exec ./target/release/perf_trajectory --gate "$@"
