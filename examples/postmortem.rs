//! Offline postmortem over a flight-recorder diagnostics bundle.
//!
//! Reads nothing but the bundle directory a crashed/stalled run left in
//! `target/obs/bundle-<name>/`, merges the per-rank journals on the shared
//! trace clock, and prints the blame report: the first-stalled rank, the
//! sends its silence orphaned, and the receive timeouts that detected it.
//! The same report is written back into the bundle as `postmortem.json`
//! so CI can archive verdict and evidence together.
//!
//! ```sh
//! cargo run --release --example postmortem -- target/obs/bundle-chaos-lose-ocean-rank
//! cargo run --release --example postmortem -- --bundle DIR --expect-blame 1
//! ```
//!
//! Exits nonzero when the bundle is unreadable or `--expect-blame` names
//! a different rank than the analyzer does (the CI smoke contract).

use ap3esm::obs::flightrec::analyze;
use std::path::PathBuf;

fn main() {
    let mut bundle: Option<PathBuf> = None;
    let mut expect_blame: Option<usize> = None;
    let mut json_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--bundle" => bundle = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--expect-blame" => {
                expect_blame = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--json" => json_only = true,
            _ if !a.starts_with('-') && bundle.is_none() => bundle = Some(a.into()),
            _ => usage(),
        }
    }
    let Some(bundle) = bundle else { usage() };

    let pm = match analyze(&bundle) {
        Ok(pm) => pm,
        Err(e) => {
            eprintln!("postmortem: {}: {e}", bundle.display());
            std::process::exit(2);
        }
    };

    let report = pm.to_json().to_string();
    if json_only {
        println!("{report}");
    } else {
        print!("{}", pm.render_table());
    }
    // Verdict and evidence travel together in the bundle.
    if let Err(e) = std::fs::write(bundle.join("postmortem.json"), &report) {
        eprintln!("postmortem: cannot write postmortem.json: {e}");
    }

    if let Some(want) = expect_blame {
        match pm.blamed {
            Some(got) if got == want => {
                eprintln!("postmortem: blamed rank {got} matches --expect-blame");
            }
            got => {
                eprintln!(
                    "postmortem: expected blame on rank {want}, analyzer says {:?}",
                    got
                );
                std::process::exit(1);
            }
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: postmortem [--bundle] DIR [--expect-blame RANK] [--json]\n\
         analyze a target/obs/bundle-<name>/ diagnostics bundle"
    );
    std::process::exit(2);
}
