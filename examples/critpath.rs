//! "Where is my SYPD going?" — offline critical-path analysis.
//!
//! Replays a chrome trace written by a traced coupled run
//! (`target/obs/trace-<name>.json`) into the cross-rank activity graph,
//! extracts the critical path, classifies every off-path wait
//! (late-sender / late-receiver / collective / timeout), and prints the
//! ranked optimization-targets table. `--what-if NAME:FACTOR` re-solves
//! the graph with that section's work scaled and reports the projected
//! speedup; `--report` instead pulls the analysis a run already embedded
//! in its `run-<name>.json`.
//!
//! ```sh
//! cargo run --release --example coupled_esm -- --days 1 --trace
//! cargo run --release --example critpath -- target/obs/trace-coupled-esm.json
//! cargo run --release --example critpath -- --trace target/obs/trace-coupled-esm.json \
//!     --what-if atm_run:0.5 --check --out target/obs/critpath.json
//! cargo run --release --example critpath -- --report target/obs/run-coupled-esm.json --json
//! ```
//!
//! Exits 2 when the input is unreadable (or has no analysis), 1 when
//! `--check` fails: the on-path compute+comm+wait fractions must sum to
//! 1.0 ±1% and every requested what-if must project a strictly positive
//! gain.

use ap3esm::obs::critpath::Analyzer;
use ap3esm::obs::json::Json;
use std::path::PathBuf;

struct Cli {
    trace: Option<PathBuf>,
    report: Option<PathBuf>,
    what_ifs: Vec<(String, f64)>,
    sypd: Option<f64>,
    json_only: bool,
    check: bool,
    out: Option<PathBuf>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        trace: None,
        report: None,
        what_ifs: Vec::new(),
        sypd: None,
        json_only: false,
        check: false,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => cli.trace = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--report" => cli.report = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--what-if" => {
                let spec = args.next().unwrap_or_else(|| usage());
                cli.what_ifs.push(parse_what_if(&spec));
            }
            "--sypd" => {
                cli.sypd = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--json" => cli.json_only = true,
            "--check" => cli.check = true,
            "--out" => cli.out = Some(args.next().unwrap_or_else(|| usage()).into()),
            _ if !a.starts_with('-') && cli.trace.is_none() && cli.report.is_none() => {
                cli.trace = Some(a.into())
            }
            _ => usage(),
        }
    }
    if cli.trace.is_none() && cli.report.is_none() {
        usage()
    }
    cli
}

/// `NAME:FACTOR` with an optional `section=` prefix (both
/// `--what-if atm_run:0.5` and `--what-if section=atm_run:0.5` work).
fn parse_what_if(spec: &str) -> (String, f64) {
    let spec = spec.strip_prefix("section=").unwrap_or(spec);
    let Some((name, factor)) = spec.split_once(':') else {
        usage()
    };
    let factor: f64 = factor.parse().unwrap_or_else(|_| usage());
    if name.is_empty() || !factor.is_finite() || factor <= 0.0 {
        usage()
    }
    (name.to_string(), factor)
}

fn load_json(path: &PathBuf) -> Json {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("critpath: {}: {e}", path.display());
        std::process::exit(2);
    });
    Json::parse(&body).unwrap_or_else(|e| {
        eprintln!("critpath: {}: bad JSON: {e}", path.display());
        std::process::exit(2);
    })
}

fn main() {
    let cli = parse_cli();

    // --report: the run already embedded its analysis; extract and judge it.
    if let Some(path) = &cli.report {
        if !cli.what_ifs.is_empty() {
            eprintln!("critpath: --what-if needs the full graph; use --trace");
            std::process::exit(2);
        }
        let doc = load_json(path);
        let Some(cp) = doc.get("critpath").filter(|c| !matches!(**c, Json::Null)) else {
            eprintln!(
                "critpath: {}: report carries no critpath analysis (re-run with --trace)",
                path.display()
            );
            std::process::exit(2);
        };
        println!("{cp}");
        if let Some(out) = &cli.out {
            write_out(out, &cp.to_string());
        }
        if cli.check && !fractions_ok(cp) {
            eprintln!("critpath: CHECK FAILED: fractions do not sum to 1.0 +/- 1%");
            std::process::exit(1);
        }
        if cli.check {
            eprintln!("critpath: check passed");
        }
        return;
    }

    // --trace: rebuild the activity graph from the chrome trace.
    let path = cli.trace.as_ref().expect("trace path");
    let doc = load_json(path);
    let mut analyzer = Analyzer::from_chrome_trace(&doc).unwrap_or_else(|e| {
        eprintln!("critpath: {}: {e}", path.display());
        std::process::exit(2);
    });
    if let Some(sypd) = cli.sypd {
        analyzer = analyzer.with_sypd(sypd);
    }
    let analysis = analyzer.analyze();
    let what_ifs: Vec<_> = cli
        .what_ifs
        .iter()
        .map(|(name, factor)| analyzer.what_if(name, *factor))
        .collect();

    let mut json = analysis.to_json();
    if !what_ifs.is_empty() {
        json.set(
            "what_if_requested",
            Json::Arr(what_ifs.iter().map(|w| w.to_json()).collect()),
        );
    }
    if cli.json_only {
        println!("{json}");
    } else {
        print!("{}", analysis.render_table());
        for w in &what_ifs {
            println!(
                "what-if {} x{:.2}: {:.1}us -> {:.1}us, {:+.1}% speedup{}",
                w.section,
                w.factor,
                w.baseline_us,
                w.projected_us,
                w.gain_pct,
                if w.projected_sypd > 0.0 {
                    format!(" (projected SYPD {:.2})", w.projected_sypd)
                } else {
                    String::new()
                },
            );
        }
    }
    if let Some(out) = &cli.out {
        write_out(out, &json.to_string());
    }

    if cli.check {
        let sum = analysis.compute_frac() + analysis.comm_frac() + analysis.wait_frac();
        let mut failed = Vec::new();
        if (sum - 1.0).abs() > 0.01 {
            failed.push(format!("fractions sum to {sum:.4}, want 1.0 +/- 1%"));
        }
        for w in &what_ifs {
            if w.gain_pct <= 0.0 {
                failed.push(format!(
                    "what-if {} x{:.2} projects {:+.2}%, want > 0",
                    w.section, w.factor, w.gain_pct
                ));
            }
        }
        if !failed.is_empty() {
            for f in &failed {
                eprintln!("critpath: CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
        eprintln!("critpath: check passed");
    }
}

fn fractions_ok(cp: &Json) -> bool {
    let frac = |k: &str| {
        cp.get("fractions")
            .and_then(|f| f.get(k))
            .and_then(|v| v.as_f64())
            .unwrap_or(f64::NAN)
    };
    let sum = frac("compute") + frac("comm") + frac("wait");
    (sum - 1.0).abs() <= 0.01
}

fn write_out(path: &PathBuf, body: &str) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(path, format!("{body}\n")) {
        eprintln!("critpath: cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: critpath [--trace] TRACE.json [--what-if [section=]NAME:FACTOR]...\n\
         \x20               [--sypd SYPD] [--json] [--check] [--out PATH]\n\
         \x20      critpath --report RUN.json [--json] [--check] [--out PATH]\n\
         analyze a traced coupled run's critical path: compute/comm/wait\n\
         fractions, wait-state blame, and what-if SYPD projections"
    );
    std::process::exit(2);
}
