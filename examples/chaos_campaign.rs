//! Deterministic chaos campaign over the coupled driver's recovery ladder.
//!
//! Runs a fixed set of named scenarios — each a seeded fault plan plus an
//! expected outcome — against the same laptop-scale coupled world, and
//! holds every run to the chaos contract:
//!
//! * expected **healthy**: the run finishes the full day with no failure
//!   (rollbacks allowed, shrinks not);
//! * expected **degraded**: the run finishes on the surviving ranks, and
//!   its post-loss trajectory is **bitwise identical** to a fresh
//!   reference world of the shrunken size resuming from the same
//!   hand-off checkpoint;
//! * expected **failure**: the run ends in a clean structured
//!   `RecoveryFailure` — never a hang, panic, or silent wrong answer.
//!
//! Hangs are caught by a per-scenario watchdog, panics by `catch_unwind`,
//! silent divergence by the reference comparison. The verdict table goes
//! to stdout, a machine-readable report to `target/obs/chaos-report.json`,
//! and the process exits nonzero if any scenario violated its contract.
//!
//! The campaign is written in the scenario-catalog grammar
//! (`ap3esm::scenario::dsl`), which is a strict superset of the old chaos
//! campaign format — `--catalog` loads any catalog file (e.g.
//! `scenarios/chaos.scn`, the shipped copy of the embedded ladder).
//!
//! ```sh
//! cargo run --release --example chaos_campaign
//! cargo run --release --example chaos_campaign -- --seed 7 --only lose
//! cargo run --release --example chaos_campaign -- --catalog scenarios/chaos.scn
//! ```

use ap3esm::comm::{FaultInjector, ScenarioExpectation};
use ap3esm::esm::RecoveryConfig;
use ap3esm::obs::flightrec::{dump_bundle, BundleSpec, FlightRecorder};
use ap3esm::obs::json::Json;
use ap3esm::prelude::*;
use ap3esm::scenario::dsl::Catalog;
use std::path::PathBuf;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Generous enough that debug-build compute gaps never masquerade as
/// deadlocks, small enough that detection stays demo-sized.
const RECV_TIMEOUT: Duration = Duration::from_millis(800);

/// A scenario that produces neither a result nor a panic within this
/// budget has hung — exactly what the campaign exists to catch.
const WATCHDOG: Duration = Duration::from_secs(180);

/// Wire tag of the ocean→coupler gather stream (p2p strategy, user tag 22).
const GATHER_P2P_TAG: u64 = 0x5240_0000 + 22;

/// The campaign in the scenario-catalog grammar: every rung of the
/// recovery escalation ladder on the 4-rank 3x1-ocean chaos world (losing
/// one ocean rank shrinks to the 2x1 reference layout). `{seed}` and
/// `{gather}` are substituted before parsing.
const CAMPAIGN_TEXT: &str = "\
name chaos
seed {seed}
grid tiny
mesh 3x1
days 1
scenario baseline expect=healthy
scenario transient-drop expect=healthy
drop src=1 dst=0 tag={gather} nth=4
scenario delay-jitter expect=healthy
delay src=2 dst=0 tag={gather} nth=2 ms=50
scenario transient-kill expect=healthy
kill rank=2 step=3
scenario corrupt-fallback expect=healthy
kill rank=2 step=3
corrupt ckpt=2 field=atm_theta subfile=1 byte=100
scenario lose-ocean-rank expect=degraded
die rank=2 step=3
scenario shrink-budget-exhausted expect=failure
die rank=2 step=2
die rank=3 step=3
scenario die-before-first-checkpoint expect=failure
die rank=2 step=1
";

fn campaign_options(ckpt: PathBuf, days: f64) -> CoupledOptions {
    CoupledOptions {
        days,
        checkpoint_dir: Some(ckpt),
        recovery: RecoveryConfig {
            checkpoint_interval: 1,
            keep_checkpoints: 4,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// How one scenario actually ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Observed {
    Healthy,
    Degraded,
    Failure,
    Panic,
    Hang,
    Divergence,
}

impl Observed {
    fn as_str(&self) -> &'static str {
        match self {
            Observed::Healthy => "healthy",
            Observed::Degraded => "degraded",
            Observed::Failure => "failure",
            Observed::Panic => "PANIC",
            Observed::Hang => "HANG",
            Observed::Divergence => "DIVERGENCE",
        }
    }

    fn matches(&self, expect: ScenarioExpectation) -> bool {
        matches!(
            (self, expect),
            (Observed::Healthy, ScenarioExpectation::Healthy)
                | (Observed::Degraded, ScenarioExpectation::Degraded)
                | (Observed::Failure, ScenarioExpectation::Failure)
        )
    }
}

struct Verdict {
    name: String,
    expect: ScenarioExpectation,
    observed: Observed,
    detail: String,
    recoveries: usize,
    shrinks: usize,
    degraded_ranks: usize,
    wall_s: f64,
    /// Diagnostics bundle for this scenario: the driver's dump when the
    /// run ended in trouble, or the campaign's own fallback dump on a
    /// hang/panic (taken from the still-reachable shared world).
    bundle: Option<PathBuf>,
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ap3esm-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bitwise_tail_matches(name: &str, full: &[f64], tail: &[f64]) -> Result<(), String> {
    if tail.len() > full.len() {
        return Err(format!(
            "{name}: reference has {} entries, degraded run only {}",
            tail.len(),
            full.len()
        ));
    }
    let kept = full.len() - tail.len();
    for (i, (x, y)) in full[kept..].iter().zip(tail).enumerate() {
        if x.to_bits() != y.to_bits() {
            return Err(format!(
                "{name}[{}] diverged: degraded {x} vs reference {y}",
                kept + i
            ));
        }
    }
    Ok(())
}

/// Run the degraded run's shrunken twin from the hand-off checkpoint and
/// demand a bitwise-identical tail. Returns the violation, if any.
fn check_degraded_reference(
    config: &CoupledConfig,
    days: f64,
    root: &CoupledStats,
    ckpt: &std::path::Path,
) -> Result<(), String> {
    let shrunk = ckpt.join(format!("shrunk_g{}", root.shrinks));
    if !shrunk.is_dir() {
        return Err(format!("hand-off dir {} missing", shrunk.display()));
    }
    let mut ref_config = config.clone();
    // The shrink-to-fit layout for the lost ocean rank(s) on a 1-row mesh
    // (3x1 → 2x1); must mirror the driver's `BlockDecomp2d::auto` re-fit.
    ref_config.ocn_px = config.ocn_px - root.degraded_ranks;
    let ref_ckpt = tmpdir("reference");
    let mut ref_opts = campaign_options(ref_ckpt.clone(), days);
    ref_opts.resume_from = Some(shrunk);
    ref_opts.bundle_name = Some("chaos-reference".to_string());
    let ref_world = World::new(ref_config.world_size()).with_recv_timeout(RECV_TIMEOUT);
    let ref_all = ref_world.run(|rank| run_coupled(rank, &ref_config, &ref_opts));
    let ref_root = &ref_all[0];
    let _ = std::fs::remove_dir_all(&ref_ckpt);

    if let Some(f) = &ref_root.failure {
        return Err(format!("reference run failed: {f}"));
    }
    if ref_root.simulated_seconds != root.simulated_seconds {
        return Err(format!(
            "reference simulated {} s, degraded {} s",
            ref_root.simulated_seconds, root.simulated_seconds
        ));
    }
    bitwise_tail_matches("sst", &root.sst_series, &ref_root.sst_series)?;
    bitwise_tail_matches("ke", &root.ke_series, &ref_root.ke_series)?;
    bitwise_tail_matches("theta", &root.theta_series, &ref_root.theta_series)?;
    bitwise_tail_matches("ice", &root.ice_series, &ref_root.ice_series)?;
    Ok(())
}

/// Classify a finished (non-hung, non-panicked) scenario run.
fn classify(
    config: &CoupledConfig,
    days: f64,
    all: &[CoupledStats],
    ckpt: &std::path::Path,
) -> (Observed, String) {
    let root = &all[0];
    if let Some(f) = &root.failure {
        return (Observed::Failure, f.clone());
    }
    // A rank that carries a failure while root does not is a split-brain
    // outcome — count it as the failure it is.
    for (r, s) in all.iter().enumerate() {
        if !s.lost {
            if let Some(f) = &s.failure {
                return (Observed::Failure, format!("rank {r}: {f}"));
            }
        }
    }
    let expected_s = days * 86_400.0;
    if root.simulated_seconds != expected_s {
        return (
            Observed::Divergence,
            format!(
                "run stopped at {} of {expected_s} simulated seconds without a failure",
                root.simulated_seconds
            ),
        );
    }
    if root.shrinks > 0 {
        match check_degraded_reference(config, days, root, ckpt) {
            Ok(()) => (
                Observed::Degraded,
                format!(
                    "lost {} rank(s); tail bitwise-matches the fresh {}-rank reference",
                    root.degraded_ranks,
                    config.world_size() - root.degraded_ranks
                ),
            ),
            Err(e) => (Observed::Divergence, e),
        }
    } else {
        (
            Observed::Healthy,
            format!("{} rollback(s), no shrink", root.recoveries),
        )
    }
}

fn main() {
    let mut seed: u64 = 20260808;
    let mut only: Option<String> = None;
    let mut catalog_path: Option<PathBuf> = None;
    let mut report_path = PathBuf::from("target/obs/chaos-report.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--only" => only = Some(args.next().unwrap_or_else(|| usage())),
            "--catalog" => catalog_path = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--report" => report_path = args.next().unwrap_or_else(|| usage()).into(),
            _ => usage(),
        }
    }

    let text = match &catalog_path {
        Some(p) => std::fs::read_to_string(p)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", p.display())),
        None => CAMPAIGN_TEXT
            .replace("{seed}", &seed.to_string())
            .replace("{gather}", &GATHER_P2P_TAG.to_string()),
    };
    let catalog = Catalog::parse(&text).unwrap_or_else(|e| panic!("campaign text: {e}"));
    catalog
        .validate()
        .unwrap_or_else(|e| panic!("campaign invalid: {e}"));
    let seed = catalog.seed;

    let scenarios: Vec<_> = catalog
        .scenarios
        .iter()
        .filter(|s| only.as_deref().is_none_or(|f| s.name.contains(f)))
        .cloned()
        .collect();
    if scenarios.is_empty() {
        eprintln!("no scenario matches --only {:?}", only.unwrap_or_default());
        std::process::exit(2);
    }
    println!(
        "chaos campaign: {} scenario(s), seed {seed}",
        scenarios.len(),
    );

    let mut verdicts: Vec<Verdict> = Vec::new();
    for sc in &scenarios {
        let t0 = Instant::now();
        let config = sc.coupled_config();
        let days = sc.days;
        let ckpt = tmpdir(&sc.name);
        let (tx, rx) = mpsc::channel();
        let (run_config, run_ckpt, plan) = (config.clone(), ckpt.clone(), sc.plan.clone());
        // The world is shared with the watchdog side: if the scenario
        // hangs or panics, the main thread can still read its flight
        // recorder and comm journals for the fallback diagnostics bundle.
        let world = Arc::new(
            World::new(run_config.world_size())
                .with_recv_timeout(RECV_TIMEOUT)
                .with_fault_injector(Arc::new(FaultInjector::new(plan))),
        );
        let (run_world, run_name) = (Arc::clone(&world), sc.name.clone());
        // The worker drives the world; the main thread only watches the
        // clock, so a deadlocked scenario cannot take the campaign down.
        std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut opts = campaign_options(run_ckpt, days);
                opts.bundle_name = Some(format!("chaos-{run_name}"));
                run_world.run(|rank| run_coupled(rank, &run_config, &opts))
            }));
            let _ = tx.send(result);
        });

        let (observed, detail, stats) = match rx.recv_timeout(WATCHDOG) {
            Ok(Ok(all)) => {
                let (obs, detail) = classify(&config, days, &all, &ckpt);
                (obs, detail, Some(all[0].clone()))
            }
            Ok(Err(payload)) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("opaque panic payload");
                (Observed::Panic, msg.to_string(), None)
            }
            // The worker thread is leaked deliberately: it is wedged on a
            // blocked recv, and the whole point is to report that.
            Err(_) => (
                Observed::Hang,
                format!("no result within {}s", WATCHDOG.as_secs()),
                None,
            ),
        };
        let _ = std::fs::remove_dir_all(&ckpt);
        let s = stats.unwrap_or_default();

        // Resolve the scenario's diagnostics bundle: prefer the driver's
        // own dump; on a hang or panic the driver never got there, so
        // dump a fallback bundle from the shared (possibly wedged) world.
        let scenario_text = format!(
            "scenario {}\nexpect {}\nseed {seed}\nplan:\n{}",
            sc.name,
            sc.expect.as_str(),
            sc.plan
        );
        let mut bundle = s.bundle_path.clone();
        if bundle.is_none() && matches!(observed, Observed::Panic | Observed::Hang) {
            let slot = world.blackbox().get().cloned();
            let spec = BundleSpec {
                reason: if observed == Observed::Panic { "panic" } else { "hang" },
                recorder: slot.as_ref().and_then(|s| s.downcast_ref::<FlightRecorder>()),
                comm_events: Some(world.comm_events()),
                fault_plan: Some(sc.plan.to_string()),
                scenario: Some(scenario_text.clone()),
                ..Default::default()
            };
            match dump_bundle(&format!("chaos-{}", sc.name), &spec) {
                Ok(p) => bundle = Some(p),
                Err(e) => eprintln!("  [flightrec] fallback bundle for {} failed: {e}", sc.name),
            }
        }
        if let Some(b) = &bundle {
            // The driver doesn't know the campaign context; stamp it in.
            let _ = std::fs::write(b.join("scenario.txt"), &scenario_text);
        }

        let v = Verdict {
            name: sc.name.clone(),
            expect: sc.expect,
            observed,
            detail,
            recoveries: s.recoveries,
            shrinks: s.shrinks,
            degraded_ranks: s.degraded_ranks,
            wall_s: t0.elapsed().as_secs_f64(),
            bundle,
        };
        println!(
            "  {} {:<28} expect={:<8} observed={:<10} {:.1}s  {}",
            if v.observed.matches(v.expect) {
                "ok "
            } else {
                "BAD"
            },
            v.name,
            v.expect.as_str(),
            v.observed.as_str(),
            v.wall_s,
            v.detail
        );
        verdicts.push(v);
    }

    let violations = verdicts
        .iter()
        .filter(|v| !v.observed.matches(v.expect))
        .count();

    let mut report = Json::obj();
    report.set("seed", Json::UInt(seed));
    report.set("campaign", Json::Str(catalog.name.clone()));
    report.set("violations", Json::UInt(violations as u64));
    let mut rows = Vec::new();
    for v in &verdicts {
        let mut row = Json::obj();
        row.set("name", Json::Str(v.name.clone()));
        row.set("expect", Json::Str(v.expect.as_str().to_string()));
        row.set("observed", Json::Str(v.observed.as_str().to_string()));
        row.set("ok", Json::Bool(v.observed.matches(v.expect)));
        row.set("detail", Json::Str(v.detail.clone()));
        row.set("recoveries", Json::UInt(v.recoveries as u64));
        row.set("shrinks", Json::UInt(v.shrinks as u64));
        row.set("degraded_ranks", Json::UInt(v.degraded_ranks as u64));
        row.set("wall_s", Json::Num(v.wall_s));
        row.set(
            "bundle",
            match &v.bundle {
                Some(p) => Json::Str(p.display().to_string()),
                None => Json::Null,
            },
        );
        rows.push(row);
    }
    report.set("scenarios", Json::Arr(rows));
    if let Some(parent) = report_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&report_path, report.to_string())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", report_path.display()));

    println!(
        "\n{}/{} scenario(s) met their contract; report: {}",
        verdicts.len() - violations,
        verdicts.len(),
        report_path.display()
    );
    if violations > 0 {
        std::process::exit(1);
    }
}

fn usage() -> ! {
    eprintln!("usage: chaos_campaign [--seed N] [--only SUBSTRING] [--report PATH]");
    std::process::exit(2);
}
