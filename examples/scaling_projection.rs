//! Project AP3ESM throughput onto the paper's machines with the calibrated
//! scaling model: "what SYPD would configuration X reach on N nodes of
//! Sunway OceanLight?"
//!
//! ```sh
//! cargo run --release --example scaling_projection [nodes…]
//! # with an obs run report and a chrome trace + flamegraph:
//! cargo run --release --example scaling_projection -- --report-name scaling --trace
//! ```

use ap3esm::obs;
use ap3esm::prelude::*;
use ap3esm_machine::calibration::paper_table2;
use ap3esm_machine::perf::ScalingModel;
use std::sync::Arc;

struct Cli {
    nodes: Vec<usize>,
    report_name: Option<String>,
    trace: bool,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        nodes: Vec::new(),
        report_name: None,
        trace: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--report-name" => {
                cli.report_name =
                    Some(args.next().expect("--report-name needs a value"))
            }
            "--trace" => cli.trace = true,
            other => match other.parse() {
                Ok(n) => cli.nodes.push(n),
                Err(_) => panic!("unknown argument {other} (try node counts, --report-name, --trace)"),
            },
        }
    }
    if cli.nodes.is_empty() {
        cli.nodes = vec![10_000, 25_000, 50_000, 107_520];
    }
    cli
}

fn main() {
    let cli = parse_cli();

    // This example has no World: it is a single-process projection, so the
    // obs instance, trace sink and report are wired directly (one pid 0).
    let obs_state = Arc::new(obs::Obs::new());
    let sink = cli.trace.then(|| {
        let sink = Arc::new(obs::TraceSink::default());
        obs_state.profiler.set_trace_sink(Some(Arc::clone(&sink)));
        sink
    });
    let _guard = obs::install(Arc::clone(&obs_state));

    let model = {
        let _s = obs::span("scaling.fit");
        let cal = paper_table2()
            .into_iter()
            .find(|c| c.label.contains("AP3ESM 1v1"))
            .expect("calibration");
        ScalingModel::fit(MachineSpec::sunway_oceanlight(), &cal)
    };
    println!("coupled AP3ESM 1v1 on Sunway OceanLight (calibrated model):\n");
    println!("{:>10} {:>14} {:>10} {:>12}", "nodes", "cores", "SYPD", "efficiency");
    {
        let _s = obs::span("scaling.project");
        for &n in &cli.nodes {
            let _p = obs::span("point");
            let m = MachineSpec::sunway_oceanlight();
            println!(
                "{:>10} {:>14} {:>10.3} {:>11.1}%",
                n,
                m.cores(n),
                model.sypd(n),
                model.efficiency(n) * 100.0
            );
        }
    }
    let headline = {
        let _s = obs::span("scaling.headline");
        model.sypd(95_316)
    };
    println!(
        "\npaper headline: 0.54 SYPD at 37.2M cores — model gives {headline:.3} at {} nodes",
        95_316
    );
    println!("\nusage: cargo run --release --example scaling_projection 20000 40000");

    if let Some(name) = &cli.report_name {
        obs_state.profiler.set_trace_sink(None);
        let spans = obs_state.profiler.snapshot();
        let tree = obs::RankTree {
            rank: 0,
            dropped: 0,
            spans: spans.clone(),
        };
        let report = obs::ReportBuilder::new(name)
            .meta("example", "scaling_projection")
            .meta("points", cli.nodes.len())
            .spans(spans)
            .rank_trees(vec![tree.clone()])
            .metrics(obs_state.metrics.snapshot())
            .build();
        match report.write() {
            Ok(path) => println!("\nobs run report: {}", path.display()),
            Err(e) => eprintln!("cannot write report: {e}"),
        }
        if let Some(sink) = sink {
            let (events, _dropped) = sink.take();
            let mut ct = obs::ChromeTrace::new();
            ct.add_process(0, "rank 0");
            ct.add_span_events(0, &events);
            match ct.write(name) {
                Ok(path) => println!("chrome trace:   {} (open in ui.perfetto.dev)", path.display()),
                Err(e) => eprintln!("cannot write trace: {e}"),
            }
            let folded = obs::trace::folded_stacks(&[tree]);
            match obs::trace::write_folded(name, &folded) {
                Ok(path) => println!("flamegraph:     {} (render with inferno/flamegraph.pl)", path.display()),
                Err(e) => eprintln!("cannot write folded stacks: {e}"),
            }
        }
    }
}
