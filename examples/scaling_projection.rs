//! Project AP3ESM throughput onto the paper's machines with the calibrated
//! scaling model: "what SYPD would configuration X reach on N nodes of
//! Sunway OceanLight?"
//!
//! ```sh
//! cargo run --release --example scaling_projection [nodes…]
//! ```

use ap3esm::prelude::*;
use ap3esm_machine::calibration::paper_table2;
use ap3esm_machine::perf::ScalingModel;

fn main() {
    let nodes: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let nodes = if nodes.is_empty() {
        vec![10_000, 25_000, 50_000, 107_520]
    } else {
        nodes
    };

    let cal = paper_table2()
        .into_iter()
        .find(|c| c.label.contains("AP3ESM 1v1"))
        .expect("calibration");
    let model = ScalingModel::fit(MachineSpec::sunway_oceanlight(), &cal);
    println!("coupled AP3ESM 1v1 on Sunway OceanLight (calibrated model):\n");
    println!("{:>10} {:>14} {:>10} {:>12}", "nodes", "cores", "SYPD", "efficiency");
    for &n in &nodes {
        let m = MachineSpec::sunway_oceanlight();
        println!(
            "{:>10} {:>14} {:>10.3} {:>11.1}%",
            n,
            m.cores(n),
            model.sypd(n),
            model.efficiency(n) * 100.0
        );
    }
    println!(
        "\npaper headline: 0.54 SYPD at 37.2M cores — model gives {:.3} at {} nodes",
        model.sypd(95_316),
        95_316
    );
    println!("\nusage: cargo run --release --example scaling_projection 20000 40000");
}
