//! The full coupled AP3ESM at demo scale: atmosphere + ocean + sea ice +
//! land under the CPL7-analogue coupler, two task domains, measured SYPD.
//!
//! ```sh
//! cargo run --release --example coupled_esm
//!
//! # Resilience drill: inject faults from a plan file and recover via
//! # checkpoint rollback (see DESIGN.md, "Resilience layer").
//! printf 'kill rank=2 step=3\ncorrupt ckpt=2 field=atm_theta subfile=1 byte=100\n' > plan.txt
//! cargo run --release --example coupled_esm -- --fault-plan plan.txt
//! ```
//!
//! Flags: `--fault-plan <file>` (enables checkpointing), `--checkpoint-dir
//! <dir>` (default `target/ckpt` when faults are on), `--days <n>`,
//! `--trace` (chrome-trace + flamegraph export under `target/obs/`),
//! `--progress-every <n>` (live telemetry every n ocean couplings),
//! `--metrics-addr <ip:port>` (live OpenMetrics scrape endpoint — `curl
//! http://<addr>/metrics` mid-run; implies continuous telemetry),
//! `--slo` (continuous telemetry + built-in SYPD-collapse /
//! imbalance-drift / degraded-streak alert rules), `--slo-rules <file>`
//! (extra rules, one per line), `--cadence-ms <n>` (sampling cadence).

use ap3esm::comm::{FaultInjector, FaultPlan};
use ap3esm::esm::coupled::TelemetryOptions;
use ap3esm::esm::RecoveryConfig;
use ap3esm::prelude::*;
use std::sync::Arc;

struct Cli {
    days: f64,
    fault_plan: Option<std::path::PathBuf>,
    checkpoint_dir: Option<std::path::PathBuf>,
    trace: bool,
    progress_every: Option<u64>,
    slo: bool,
    slo_rules: Option<std::path::PathBuf>,
    metrics_addr: Option<String>,
    cadence_ms: u64,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        days: 2.0,
        fault_plan: None,
        checkpoint_dir: None,
        trace: false,
        progress_every: None,
        slo: false,
        slo_rules: None,
        metrics_addr: None,
        cadence_ms: 250,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--days" => cli.days = value("--days").parse().expect("--days: not a number"),
            "--fault-plan" => cli.fault_plan = Some(value("--fault-plan").into()),
            "--checkpoint-dir" => cli.checkpoint_dir = Some(value("--checkpoint-dir").into()),
            "--trace" => cli.trace = true,
            "--progress-every" => {
                cli.progress_every = Some(
                    value("--progress-every")
                        .parse()
                        .expect("--progress-every: not a number"),
                )
            }
            "--slo" => cli.slo = true,
            "--slo-rules" => cli.slo_rules = Some(value("--slo-rules").into()),
            "--metrics-addr" => cli.metrics_addr = Some(value("--metrics-addr")),
            "--cadence-ms" => {
                cli.cadence_ms = value("--cadence-ms")
                    .parse()
                    .expect("--cadence-ms: not a number")
            }
            other => panic!(
                "unknown flag {other} (try --days, --fault-plan, --checkpoint-dir, --trace, \
                 --progress-every, --slo, --slo-rules, --metrics-addr, --cadence-ms)"
            ),
        }
    }
    cli
}

fn main() {
    let cli = parse_cli();
    let config = CoupledConfig::demo_small();
    println!(
        "coupled AP3ESM: atm G{} ({} levels) | ocn {}×{}×{} on {}×{} ranks | couplings/day {:?}",
        config.atm_glevel,
        config.atm_nlev,
        config.ocn_nlon,
        config.ocn_nlat,
        config.ocn_nlev,
        config.ocn_px,
        config.ocn_py,
        config.couplings_per_day
    );
    println!(
        "task domains: rank 0 = coupler+ATM+ICE+LND | ranks 1..{} = OCN\n",
        config.world_size()
    );

    let mut world = World::new(config.world_size());
    let mut opts = CoupledOptions {
        days: cli.days,
        report_name: Some("coupled-esm".to_string()),
        trace: cli.trace,
        progress_every: cli.progress_every,
        checkpoint_dir: cli.checkpoint_dir,
        recovery: RecoveryConfig {
            checkpoint_interval: 1,
            keep_checkpoints: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    if let Some(path) = &cli.fault_plan {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let plan = FaultPlan::parse(&text)
            .unwrap_or_else(|e| panic!("bad fault plan {}: {e}", path.display()));
        println!("fault plan ({} events):\n{plan}", plan.events.len());
        world = world.with_fault_injector(Arc::new(FaultInjector::new(plan)));
        // Faults without checkpoints would just be a crash: default the
        // checkpoint directory on so the run can roll back and recover.
        opts.checkpoint_dir
            .get_or_insert_with(|| "target/ckpt".into());
    }
    if cli.slo || cli.metrics_addr.is_some() {
        let rules = cli
            .slo_rules
            .as_ref()
            .map(|p| {
                std::fs::read_to_string(p)
                    .unwrap_or_else(|e| panic!("cannot read {}: {e}", p.display()))
            })
            .unwrap_or_default();
        opts.telemetry = Some(TelemetryOptions {
            cadence: std::time::Duration::from_millis(cli.cadence_ms.max(1)),
            metrics_addr: cli.metrics_addr.clone(),
            rules,
            ..TelemetryOptions::default()
        });
    }
    if let Some(addr) = &cli.metrics_addr {
        println!("metrics endpoint: http://{addr}/metrics (live during the run)\n");
    }
    let all = world.run(|rank| run_coupled(rank, &config, &opts));
    let root = &all[0];

    println!("simulated {} days in {:.2}s wall", opts.days, root.wall_seconds);
    println!("measured throughput at this size: {:.1} SYPD", root.sypd);
    println!("\nmean SST (°C) per ocean coupling:");
    for (k, sst) in root.sst_series.iter().enumerate() {
        println!("  coupling {k:>3}: {sst:.3}");
    }
    println!("\nice cover fraction: {:.4} → {:.4}",
        root.ice_series.first().unwrap(),
        root.ice_series.last().unwrap());
    println!(
        "ocean kinetic energy: {:.3e} → {:.3e} (wind-driven spin-up)",
        root.ke_series.first().unwrap(),
        root.ke_series.last().unwrap()
    );
    println!("\ncoupler traffic: {} messages, {:.2} MB",
        world.stats().total_messages(),
        world.stats().total_bytes() as f64 / 1e6);
    // Cross-rank maxima when a report aggregated them (ocn_run runs on
    // the ocean task domain, never on rank 0's local timers).
    println!("\nper-section wall time (max across ranks):");
    for (name, secs) in &root.per_section_seconds {
        println!("  {name:<16} {secs:.3}s");
    }

    if root.recoveries > 0 || !root.fault_events.is_empty() {
        println!("\nresilience: {} rollback(s)", root.recoveries);
        for e in &root.fault_events {
            println!("  fault: {e}");
        }
    }
    if !root.alerts.is_empty() {
        println!("\ntelemetry alerts ({}):", root.alerts.len());
        for a in &root.alerts {
            println!("  {a}");
        }
    }
    match &root.failure {
        Some(f) => {
            println!("\nrun FAILED (structured): {f}");
            std::process::exit(1);
        }
        None if cli.fault_plan.is_some() => {
            println!("run completed despite injected faults (recovered)");
        }
        None => {}
    }

    if let Some(path) = &root.report_path {
        println!("\nobs run report: {}", path.display());
    }
    if let Some(path) = &root.trace_path {
        println!("chrome trace:   {} (open in ui.perfetto.dev)", path.display());
    }
    if let Some(path) = &root.folded_path {
        println!("flamegraph:     {} (render with inferno/flamegraph.pl)", path.display());
    }
    if let Some(path) = &root.series_path {
        println!("series store:   {} (replay with scripts/slo_check.sh)", path.display());
    }
}
