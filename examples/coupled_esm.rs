//! The full coupled AP3ESM at demo scale: atmosphere + ocean + sea ice +
//! land under the CPL7-analogue coupler, two task domains, measured SYPD.
//!
//! ```sh
//! cargo run --release --example coupled_esm
//! ```

use ap3esm::prelude::*;

fn main() {
    let config = CoupledConfig::demo_small();
    println!(
        "coupled AP3ESM: atm G{} ({} levels) | ocn {}×{}×{} on {}×{} ranks | couplings/day {:?}",
        config.atm_glevel,
        config.atm_nlev,
        config.ocn_nlon,
        config.ocn_nlat,
        config.ocn_nlev,
        config.ocn_px,
        config.ocn_py,
        config.couplings_per_day
    );
    println!(
        "task domains: rank 0 = coupler+ATM+ICE+LND | ranks 1..{} = OCN\n",
        config.world_size()
    );

    let world = World::new(config.world_size());
    let opts = CoupledOptions {
        days: 2.0,
        report_name: Some("coupled-esm".to_string()),
        ..Default::default()
    };
    let all = world.run(|rank| run_coupled(rank, &config, &opts));
    let root = &all[0];

    println!("simulated {} days in {:.2}s wall", opts.days, root.wall_seconds);
    println!("measured throughput at this size: {:.1} SYPD", root.sypd);
    println!("\nmean SST (°C) per ocean coupling:");
    for (k, sst) in root.sst_series.iter().enumerate() {
        println!("  coupling {k:>3}: {sst:.3}");
    }
    println!("\nice cover fraction: {:.4} → {:.4}",
        root.ice_series.first().unwrap(),
        root.ice_series.last().unwrap());
    println!(
        "ocean kinetic energy: {:.3e} → {:.3e} (wind-driven spin-up)",
        root.ke_series.first().unwrap(),
        root.ke_series.last().unwrap()
    );
    println!("\ncoupler traffic: {} messages, {:.2} MB",
        world.stats().total_messages(),
        world.stats().total_bytes() as f64 / 1e6);
    println!("\nper-section wall time (rank 0):");
    for (name, secs) in &root.per_section_seconds {
        println!("  {name:<16} {secs:.3}s");
    }
    'ocn: for stats in &all[1..] {
        for (name, secs) in &stats.per_section_seconds {
            if name == "ocn_run" {
                println!("  {name:<16} {secs:.3}s (an ocean rank)");
                break 'ocn;
            }
        }
    }

    if let Some(path) = &root.report_path {
        println!("\nobs run report: {}", path.display());
    }
}
