//! Train the AI physics suite on conventional-physics supervision and plug
//! it into the atmosphere's physics–dynamics interface — the Fig. 4 swap.
//!
//! ```sh
//! cargo run --release --example ai_physics_training
//! ```

use ap3esm::prelude::*;
use ap3esm_ai::modules::{Normalizer, RadiationModule, TendencyModule};
use ap3esm_ai::net::{RadiationMlp, TendencyCnn};
use ap3esm_ai::train::{TrainConfig, Trainer};
use ap3esm_atm::pdc::{PhysicsDriver, PhysicsDynamicsCoupler, SurfaceForcing};
use ap3esm_atm::state::AtmState;
use ap3esm_physics::suite::{hydrostatic_thickness, Column, ConventionalSuite, SurfaceProperties};

fn main() {
    let nlev = 8;
    // ---- 1. Generate supervision from the conventional suite. ----------
    let suite = ConventionalSuite::default();
    let sigma: Vec<f64> = (0..nlev).map(|k| 1.0 - (k as f64 + 0.5) / nlev as f64).collect();
    let ds = vec![1.0 / nlev as f64; nlev];
    let mut inputs = Vec::new();
    let mut targets = Vec::new();
    for s in 0..400 {
        let t_surf = 280.0 + 20.0 * ((s as f64) * 0.37).sin().abs();
        let t: Vec<f64> = (0..nlev).map(|k| t_surf - 6.0 * k as f64).collect();
        let (p, dp, dz) = hydrostatic_thickness(&sigma, &ds, 1.0e5, &t);
        let q: Vec<f64> = (0..nlev).map(|k| 0.012 * (-0.5 * k as f64).exp()).collect();
        let col = Column { u: vec![4.0; nlev], v: vec![0.0; nlev], t: t.clone(), q: q.clone(), p: p.clone(), dp, dz };
        let out = suite.step_column(&col, &SurfaceProperties { tskin: t_surf + 1.5, coszr: 0.5, wetness: 1.0 });
        let mut x = Vec::new();
        for src in [&col.u, &col.v, &col.t, &col.q, &col.p] {
            x.extend(src.iter().map(|&v| v as f32));
        }
        let mut y = Vec::new();
        for src in [&out.du, &out.dv, &out.dt, &out.dq] {
            y.extend(src.iter().map(|&v| v as f32));
        }
        inputs.push(x);
        targets.push(y);
    }
    let in_norm = Normalizer::fit(&inputs, 5);
    let out_norm = Normalizer::fit(&targets, 4);
    for s in inputs.iter_mut() {
        *s = in_norm.normalize(s, 5);
    }
    for s in targets.iter_mut() {
        *s = out_norm.normalize(s, 4);
    }

    // ---- 2. Train the tendency CNN. -------------------------------------
    let mut net = TendencyCnn::with_width(nlev, 16, 3);
    println!(
        "training tendency CNN ({} conv layers, {} ResUnits, {} params)…",
        net.conv_layers(), net.res_units(), net.num_parameters()
    );
    let trainer = Trainer::new(TrainConfig { epochs: 10, batch_size: 16, lr: 2e-3 });
    let stats = trainer.train_cnn(&mut net, &inputs, &targets);
    for s in stats.iter().step_by(3) {
        println!("  epoch {:>2}: train MSE {:.4}, test MSE {:.4}", s.epoch, s.train_mse, s.test_mse);
    }
    let last = stats.last().unwrap();
    println!("  final: train {:.4} / test {:.4}", last.train_mse, last.test_mse);

    // ---- 3. Swap the trained suite into the atmosphere. -----------------
    let grid = std::sync::Arc::new(GeodesicGrid::new(3));
    let mut atm = AtmState::isothermal(std::sync::Arc::clone(&grid), nlev, 288.0);
    // Put the state inside the training distribution (a ~6 K/level lapse),
    // as the paper's resolution-adaptive suite assumes realistic columns.
    {
        let n = grid.ncells();
        for k in 0..nlev {
            let t_target = 295.0 - 6.0 * k as f64;
            for i in 0..n {
                let p = atm.sigma[k] * atm.ps[i];
                atm.theta[k * n + i] =
                    ap3esm_physics::constants::potential_temperature(t_target, p);
                atm.q[k * n + i] = 0.012 * (-0.5 * k as f64).exp();
            }
        }
    }
    let tendency = TendencyModule::new(net, in_norm, out_norm);
    let radiation = RadiationModule::new(
        RadiationMlp::with_width(nlev, 16, 5),
        Normalizer { mean: vec![0.0], std: vec![100.0] },
        Normalizer { mean: vec![200.0, 350.0], std: vec![100.0, 50.0] },
    );
    let mut pdc = PhysicsDynamicsCoupler::new(PhysicsDriver::AiSuite {
        tendency,
        radiation,
        diagnostics: ConventionalSuite::default(),
    });
    println!("\nrunning the atmosphere with the AI suite (is_ai = {})…", pdc.is_ai());
    let forcing = SurfaceForcing::uniform(grid.ncells(), 299.0, 0.6, 1.0);
    for step in 0..3 {
        let precip = pdc.apply(&mut atm, &forcing, 600.0);
        println!(
            "  AI-physics step {step}: mean θ {:.2} K, global precip {:.2e} kg/m²/s",
            atm.mean_theta(),
            precip
        );
    }
    println!("\nAI suite drives the same physics–dynamics interface as the");
    println!("conventional suite — the Fig. 4 architecture swap.");
}
