//! Train the AI physics suite on conventional-physics supervision and plug
//! it into the atmosphere's physics–dynamics interface — the Fig. 4 swap.
//!
//! ```sh
//! cargo run --release --example ai_physics_training
//! # with an obs run report and a chrome trace + flamegraph:
//! cargo run --release --example ai_physics_training -- --report-name ai-train --trace
//! ```

use ap3esm::obs;
use ap3esm::prelude::*;
use ap3esm_ai::modules::{Normalizer, RadiationModule, TendencyModule};
use ap3esm_ai::net::{RadiationMlp, TendencyCnn};
use ap3esm_ai::train::{TrainConfig, Trainer};
use ap3esm_atm::pdc::{PhysicsDriver, PhysicsDynamicsCoupler, SurfaceForcing};
use ap3esm_atm::state::AtmState;
use ap3esm_physics::suite::{hydrostatic_thickness, Column, ConventionalSuite, SurfaceProperties};
use std::sync::Arc;

struct Cli {
    report_name: Option<String>,
    trace: bool,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        report_name: None,
        trace: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--report-name" => {
                cli.report_name =
                    Some(args.next().expect("--report-name needs a value"))
            }
            "--trace" => cli.trace = true,
            other => panic!("unknown flag {other} (try --report-name, --trace)"),
        }
    }
    cli
}

fn main() {
    let cli = parse_cli();
    // Single-process example: wire the obs instance, trace sink and report
    // directly (one pid 0) instead of going through a World.
    let obs_state = Arc::new(obs::Obs::new());
    let sink = cli.trace.then(|| {
        let sink = Arc::new(obs::TraceSink::default());
        obs_state.profiler.set_trace_sink(Some(Arc::clone(&sink)));
        sink
    });
    let _guard = obs::install(Arc::clone(&obs_state));

    let nlev = 8;
    // ---- 1. Generate supervision from the conventional suite. ----------
    let supervision_span = obs::span("ai.supervision");
    let suite = ConventionalSuite::default();
    let sigma: Vec<f64> = (0..nlev).map(|k| 1.0 - (k as f64 + 0.5) / nlev as f64).collect();
    let ds = vec![1.0 / nlev as f64; nlev];
    let mut inputs = Vec::new();
    let mut targets = Vec::new();
    for s in 0..400 {
        let t_surf = 280.0 + 20.0 * ((s as f64) * 0.37).sin().abs();
        let t: Vec<f64> = (0..nlev).map(|k| t_surf - 6.0 * k as f64).collect();
        let (p, dp, dz) = hydrostatic_thickness(&sigma, &ds, 1.0e5, &t);
        let q: Vec<f64> = (0..nlev).map(|k| 0.012 * (-0.5 * k as f64).exp()).collect();
        let col = Column { u: vec![4.0; nlev], v: vec![0.0; nlev], t: t.clone(), q: q.clone(), p: p.clone(), dp, dz };
        let out = suite.step_column(&col, &SurfaceProperties { tskin: t_surf + 1.5, coszr: 0.5, wetness: 1.0 });
        let mut x = Vec::new();
        for src in [&col.u, &col.v, &col.t, &col.q, &col.p] {
            x.extend(src.iter().map(|&v| v as f32));
        }
        let mut y = Vec::new();
        for src in [&out.du, &out.dv, &out.dt, &out.dq] {
            y.extend(src.iter().map(|&v| v as f32));
        }
        inputs.push(x);
        targets.push(y);
    }
    let in_norm = Normalizer::fit(&inputs, 5);
    let out_norm = Normalizer::fit(&targets, 4);
    for s in inputs.iter_mut() {
        *s = in_norm.normalize(s, 5);
    }
    for s in targets.iter_mut() {
        *s = out_norm.normalize(s, 4);
    }
    obs::counter_add("ai.samples", inputs.len() as u64);
    drop(supervision_span);

    // ---- 2. Train the tendency CNN. -------------------------------------
    let training_span = obs::span("ai.train");
    let mut net = TendencyCnn::with_width(nlev, 16, 3);
    println!(
        "training tendency CNN ({} conv layers, {} ResUnits, {} params)…",
        net.conv_layers(), net.res_units(), net.num_parameters()
    );
    let trainer = Trainer::new(TrainConfig { epochs: 10, batch_size: 16, lr: 2e-3 });
    let stats = trainer.train_cnn(&mut net, &inputs, &targets);
    for s in stats.iter().step_by(3) {
        println!("  epoch {:>2}: train MSE {:.4}, test MSE {:.4}", s.epoch, s.train_mse, s.test_mse);
    }
    let last = stats.last().unwrap();
    println!("  final: train {:.4} / test {:.4}", last.train_mse, last.test_mse);
    obs::gauge_set("ai.test_mse", f64::from(last.test_mse));
    drop(training_span);

    // ---- 3. Swap the trained suite into the atmosphere. -----------------
    let swap_span = obs::span("ai.swap");
    let grid = std::sync::Arc::new(GeodesicGrid::new(3));
    let mut atm = AtmState::isothermal(std::sync::Arc::clone(&grid), nlev, 288.0);
    // Put the state inside the training distribution (a ~6 K/level lapse),
    // as the paper's resolution-adaptive suite assumes realistic columns.
    {
        let n = grid.ncells();
        for k in 0..nlev {
            let t_target = 295.0 - 6.0 * k as f64;
            for i in 0..n {
                let p = atm.sigma[k] * atm.ps[i];
                atm.theta[k * n + i] =
                    ap3esm_physics::constants::potential_temperature(t_target, p);
                atm.q[k * n + i] = 0.012 * (-0.5 * k as f64).exp();
            }
        }
    }
    let tendency = TendencyModule::new(net, in_norm, out_norm);
    let radiation = RadiationModule::new(
        RadiationMlp::with_width(nlev, 16, 5),
        Normalizer { mean: vec![0.0], std: vec![100.0] },
        Normalizer { mean: vec![200.0, 350.0], std: vec![100.0, 50.0] },
    );
    let mut pdc = PhysicsDynamicsCoupler::new(PhysicsDriver::AiSuite {
        tendency,
        radiation,
        diagnostics: ConventionalSuite::default(),
    });
    println!("\nrunning the atmosphere with the AI suite (is_ai = {})…", pdc.is_ai());
    let forcing = SurfaceForcing::uniform(grid.ncells(), 299.0, 0.6, 1.0);
    for step in 0..3 {
        let precip = {
            let _s = obs::span("ai_physics_step");
            pdc.apply(&mut atm, &forcing, 600.0)
        };
        println!(
            "  AI-physics step {step}: mean θ {:.2} K, global precip {:.2e} kg/m²/s",
            atm.mean_theta(),
            precip
        );
    }
    drop(swap_span);
    println!("\nAI suite drives the same physics–dynamics interface as the");
    println!("conventional suite — the Fig. 4 architecture swap.");

    if let Some(name) = &cli.report_name {
        obs_state.profiler.set_trace_sink(None);
        let spans = obs_state.profiler.snapshot();
        let tree = obs::RankTree {
            rank: 0,
            dropped: 0,
            spans: spans.clone(),
        };
        let report = obs::ReportBuilder::new(name)
            .meta("example", "ai_physics_training")
            .spans(spans)
            .rank_trees(vec![tree.clone()])
            .metrics(obs_state.metrics.snapshot())
            .build();
        match report.write() {
            Ok(path) => println!("\nobs run report: {}", path.display()),
            Err(e) => eprintln!("cannot write report: {e}"),
        }
        if let Some(sink) = sink {
            let (events, _dropped) = sink.take();
            let mut ct = obs::ChromeTrace::new();
            ct.add_process(0, "rank 0");
            ct.add_span_events(0, &events);
            match ct.write(name) {
                Ok(path) => println!("chrome trace:   {} (open in ui.perfetto.dev)", path.display()),
                Err(e) => eprintln!("cannot write trace: {e}"),
            }
            let folded = obs::trace::folded_stacks(&[tree]);
            match obs::trace::write_folded(name, &folded) {
                Ok(path) => println!("flamegraph:     {} (render with inferno/flamegraph.pl)", path.display()),
                Err(e) => eprintln!("cannot write folded stacks: {e}"),
            }
        }
    }
}
