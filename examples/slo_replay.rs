//! Offline SLO check: replay a saved time-series snapshot
//! (`target/obs/series-<name>.json`, written by a telemetry-enabled
//! coupled run or `forecast_service`) through the alert engine, print a
//! per-rule verdict table, and exit nonzero if any rule fired.
//!
//! ```sh
//! cargo run --release --example coupled_esm -- --slo
//! cargo run --release --example slo_replay -- target/obs/series-coupled-esm.json
//! # custom rules instead of the built-in simulation set:
//! cargo run --release --example slo_replay -- --rules my-rules.txt <snapshot>
//! # validate an OpenMetrics scrape against the strict parser instead:
//! cargo run --release --example slo_replay -- --validate-openmetrics scrape.txt
//! ```
//!
//! `scripts/slo_check.sh` wraps this for CI gates.

use ap3esm::obs::{alert, openmetrics, parse_rules, sim_rules, tsdb, Rule};

fn usage() -> ! {
    eprintln!(
        "usage: slo_replay [--rules <file>] <series-snapshot.json>\n\
         \x20      slo_replay --validate-openmetrics <scrape.txt>"
    );
    std::process::exit(2);
}

fn main() {
    let mut rules_path: Option<std::path::PathBuf> = None;
    let mut validate: Option<std::path::PathBuf> = None;
    let mut snapshot: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--rules" => rules_path = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--validate-openmetrics" => {
                validate = Some(args.next().unwrap_or_else(|| usage()).into())
            }
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => usage(),
            other => snapshot = Some(other.into()),
        }
    }

    // Mode 2: strict OpenMetrics validation of a saved scrape.
    if let Some(path) = validate {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        match openmetrics::parse(&text) {
            Ok(families) => {
                let samples: usize = families.iter().map(|f| f.samples.len()).sum();
                println!(
                    "{}: valid OpenMetrics ({} families, {} samples)",
                    path.display(),
                    families.len(),
                    samples
                );
                return;
            }
            Err(e) => {
                eprintln!("{}: invalid OpenMetrics: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    // Mode 1: replay a series snapshot through the alert engine.
    let path = snapshot.unwrap_or_else(|| usage());
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let snaps = tsdb::snapshot_from_json(&text)
        .unwrap_or_else(|e| panic!("bad snapshot {}: {e}", path.display()));
    let rules: Vec<Rule> = match &rules_path {
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", p.display()));
            parse_rules(&text).unwrap_or_else(|e| panic!("bad rules {}: {e}", p.display()))
        }
        None => sim_rules(),
    };
    println!(
        "replaying {} series from {} against {} rule(s)",
        snaps.len(),
        path.display(),
        rules.len()
    );

    let engine = alert::replay(rules, &snaps);
    let mut violated = false;
    println!("\n--- SLO summary ---");
    for st in engine.status() {
        let bad = st.fired > 0 || st.firing;
        violated |= bad;
        println!(
            "{:<18} {:<28} {} ({} firing(s), {} samples)",
            st.rule,
            st.series,
            if bad { "VIOLATED" } else { "met" },
            st.fired,
            st.evaluated,
        );
    }
    for e in engine.events() {
        println!("  alert: t={:.2}s {}", e.t_s, e.message);
    }
    if violated {
        std::process::exit(1);
    }
}
