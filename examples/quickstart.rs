//! Quickstart: build the two grids, run the standalone atmosphere and
//! ocean components for a few steps, and print basic diagnostics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ap3esm::prelude::*;
use ap3esm_atm::dycore::{Dycore, DycoreConfig};
use ap3esm_atm::state::AtmState;
use ap3esm_grid::decomp::BlockDecomp2d;
use ap3esm_grid::mask::MaskGenerator;
use ap3esm_ocn::model::{OcnConfig, OcnForcing, OcnModel};

fn main() {
    // --- Atmosphere: icosahedral grid, hydrostatic dycore -----------------
    let grid = std::sync::Arc::new(GeodesicGrid::new(4));
    println!(
        "atmosphere grid: G4 = {} cells / {} edges / {} corners (~{:.0} km)",
        grid.ncells(),
        grid.nedges(),
        grid.ncorners(),
        grid.mean_spacing_km()
    );
    let dycore = Dycore::new(
        std::sync::Arc::clone(&grid),
        DycoreConfig::for_spacing_km(grid.mean_spacing_km()),
    );
    let mut atm = AtmState::isothermal(std::sync::Arc::clone(&grid), 8, 288.0);
    // Perturb and integrate a few model steps.
    atm.ps[0] += 500.0;
    let mass0 = atm.total_mass();
    for step in 0..3 {
        dycore.step_model_dynamics(&mut atm);
        println!(
            "  atm model step {step}: max wind {:.2} m/s, mass drift {:.1e}",
            atm.max_wind(),
            (atm.total_mass() - mass0) / mass0
        );
    }

    // --- Ocean: tripolar grid, split barotropic/baroclinic stepping -------
    let ocn_grid = TripolarGrid::new(72, 46, 10, MaskGenerator::default());
    println!(
        "\nocean grid: {}×{}×{}, ocean fraction of 3-D points = {:.1}%",
        ocn_grid.nlon,
        ocn_grid.nlat,
        ocn_grid.nlev,
        100.0 * ocn_grid.active_fraction()
    );
    let config = OcnConfig::for_grid(72, 46, 10, 1, 1);
    let world = World::new(1);
    world.run(|rank| {
        let decomp = BlockDecomp2d::new(72, 46, 1, 1);
        let mut ocn = OcnModel::new(&ocn_grid, config.clone(), 0);
        let forcing = OcnForcing::climatology(&ocn_grid, &decomp, 0);
        for step in 0..5 {
            ocn.step(rank, &forcing);
            if step % 2 == 0 {
                println!(
                    "  ocn step {step}: KE {:.3e}, max surface speed {:.3} m/s",
                    ocn.state.kinetic_energy(),
                    ocn.state
                        .surface_speed()
                        .into_iter()
                        .fold(0.0f64, f64::max)
                );
            }
        }
    });

    println!("\nquickstart complete — see examples/coupled_esm.rs for the full model.");
}
