//! The Typhoon-Doksuri forecast experiment (paper §7.1, Figs. 6–7) at demo
//! scale: seed a warm-core vortex at Doksuri's genesis point into the
//! coupled model, run, track, and score against the reference track.
//!
//! ```sh
//! cargo run --release --example typhoon_forecast
//! # with an obs run report and a per-rank chrome trace + flamegraph:
//! cargo run --release --example typhoon_forecast -- --report-name doksuri --trace
//! ```

use ap3esm::prelude::*;

struct Cli {
    report_name: Option<String>,
    trace: bool,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        report_name: None,
        trace: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--report-name" => {
                cli.report_name =
                    Some(args.next().expect("--report-name needs a value"))
            }
            "--trace" => cli.trace = true,
            other => panic!("unknown flag {other} (try --report-name, --trace)"),
        }
    }
    cli
}

fn main() {
    let cli = parse_cli();
    let mut config = CoupledConfig::test_tiny();
    config.atm_glevel = 4; // ~450 km cells: coarse, but tracks a vortex
    println!("Typhoon Doksuri forecast experiment (idealized-vortex analogue)");
    println!("atmosphere: G{}, coupled to {}×{} ocean\n", config.atm_glevel, config.ocn_nlon, config.ocn_nlat);

    let base = CoupledOptions {
        report_name: cli.report_name,
        trace: cli.trace,
        ..Default::default()
    };
    let result = run_forecast_with(&config, 1.0, &base);

    println!(
        "{:>7} {:>18} {:>18} {:>10} {:>12}",
        "hours", "reference (lat,lon)", "model (lat,lon)", "err (km)", "wind (m/s)"
    );
    for ((r, t), e) in result
        .reference
        .iter()
        .zip(&result.track)
        .zip(&result.track_error_km)
    {
        println!(
            "{:>7.1} {:>9.2},{:>8.2} {:>9.2},{:>8.2} {:>10.0} {:>12.1}",
            r.hours, r.lat_deg, r.lon_deg, t.lat_deg, t.lon_deg, e, t.max_wind
        );
    }
    println!(
        "\nmean track error {:.0} km at ~{:.0} km grid spacing",
        result.mean_track_error(),
        result.atm_dx_km
    );
    println!(
        "minimum central pressure {:.1} hPa, peak wind {:.1} m/s",
        result.min_pressure() / 100.0,
        result.peak_intensity()
    );
    println!("\n(The paper's 3-km configuration captures the eyewall; at");
    println!("laptop scale the experiment validates the forecast *pipeline*:");
    println!("initialize → couple → track → score.)");

    if let Some(path) = &result.stats.report_path {
        println!("\nobs run report: {}", path.display());
    }
    if let Some(path) = &result.stats.trace_path {
        println!("chrome trace:   {} (open in ui.perfetto.dev)", path.display());
    }
    if let Some(path) = &result.stats.folded_path {
        println!("flamegraph:     {} (render with inferno/flamegraph.pl)", path.display());
    }
}
