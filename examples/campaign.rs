//! The scenario-campaign runner: parse a declarative catalog, fan its
//! scenarios (× ensemble members) across the thread pool, and distil the
//! campaign into per-scenario `ap3esm-tsdb/1` snapshots plus one
//! deterministic `ap3esm-leaderboard/1` ranking.
//!
//! With no `--catalog`, runs the embedded demo catalog: a coupled
//! baseline, an ocean-only ENSO spin-up, an atm-only aqua planet, an
//! ice-only seasonal cycle, a seeded three-member perturbation ensemble, a
//! multi-vortex basin, a restart-cycled reforecast, and a fault-injected
//! rank-loss scenario — every initial-condition family and component
//! subset the engine composes.
//!
//! ```sh
//! cargo run --release --example campaign
//! cargo run --release --example campaign -- --catalog scenarios/demo.scn
//! cargo run --release --example campaign -- --only spinup --threads 2
//! cargo run --release --example campaign -- --check   # parse+validate only
//! ```
//!
//! Exits nonzero if any scenario breaks its declared contract (or, with
//! `--check`, if the catalog does not validate).

use ap3esm::scenario::dsl::Catalog;
use ap3esm::scenario::runner::{run_campaign, CampaignOptions};
use std::path::PathBuf;

/// The embedded demo catalog (also shipped as `scenarios/demo.scn`).
const DEMO_CATALOG: &str = include_str!("../scenarios/demo.scn");

fn main() {
    let mut catalog_path: Option<PathBuf> = None;
    let mut seed: Option<u64> = None;
    let mut opts = CampaignOptions::default();
    let mut check_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--catalog" => catalog_path = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--seed" => {
                seed = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--only" => opts.only = Some(args.next().unwrap_or_else(|| usage())),
            "--out" => opts.out_dir = args.next().unwrap_or_else(|| usage()).into(),
            "--check" => check_only = true,
            _ => usage(),
        }
    }

    let text = match &catalog_path {
        Some(p) => std::fs::read_to_string(p)
            .unwrap_or_else(|e| fatal(&format!("cannot read {}: {e}", p.display()))),
        None => DEMO_CATALOG.to_string(),
    };
    let source = catalog_path
        .as_ref()
        .map(|p| p.display().to_string())
        .unwrap_or_else(|| "<embedded demo catalog>".to_string());

    // A seed override re-parses with the seed line substituted: scenario
    // seeds derive at parse time, so the grammar stays the single source
    // of seed derivation.
    let text = match seed {
        Some(s) => reseed_text(&text, s),
        None => text,
    };
    let catalog = Catalog::parse(&text).unwrap_or_else(|e| fatal(&format!("{source}: {e}")));
    catalog
        .validate()
        .unwrap_or_else(|e| fatal(&format!("{source}: {e}")));

    if check_only {
        println!(
            "{source}: ok — {} scenario(s), seed {}",
            catalog.scenarios.len(),
            catalog.seed
        );
        return;
    }

    println!(
        "campaign {:?}: {} scenario(s), seed {}, output {}",
        catalog.name,
        catalog.scenarios.len(),
        catalog.seed,
        opts.out_dir.display()
    );
    let report = run_campaign(&catalog, &opts);
    println!("\n{}", report.table);
    for o in &report.outcomes {
        for m in &o.members {
            if !m.detail.is_empty() {
                println!("  {} m{}: {}", o.name, m.member, m.detail);
            }
            if let Some(b) = &m.bundle {
                println!("  {} m{}: bundle {}", o.name, m.member, b.display());
            }
        }
        if let Some(f) = &o.series_file {
            println!("  {}: series {}", o.name, f);
        }
    }
    println!("\nleaderboard: {}", report.leaderboard_path.display());
    if report.violations > 0 {
        eprintln!(
            "{} scenario(s) broke their contract",
            report.violations
        );
        std::process::exit(1);
    }
}

/// Replace (or prepend) the catalog-level `seed` line.
fn reseed_text(text: &str, seed: u64) -> String {
    let mut out = String::new();
    let mut replaced = false;
    let mut in_scenario = false;
    for line in text.lines() {
        let stripped = line.split('#').next().unwrap_or("").trim();
        if stripped.starts_with("scenario ") || stripped == "scenario" {
            in_scenario = true;
        }
        if !in_scenario && !replaced && stripped.starts_with("seed ") {
            out.push_str(&format!("seed {seed}\n"));
            replaced = true;
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    if !replaced {
        return format!("seed {seed}\n{out}");
    }
    out
}

fn fatal(msg: &str) -> ! {
    eprintln!("campaign: {msg}");
    std::process::exit(2);
}

fn usage() -> ! {
    eprintln!(
        "usage: campaign [--catalog FILE] [--seed N] [--threads N] \
         [--only SUBSTRING] [--out DIR] [--check]"
    );
    std::process::exit(2);
}
