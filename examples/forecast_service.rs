//! Closed-loop load generator for the `ap3esm-serve` inference service.
//!
//! Spawns `--clients` closed-loop clients that together target `--rps`
//! column-inference requests per second for `--duration` seconds against
//! a micro-batching [`Service`], hot-swaps the model registry to a new
//! version mid-run (and rolls it back at three quarters), then prints
//! p50/p95 latency, throughput and the shed rate, and writes the obs run
//! report (and, with `--trace`, a chrome trace of the serve batches).
//!
//! With `--slo` the run is continuously sampled into a time-series store
//! and judged against the built-in serving SLO rules (p95 latency budget,
//! shed-rate ceiling); a final SLO summary prints per-rule verdicts and
//! `--slo-strict` exits nonzero on any violation. `--metrics-addr` serves
//! live OpenMetrics scrapes while the load runs.
//!
//! ```sh
//! cargo run --release --example forecast_service -- \
//!     --clients 8 --rps 400 --duration 3 --report-name serve --trace
//! # optionally also run N background ensemble forecast jobs:
//! cargo run --release --example forecast_service -- --jobs 3
//! # SLO-gated run with a live scrape endpoint:
//! cargo run --release --example forecast_service -- \
//!     --slo-strict --slo-p95-ms 50 --slo-shed 0.05 \
//!     --metrics-addr 127.0.0.1:9464 --report-name serve
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ap3esm::ai::modules::ColumnState;
use ap3esm::obs::Obs;
use ap3esm::serve::registry::warm_modules;
use ap3esm::serve::{
    coupled_compute, ForecastScheduler, ModelRegistry, ProductKey, ServeConfig, ServeError,
    Service,
};
use ap3esm_esm::config::CoupledConfig;

struct Cli {
    clients: usize,
    rps: f64,
    duration: f64,
    report_name: Option<String>,
    trace: bool,
    jobs: usize,
    slo: bool,
    slo_strict: bool,
    slo_p95_ms: f64,
    slo_shed: f64,
    metrics_addr: Option<String>,
    cadence_ms: u64,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        clients: 4,
        rps: 200.0,
        duration: 2.0,
        report_name: None,
        trace: false,
        jobs: 0,
        slo: false,
        slo_strict: false,
        slo_p95_ms: 50.0,
        slo_shed: 0.05,
        metrics_addr: None,
        cadence_ms: 50,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--clients" => cli.clients = val("--clients").parse().expect("usize"),
            "--rps" => cli.rps = val("--rps").parse().expect("f64"),
            "--duration" => cli.duration = val("--duration").parse().expect("f64"),
            "--report-name" => cli.report_name = Some(val("--report-name")),
            "--trace" => cli.trace = true,
            "--jobs" => cli.jobs = val("--jobs").parse().expect("usize"),
            "--slo" => cli.slo = true,
            "--slo-strict" => cli.slo_strict = true,
            "--slo-p95-ms" => cli.slo_p95_ms = val("--slo-p95-ms").parse().expect("f64"),
            "--slo-shed" => cli.slo_shed = val("--slo-shed").parse().expect("f64"),
            "--metrics-addr" => cli.metrics_addr = Some(val("--metrics-addr")),
            "--cadence-ms" => cli.cadence_ms = val("--cadence-ms").parse().expect("u64"),
            other => panic!(
                "unknown flag {other} (try --clients, --rps, --duration, \
                 --report-name, --trace, --jobs, --slo, --slo-strict, \
                 --slo-p95-ms, --slo-shed, --metrics-addr, --cadence-ms)"
            ),
        }
    }
    cli
}

fn column(nlev: usize, phase: f64) -> ColumnState {
    ColumnState {
        u: (0..nlev).map(|k| 5.0 * (0.3 * k as f64 + phase).sin()).collect(),
        v: (0..nlev).map(|k| 2.0 * (0.2 * k as f64 + phase).cos()).collect(),
        t: (0..nlev).map(|k| 295.0 - 4.0 * k as f64).collect(),
        q: (0..nlev).map(|k| 0.01 * (-0.4 * k as f64).exp()).collect(),
        p: (0..nlev).map(|k| 1.0e5 * (1.0 - k as f64 / nlev as f64)).collect(),
    }
}

fn main() {
    let cli = parse_cli();
    let nlev = 30;
    let obs = Arc::new(Obs::new());
    let sink = cli.trace.then(|| {
        let s = Arc::new(ap3esm::obs::TraceSink::default());
        obs.profiler.set_trace_sink(Some(Arc::clone(&s)));
        s
    });

    // Continuous telemetry: background sampler feeding a time-series
    // store, the built-in serving SLO rules, and an optional OpenMetrics
    // scrape endpoint that serves live while the load runs.
    let telemetry_on = cli.slo || cli.slo_strict || cli.metrics_addr.is_some();
    let store = telemetry_on
        .then(|| Arc::new(ap3esm::obs::SeriesStore::new(ap3esm::obs::tsdb::DEFAULT_CAPACITY)));
    let engine = telemetry_on.then(|| {
        Arc::new(ap3esm::obs::AlertEngine::new(ap3esm::obs::serve_rules(
            cli.slo_p95_ms * 1e3,
            cli.slo_shed,
        )))
    });
    let sampler = store.as_ref().map(|store| {
        ap3esm::obs::Sampler::start(
            Arc::clone(&obs),
            Arc::clone(store),
            engine.clone(),
            Duration::from_millis(cli.cadence_ms.max(1)),
            ap3esm::serve::telemetry_derived(),
        )
    });
    let server = cli.metrics_addr.as_ref().map(|addr| {
        let s = ap3esm::obs::MetricsServer::start(
            addr,
            Arc::clone(&obs),
            Arc::clone(store.as_ref().expect("telemetry store")),
            engine.clone(),
        )
        .expect("bind OpenMetrics endpoint");
        println!("metrics:    http://{}/metrics", s.local_addr());
        s
    });

    let cfg = ServeConfig {
        workers: 2,
        max_batch: 16,
        max_wait: Duration::from_millis(2),
        queue_capacity: 128,
        ..ServeConfig::default()
    };
    let registry = Arc::new(ModelRegistry::warm(nlev, 32, 20230721, "warm-v1"));
    let svc = Service::start(cfg, registry, Arc::clone(&obs));
    println!(
        "serving: {} clients, {:.0} rps target, {:.1}s, model v{} ({})",
        cli.clients,
        cli.rps,
        cli.duration,
        svc.registry().version(),
        svc.registry().current().tag,
    );

    let stop = Arc::new(AtomicBool::new(false));
    let ok = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let period = Duration::from_secs_f64(cli.clients.max(1) as f64 / cli.rps.max(1.0));

    let clients: Vec<_> = (0..cli.clients.max(1))
        .map(|ci| {
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            let (ok, shed, errors) =
                (Arc::clone(&ok), Arc::clone(&shed), Arc::clone(&errors));
            std::thread::spawn(move || {
                let tenant = format!("client-{ci}");
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let tick = Instant::now();
                    let col = column(nlev, ci as f64 + n as f64 * 0.01);
                    // Closed loop: submit, wait for the result, then pace.
                    match svc.submit(&tenant, col) {
                        Ok(ticket) => match ticket.wait() {
                            Ok(_) => drop(ok.fetch_add(1, Ordering::Relaxed)),
                            Err(_) => drop(errors.fetch_add(1, Ordering::Relaxed)),
                        },
                        Err(ServeError::Overloaded { .. }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => drop(errors.fetch_add(1, Ordering::Relaxed)),
                    }
                    n += 1;
                    if let Some(rest) = period.checked_sub(tick.elapsed()) {
                        std::thread::sleep(rest);
                    }
                }
            })
        })
        .collect();

    // Hot-swap a retrained model at the halfway mark, roll back at 3/4 —
    // both under full load.
    let half = Duration::from_secs_f64(cli.duration / 2.0);
    std::thread::sleep(half);
    let (t, r) = warm_modules(nlev, 32, 20230722);
    let v = svc.registry().publish("retrained-v2", t, r);
    println!("hot-swapped model registry to v{v} mid-run");
    std::thread::sleep(half / 2);
    let back = svc.registry().rollback().expect("rollback");
    println!("rolled back to v{back}");
    std::thread::sleep(half / 2);

    stop.store(true, Ordering::Relaxed);
    for c in clients {
        c.join().expect("client thread");
    }
    svc.drain();

    let served = ok.load(Ordering::Relaxed);
    let shed_n = shed.load(Ordering::Relaxed);
    let err_n = errors.load(Ordering::Relaxed);
    let total = served + shed_n + err_n;
    let lat = obs.metrics.histogram("serve.latency_us").summary();
    let bs = obs.metrics.histogram("serve.batch_size").summary();
    println!("\n--- results ---");
    println!("requests:   {total} ({served} served, {shed_n} shed, {err_n} errors)");
    println!(
        "latency:    p50 {:.2} ms, p95 {:.2} ms (n={})",
        lat.p50 as f64 / 1e3,
        lat.p95 as f64 / 1e3,
        lat.count
    );
    println!(
        "shed rate:  {:.2}%",
        100.0 * shed_n as f64 / total.max(1) as f64
    );
    println!(
        "batching:   mean {:.1} req/forward (max {}), {} batches",
        bs.mean,
        bs.max,
        obs.metrics.counter("serve.batches").get()
    );

    // Optional: background ensemble forecast products through the job
    // scheduler (real coupled runs at tiny scale, deduped + cached).
    if cli.jobs > 0 {
        println!("\nrunning {} ensemble forecast job(s)...", cli.jobs);
        let sched = ForecastScheduler::start(
            2,
            8,
            Arc::clone(&obs),
            coupled_compute(CoupledConfig::test_tiny(), 0.25),
        );
        let handles: Vec<_> = (0..cli.jobs as u32)
            .map(|m| {
                sched.request(ProductKey {
                    region: "wnp".into(),
                    init_time: 20230721,
                    member: m,
                })
            })
            .collect();
        for h in handles {
            match h.wait() {
                Ok(p) => println!(
                    "  member {}: track err {:.0} km, peak wind {:.1} m/s, min ps {:.0} Pa",
                    p.key.member, p.mean_track_error_km, p.peak_intensity_ms, p.min_pressure_pa
                ),
                Err(e) => println!("  job failed: {e}"),
            }
        }
        sched.drain();
    }

    // Telemetry teardown: the shutdown handshake forces one final sample
    // and alert pass, so the verdicts below include the run's last state.
    if let Some(sampler) = sampler {
        sampler.shutdown();
    }
    let mut slo_violated = false;
    if let Some(engine) = &engine {
        println!("\n--- SLO summary ---");
        for st in engine.status() {
            let violated = st.fired > 0 || st.firing;
            slo_violated |= violated;
            println!(
                "{:<12} {:<22} {} ({} firing(s), {} samples)",
                st.rule,
                st.series,
                if violated { "VIOLATED" } else { "met" },
                st.fired,
                st.evaluated,
            );
        }
        for e in engine.events() {
            println!("  alert: t={:.2}s {}", e.t_s, e.message);
        }
    }
    if let (Some(store), Some(name)) = (&store, &cli.report_name) {
        match store.write_snapshot(name) {
            Ok(p) => println!("series:     {}", p.display()),
            Err(e) => eprintln!("series snapshot write failed: {e}"),
        }
    }
    if let Some(server) = server {
        server.stop();
    }

    // Obs artefacts: run report + optional chrome trace.
    if let Some(name) = &cli.report_name {
        if let Some(sink) = &sink {
            obs.profiler.set_trace_sink(None);
            let (events, dropped) = sink.take();
            if dropped > 0 {
                eprintln!("[trace] {dropped} span events dropped (sink full)");
            }
            let mut ct = ap3esm::obs::ChromeTrace::new();
            ct.add_process(0, "serve");
            ct.add_span_events(0, &events);
            if let Ok(p) = ct.write(name) {
                println!("trace:      {}", p.display());
            }
        }
        let report = ap3esm::obs::ReportBuilder::new(name)
            .meta("clients", cli.clients as u64)
            .meta("target_rps", cli.rps)
            .meta("duration_s", cli.duration)
            .meta("served", served)
            .meta("shed", shed_n)
            .meta("errors", err_n)
            .meta("model_version", svc.registry().version())
            .spans(obs.profiler.snapshot())
            .alerts(engine.as_ref().map(|e| e.events()).unwrap_or_default())
            .metrics(obs.metrics.snapshot())
            .build();
        match report.write() {
            Ok(p) => println!("report:     {}", p.display()),
            Err(e) => eprintln!("report write failed: {e}"),
        }
    }

    if cli.slo_strict && slo_violated {
        eprintln!("SLO violated under --slo-strict: exiting nonzero");
        std::process::exit(1);
    }
}
