//! # AP3ESM-RS
//!
//! A Rust reproduction of the kilometer-scale **AI-Powered and
//! Performance-Portable Earth System Model (AP3ESM)** — SC '25 Gordon Bell
//! Prize for Climate Modelling submission — as a workspace of buildable,
//! testable crates. This facade crate re-exports every subsystem; see
//! `README.md` for the architecture and `DESIGN.md` for the experiment
//! index and paper-to-substitute mapping.
//!
//! ```no_run
//! use ap3esm::prelude::*;
//!
//! // Run the coupled model for one simulated day at test scale.
//! let config = CoupledConfig::test_tiny();
//! let world = World::new(config.world_size());
//! let opts = CoupledOptions { days: 1.0, ..Default::default() };
//! let stats = world.run(|rank| run_coupled(rank, &config, &opts));
//! println!("measured SYPD: {:.2}", stats[0].sypd);
//! ```

pub use ap3esm_ai as ai;
pub use ap3esm_atm as atm;
pub use ap3esm_comm as comm;
pub use ap3esm_cpl as cpl;
pub use ap3esm_esm as esm;
pub use ap3esm_grid as grid;
pub use ap3esm_ice as ice;
pub use ap3esm_io as io;
pub use ap3esm_lnd as lnd;
pub use ap3esm_machine as machine;
pub use ap3esm_obs as obs;
pub use ap3esm_ocn as ocn;
pub use ap3esm_physics as physics;
pub use ap3esm_pp as pp;
pub use ap3esm_precision as precision;
pub use ap3esm_scenario as scenario;
pub use ap3esm_serve as serve;

/// The most commonly used items in one import.
pub mod prelude {
    pub use ap3esm_comm::World;
    pub use ap3esm_esm::config::{CoupledConfig, Resolution};
    pub use ap3esm_esm::coupled::{run_coupled, CoupledOptions, CoupledStats};
    pub use ap3esm_esm::forecast::{run_forecast, run_forecast_with};
    pub use ap3esm_esm::timing::get_timing;
    pub use ap3esm_grid::{GeodesicGrid, TripolarGrid};
    pub use ap3esm_machine::topology::MachineSpec;
    pub use ap3esm_pp::{ExecSpace, Serial, SimulatedCpe, Threads};
    pub use ap3esm_scenario::dsl::Catalog;
    pub use ap3esm_scenario::runner::{run_campaign, CampaignOptions};
    pub use ap3esm_serve::{
        ForecastScheduler, ModelRegistry, ProductKey, ServeConfig, ServeError, Service,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        // Compile-time check that the whole workspace wires together.
        let _ = crate::grid::icosahedral::GeodesicCounts::at_glevel(3);
        let _ = crate::machine::topology::MachineSpec::sunway_oceanlight();
        let _ = crate::esm::config::CoupledConfig::test_tiny();
    }
}
